"""The RoundEngine: message-bus orchestration of Glimmer rounds.

The engine owns the round lifecycle — open → provision → collect →
finalize — and drives it entirely with typed messages over
:class:`repro.network.transport.Network`:

* **open**: the blinding service samples this round's sum-zero masks and
  the cloud service starts accepting contributions;
* **provision**: each participant is commanded to run its attested
  handshake against the blinding service and install its mask;
* **collect**: each participant is commanded to train-endorse-submit; the
  signed contribution travels client → service over the bus, where drop
  models and adversaries apply;
* **finalize**: every mask slot that never produced an *accepted*
  contribution (dropout, validation rejection, lost submission) is
  revealed by the blinding service and handed to the cloud service for §3
  repair, so the aggregate over survivors is exact.

Delivery is **at-least-once**: either leg of a call can drop, so a failed
call may still have executed its handler.  Retries are therefore paired
with handler-side idempotency (see :mod:`repro.runtime.endpoints`), and a
submission whose every attempt failed is *reconciled* — the engine asks
the service whether the nonce landed before deciding the slot's fate.  A
slot that cannot be reconciled is *unresolved*, and an unresolved slot
forces an abort: revealing its mask might double-count a contribution
that was actually accepted, and exactness outranks availability.

Retries use exponential backoff capped at ``max_backoff_ms`` with
deterministic DRBG-derived jitter, so storms decorrelate without
breaking replayability.  Crashed client enclaves are restarted once and
recover from sealed checkpoints; a crashed blinding service is restarted
at the next phase boundary and recovers from its sealed round state.  A
round that still loses more participants than ``recovery_threshold``
allows raises :class:`~repro.errors.RoundAbortedError` — with its phase
window closed and a partial :class:`~repro.runtime.telemetry.RoundReport`
(``aborted=True``) recorded, so telemetry survives the failure.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.crypto import group_ops
from repro.crypto.commitments import (
    MaskOpening,
    batch_verify_openings,
    verify_opening,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import batch_verify as batch_verify_signatures
from repro.perf import kernels
from repro.errors import (
    EnclaveError,
    MaskVerificationError,
    NetworkError,
    ProtocolError,
    ProtocolViolation,
    ReproError,
    RoundAbortedError,
)
from repro.faults import ACTION_CRASH, ACTION_STALL, SITE_BLINDER, SITE_PHASE_STALL
from repro.network.transport import Network
from repro.runtime import messages as m
from repro.runtime.deadlines import AdaptiveDeadlines, PhaseDeadlineController
from repro.runtime.endpoints import BlinderEndpoint, ClientEndpoint, ServiceEndpoint
from repro.runtime.messages import BLINDER, ENGINE, SERVICE, client_endpoint
from repro.runtime.protocol import (
    VIOLATION_AGGREGATE_TAMPERING,
    VIOLATION_EQUIVOCATION,
    VIOLATION_FLOODING,
    VIOLATION_MALFORMED,
    VIOLATION_MASK_COMMITMENT,
    VIOLATION_MASK_OPENING,
    VIOLATION_NON_SUM_ZERO,
    ProtocolMonitor,
    Quarantine,
)
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_CRASHED,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_DROPOUT,
    OUTCOME_EVICTED,
    OUTCOME_PARTITIONED,
    OUTCOME_PROVISION_FAILED,
    OUTCOME_QUARANTINED,
    OUTCOME_SUBMIT_FAILED,
    OUTCOME_UNREACHABLE,
    PhaseStats,
    RoundReport,
    meter_delta,
    meter_snapshot,
)

__all__ = ["RoundEngine", "ENGINE", "SERVICE", "BLINDER", "client_endpoint"]

#: Simulated wall-clock cost of an injected phase stall (SITE_PHASE_STALL).
PHASE_STALL_MS = 40.0


class _RoundRecord:
    """Engine-side accounting for one in-flight round."""

    def __init__(self, network: Network, round_id: int, num_slots: int, blinded: bool):
        self.round_id = round_id
        self.num_slots = num_slots
        self.blinded = blinded
        self.opened_at_ms = network.clock.now_ms()
        self.participants: list[str] = []
        self.provisioned: dict[int, str] = {}
        self.consumed: set[int] = set()
        self.unresolved: set[int] = set()
        self.commitments = None  # the blinder's published MaskCommitmentSet
        self.slot_nonce: dict[int, bytes] = {}  # engine-witnessed accepts
        self.quarantined_now: list[str] = []
        self.outcomes: dict[str, str] = {}
        self.retries = 0
        self.recoveries = 0
        self.faults0 = 0
        self.ecalls = 0
        self.joined: dict[str, Any] = {}
        self.late_discards = 0
        self.hedged = 0
        self.stragglers = 0
        self.partition_trimmed = 0
        self.reconciled = 0
        self.subgroup_plan = None  # SubgroupPlan on hierarchical rounds
        self.subgroup_size = 0
        self.subgroup_repairs = 0  # distinct subgroups touched by §3 repair
        self.streamed = 0  # submissions folded-and-released at admission
        self.meter_start: dict[str, dict[str, int]] = {}
        self.pk_counters0 = group_ops.counters()
        self.messages0 = network.messages_delivered + network.messages_dropped
        self.dropped0 = network.messages_dropped
        self.bytes0 = network.bytes_delivered
        self.phases: list[PhaseStats] = []
        self.window: tuple[str, int, int, int, float] | None = None

    def note_participant(self, client_id: str) -> None:
        if client_id not in self.participants:
            self.participants.append(client_id)


class RoundEngine:
    """Orchestrates contribution rounds over a simulated transport."""

    def __init__(
        self,
        network: Network,
        service,
        blinder_provisioner,
        *,
        max_attempts: int = 5,
        backoff_ms: float = 8.0,
        max_backoff_ms: float = 256.0,
        recovery_threshold: float = 0.0,
        fault_injector=None,
        seed: bytes = b"round-engine",
        signing_public=None,
        codec=None,
        group=None,
        quarantine: Quarantine | None = None,
        parallelism=None,
    ) -> None:
        self.network = network
        self.service = service
        self.blinder_provisioner = blinder_provisioner
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_ms = float(backoff_ms)
        self.max_backoff_ms = float(max_backoff_ms)
        self.recovery_threshold = float(recovery_threshold)
        self.fault_injector = fault_injector
        self.signing_public = signing_public
        self.codec = codec
        self.group = group
        self.quarantine = quarantine or Quarantine()
        self.parallelism = parallelism
        """Optional :class:`repro.scale.ScaleConfig`.  When set with
        ``workers > 0``, eligible rounds (see
        :func:`repro.scale.rounds.parallel_eligible`) run their provision
        and collect phases on a process pool with sharded aggregation;
        everything else — and ``workers == 0`` — takes the serial bus
        path below, unchanged."""
        self._scale_pool = None
        self.link_conditions = None
        """Optional :class:`repro.network.conditions.LinkConditions`
        reachability oracle (see :meth:`attach_conditions`)."""
        self.monitor = ProtocolMonitor(self.quarantine)
        self._retry_rng = HmacDrbg(seed, personalization="retry-jitter")
        self.clients: dict[str, Any] = {}
        self.reports: dict[int, RoundReport] = {}
        self._rounds: dict[int, _RoundRecord] = {}
        network.register(ENGINE, {})
        network.register(
            SERVICE, ServiceEndpoint(service, monitor=self.monitor).handlers()
        )
        network.register(
            BLINDER,
            BlinderEndpoint(blinder_provisioner, monitor=self.monitor).handlers(),
        )

    # -------------------------------------------------------------- topology

    def register_client(self, client) -> str:
        """Attach a client device to the bus; returns its endpoint name.

        Re-registering the same client id replaces its handlers (E15's
        restart-evasion arm rebuilds enclaves mid-round).
        """
        name = client_endpoint(client.client_id)
        endpoint = ClientEndpoint(self, client, name)
        if client.client_id in self.clients:
            for kind, handler in endpoint.handlers().items():
                self.network.add_handler(name, kind, handler)
        else:
            self.network.register(name, endpoint.handlers())
        self.clients[client.client_id] = client
        return name

    def _client_name(self, client_id: str) -> str:
        if client_id not in self.clients:
            raise ProtocolError(f"client {client_id!r} is not registered on the bus")
        return client_endpoint(client_id)

    def attach_conditions(self, conditions) -> None:
        """Attach (or with ``None`` detach) a link-conditions oracle.

        With an oracle attached, phase boundaries trim participants the
        oracle reports offline — partition-aware cohort trimming that
        degrades an unreachable device straight into the §3
        dropout-repair path instead of burning its full retry budget.
        The oracle only answers reachability; it never sees payloads.
        """
        self.link_conditions = conditions

    # ------------------------------------------------------------- lifecycle

    def __enter__(self) -> "RoundEngine":
        """Use the engine as a context manager; closes the scale pool on exit.

        The fork-based worker pool holds real OS processes; a caller that
        forgets :meth:`close_scale_pool` used to leak them until
        interpreter exit.  ``with RoundEngine(...) as engine:`` (or
        ``with deployment.engine:``) scopes the pool to the block.
        """
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close_scale_pool()

    # ----------------------------------------------------------- scale pool

    def scale_pool(self):
        """The engine's worker pool, created (or resized) on demand."""
        if self.parallelism is None or not self.parallelism.enabled:
            raise ProtocolError("engine has no parallelism configured")
        pool = self._scale_pool
        if pool is None or pool.workers != self.parallelism.workers:
            if pool is not None:
                pool.close()
            from repro.scale.pool import WorkerPool

            pool = WorkerPool(self.parallelism.workers)
            self._scale_pool = pool
        return pool

    def warm_scale_pool(self) -> None:
        """Start every worker process now, outside any timed window."""
        if self.parallelism is not None and self.parallelism.enabled:
            self.scale_pool().warm()

    def close_scale_pool(self) -> None:
        """Shut down the worker pool (idempotent; a new round re-creates it)."""
        if self._scale_pool is not None:
            self._scale_pool.close()
            self._scale_pool = None

    # ------------------------------------------------------------ bookkeeping

    def round_record(self, round_id: int) -> _RoundRecord:
        record = self._rounds.get(round_id)
        if record is None:
            raise ProtocolError(f"round {round_id} is not tracked by the engine")
        return record

    def note_client_join(self, record: _RoundRecord, client) -> None:
        """Snapshot a client's enclave meter the first time it acts in a round."""
        if client.client_id not in record.meter_start:
            record.meter_start[client.client_id] = meter_snapshot(client.glimmer.meter)
        record.joined[client.client_id] = client

    def begin_phase(self, round_id: int, name: str) -> None:
        """Open a named phase window for a manually orchestrated round.

        :meth:`run_round` narrates phases itself; experiment flows that
        drive provisioning/collection directly (e.g. the Byzantine
        harness) use this so phase telemetry and the protocol monitor's
        phase gating stay accurate.
        """
        self._start_phase(self.round_record(round_id), name)

    def abort_round(self, round_id: int, reason: str) -> RoundAbortedError:
        """Close a round's books as aborted; returns the error to raise.

        The partial ``aborted=True`` report is recorded under the round id
        exactly as :meth:`run_round`'s internal aborts do.  Callers
        ``raise engine.abort_round(...)``.
        """
        return self._abort(self.round_record(round_id), reason)

    def _start_phase(self, record: _RoundRecord, name: str) -> None:
        self._close_phase(record)
        self.monitor.advance(record.round_id, name)
        self._fire_phase_faults(record, name)
        record.window = (
            name,
            self.network.messages_delivered + self.network.messages_dropped,
            self.network.messages_dropped,
            self.network.bytes_delivered,
            self.network.clock.now_ms(),
        )

    def _fire_phase_faults(self, record: _RoundRecord, phase: str) -> None:
        """Phase boundaries are where lifecycle faults land.

        A blinder crash here is immediately followed by a restart that
        recovers sealed round state — the availability claim E18 measures
        is that such a round still finalizes exactly (repair masks come
        from unsealed state, not enclave memory).
        """
        injector = self.fault_injector
        if injector is None:
            return
        action = injector.fire(
            SITE_BLINDER, round_id=record.round_id, phase=phase
        )
        if action == ACTION_CRASH and hasattr(self.blinder_provisioner, "crash"):
            self.blinder_provisioner.crash()
            self.blinder_provisioner.restart()
        if (
            injector.fire(SITE_PHASE_STALL, round_id=record.round_id, phase=phase)
            == ACTION_STALL
        ):
            self.network.clock.advance(PHASE_STALL_MS)

    def _close_phase(self, record: _RoundRecord) -> None:
        if record.window is None:
            return
        name, messages0, dropped0, bytes0, t0 = record.window
        record.phases.append(
            PhaseStats(
                name=name,
                messages=self.network.messages_delivered
                + self.network.messages_dropped
                - messages0,
                dropped=self.network.messages_dropped - dropped0,
                bytes_on_wire=self.network.bytes_delivered - bytes0,
                latency_ms=self.network.clock.now_ms() - t0,
            )
        )
        record.window = None

    # --------------------------------------------------------------- retries

    def call_with_retry(
        self,
        record: _RoundRecord,
        sender: str,
        receiver: str,
        kind: str,
        payload,
        *,
        first_attempt: int = 1,
    ):
        """``Network.call`` with capped, jittered exponential backoff.

        Either leg of a call can drop, so a failed attempt may still have
        executed its handler — retransmissions carry an increasing
        ``attempt`` number so handlers can answer idempotently from their
        result caches (see :mod:`repro.runtime.endpoints`).  Backoff
        doubles from ``backoff_ms`` but never exceeds ``max_backoff_ms``,
        and each wait adds up to one backoff-interval of jitter drawn from
        the engine's DRBG: deterministic for a given seed, decorrelated
        across retrying callers.

        ``first_attempt`` starts the attempt numbering above 1 for hedged
        re-deliveries: a command re-issued with ``first_attempt >
        max_attempts`` is visibly a retransmission to every handler, so
        an operation that already executed answers from its idempotency
        cache instead of running twice.  The retry *budget* is unchanged
        — up to ``max_attempts`` sends counting from ``first_attempt``.
        """
        attempt = first_attempt - 1
        last_allowed = first_attempt + self.max_attempts - 1
        while True:
            attempt += 1
            try:
                return self.network.call(
                    sender, receiver, kind, payload, attempt=attempt
                )
            except NetworkError:
                if attempt >= last_allowed:
                    raise
                record.retries += 1
                delay = min(
                    self.backoff_ms * (2 ** (attempt - first_attempt)),
                    self.max_backoff_ms,
                )
                self.network.clock.advance(
                    delay + delay * self._retry_rng.uniform()
                )

    # --------------------------------------------------------- round lifecycle

    def open_round(
        self,
        round_id: int,
        num_slots: int,
        vector_length: int,
        blinded: bool = True,
        subgroup_size: int = 0,
    ) -> None:
        """Open the round at the blinding service and the cloud service.

        ``subgroup_size > 0`` opens a hierarchical round: the blinder
        samples per-subgroup sum-zero families and the service streams
        submissions into per-subgroup accumulators.  The plan is a pure
        function of the round id, so the engine's copy (kept for repair
        telemetry) matches both parties' without coordination.
        """
        if round_id in self._rounds:
            raise ProtocolError(f"round {round_id} is already tracked by the engine")
        record = _RoundRecord(self.network, round_id, num_slots, blinded)
        if self.fault_injector is not None:
            record.faults0 = len(self.fault_injector.fired)
        if subgroup_size > 0 and blinded:
            from repro.scale.subgroup import plan_subgroups

            record.subgroup_plan = plan_subgroups(
                round_id, num_slots, subgroup_size
            )
            # Telemetry reports the *effective* group size (the plan
            # clamps g to the cohort), not the configured knob.
            record.subgroup_size = record.subgroup_plan.group_size
        self._rounds[round_id] = record
        self._start_phase(record, "open")
        if blinded:
            published = self.call_with_retry(
                record,
                ENGINE,
                BLINDER,
                m.KIND_OPEN_BLINDER,
                m.OpenBlinderRound(
                    round_id, num_slots, vector_length, record.subgroup_size
                ),
            )
            record.commitments = self._vetted_commitments(
                record, published, num_slots, vector_length
            )
        self.call_with_retry(
            record,
            ENGINE,
            SERVICE,
            m.KIND_OPEN_SERVICE,
            m.OpenServiceRound(
                round_id, num_slots, blinded, record.subgroup_size
            ),
        )

    def _vetted_commitments(
        self, record: _RoundRecord, published, num_slots: int, vector_length: int
    ):
        """Structurally validate the blinder's published commitment set.

        Legacy provisioners ack with ``True``/``None`` and skip the
        verifiable-blinding path entirely.  A commitment-aware blinder
        that publishes a malformed or mis-shaped set is blamed and the
        round aborts before any client is provisioned.
        """
        if published is None or not hasattr(published, "validate_structure"):
            return None
        try:
            published.validate_structure(
                round_id=record.round_id,
                num_slots=num_slots,
                vector_length=vector_length,
            )
            if (
                self.group is not None
                and published.group_name != self.group.name
            ):
                raise MaskVerificationError(
                    f"commitment group {published.group_name!r} does not "
                    f"match the deployment group {self.group.name!r}"
                )
        except MaskVerificationError as exc:
            self.monitor.record(
                record.round_id, BLINDER, VIOLATION_MASK_COMMITMENT, str(exc)
            )
            raise self._abort(
                record, f"blinding service published invalid commitments: {exc}"
            )
        return published

    def provision_mask(
        self,
        client_id: str,
        round_id: int,
        party_index: int,
        *,
        first_attempt: int = 1,
    ) -> None:
        """Command a client to fetch and install its mask for one slot."""
        record = self.round_record(round_id)
        record.note_participant(client_id)
        commitment = None
        if record.commitments is not None:
            commitment = record.commitments.record_for(party_index)
        self.call_with_retry(
            record,
            ENGINE,
            self._client_name(client_id),
            m.KIND_PROVISION_MASK,
            m.ProvisionMask(round_id, party_index, commitment),
            first_attempt=first_attempt,
        )
        record.provisioned[party_index] = client_id

    def contribute(
        self,
        client_id: str,
        round_id: int,
        values: Sequence[float],
        features: Sequence,
        *,
        blind: bool = True,
        claims: Mapping | None = None,
        context_fields: Sequence[str] = (),
        first_attempt: int = 1,
    ) -> str:
        """Command a client to contribute; returns its outcome label."""
        record = self.round_record(round_id)
        record.note_participant(client_id)
        outcome, _detail = self.call_with_retry(
            record,
            ENGINE,
            self._client_name(client_id),
            m.KIND_CONTRIBUTE,
            m.ContributeCommand(
                round_id=round_id,
                values=tuple(float(v) for v in values),
                features=tuple(features),
                blind=blind,
                claims=tuple(sorted((claims or {}).items())),
                context_fields=tuple(context_fields),
            ),
            first_attempt=first_attempt,
        )
        record.outcomes[client_id] = outcome
        return outcome

    def submit_signed(
        self, sender_id: str, round_id: int, contribution, *, slot: int | None = None
    ) -> bool:
        """Send an already-signed contribution to the service over the bus.

        Used by client endpoints for the honest path and by experiments to
        model attackers replaying or injecting contributions on the wire.
        An accepted submission consumes the sender's mask slot, exempting
        it from dropout repair.

        When every attempt fails, the submission is *reconciled*: the
        service is asked whether the contribution's nonce landed (the
        handler may have run with only the response lost).  If it did,
        the slot is consumed and the submit reported accepted.  If the
        reconciliation query itself cannot be delivered, the slot is
        marked unresolved — finalizing the round would then risk both
        counting the contribution *and* revealing its mask, so
        :meth:`finalize_round` aborts instead.
        """
        record = self.round_record(round_id)
        sender = (
            client_endpoint(sender_id) if sender_id in self.clients else sender_id
        )
        if slot is None and sender_id in self.clients:
            slot = self.clients[sender_id].party_index_for(round_id)
        try:
            accepted = bool(
                self.call_with_retry(
                    record,
                    sender,
                    SERVICE,
                    m.KIND_SUBMIT,
                    m.SubmitContribution(round_id, contribution, slot),
                )
            )
        except ProtocolViolation:
            # The protocol monitor refused the submission (equivocation,
            # quarantined sender, out-of-phase, malformed).  The violation
            # is already recorded; to the sender it is simply a rejection.
            return False
        except NetworkError:
            nonce = getattr(contribution, "nonce", None)
            if nonce is None:
                raise
            try:
                landed = bool(
                    self.call_with_retry(
                        record,
                        ENGINE,
                        SERVICE,
                        m.KIND_QUERY_SUBMISSION,
                        m.SubmissionStatusQuery(round_id, nonce),
                    )
                )
            except NetworkError:
                if slot is not None:
                    record.unresolved.add(slot)
                raise
            if not landed:
                raise
            accepted = True
        if accepted and slot is not None:
            record.consumed.add(slot)
            record.unresolved.discard(slot)
            nonce = getattr(contribution, "nonce", None)
            if nonce is not None:
                record.slot_nonce.setdefault(slot, nonce)
        return accepted

    def finalize_round(self, round_id: int) -> RoundReport:
        """Repair unconsumed slots, finalize at the service, emit the report.

        Refuses (aborts) when any slot is unresolved — exactness cannot be
        guaranteed if a submission's fate is unknown.  Before repair, the
        engine's own slot accounting overrides pessimistic per-client
        outcomes: a client may have died or lost connectivity *after* its
        contribution was accepted, and its slot being consumed is the
        ground truth that it counted.
        """
        record = self.round_record(round_id)
        if record.unresolved:
            raise self._abort(
                record,
                f"{len(record.unresolved)} submission(s) could not be "
                "reconciled (accepted-or-not unknown)",
            )
        self._reconcile_consumed(record)
        for slot, user_id in record.provisioned.items():
            if slot in record.consumed and record.outcomes.get(user_id) in (
                OUTCOME_UNREACHABLE,
                OUTCOME_SUBMIT_FAILED,
                OUTCOME_CRASHED,
            ):
                record.outcomes[user_id] = OUTCOME_ACCEPTED
        self._start_phase(record, "finalize")
        self._evict_offenders(record)
        if record.blinded and record.commitments is not None:
            try:
                record.commitments.verify_sum_zero(
                    self._scale_point_product(record)
                )
            except MaskVerificationError as exc:
                self.monitor.record(
                    round_id, BLINDER, VIOLATION_NON_SUM_ZERO, str(exc)
                )
                raise self._abort(
                    record,
                    f"blinding service's committed masks do not sum to "
                    f"zero: {exc}",
                )
        repairs: list[tuple[int, ...]] = []
        try:
            if record.blinded:
                revealed_by_slot: list[tuple[int, Any]] = []
                for slot in range(record.num_slots):
                    if slot in record.consumed:
                        continue
                    revealed = self.call_with_retry(
                        record, ENGINE, BLINDER, m.KIND_REVEAL_MASK,
                        m.RevealMask(round_id, slot),
                    )
                    revealed_by_slot.append((slot, revealed))
                batched = self._batch_verified_reveals(record, revealed_by_slot)
                for slot, revealed in revealed_by_slot:
                    repairs.append(
                        self._verified_repair_mask(
                            record, slot, revealed, preverified=batched
                        )
                    )
                if record.subgroup_plan is not None and revealed_by_slot:
                    # Hierarchical repair locality: each reveal re-expanded
                    # only the dropped slot's O(g) subgroup family.
                    record.subgroup_repairs = len(
                        {
                            record.subgroup_plan.group_of(slot)
                            for slot, _ in revealed_by_slot
                        }
                    )
            result = self.call_with_retry(
                record,
                ENGINE,
                SERVICE,
                m.KIND_FINALIZE,
                m.FinalizeRound(round_id, tuple(repairs)),
            )
        except NetworkError as exc:
            raise self._abort(record, f"finalize could not complete: {exc}")
        self._audit_result(record, result, repairs)
        if record.subgroup_plan is not None:
            try:
                streaming_state = self.service.round_state(round_id)
            except (ProtocolError, AttributeError):
                streaming_state = None
            accumulator = getattr(streaming_state, "accumulator", None)
            if accumulator is not None:
                record.streamed = accumulator.folded
        self._close_round_clients(record)
        report = self._build_report(record, result, len(repairs))
        self.reports[round_id] = report
        del self._rounds[round_id]
        self.monitor.close(round_id)
        return report

    def _scale_point_product(self, record: _RoundRecord):
        """Merged per-shard partial products for the sum-zero audit.

        ``None`` (the serial flat product) unless the round ran the scale
        path, which leaves its shard plan on the record.  Modular
        multiplication is associative, so the merged product equals the
        flat one — this only changes *where* the multiplies happen.
        """
        plan = getattr(record, "scale_plan", None)
        if plan is None or record.commitments is None:
            return None
        from repro.crypto.commitments import resolve_group
        from repro.scale import shard as scale_shard

        prime = resolve_group(record.commitments.group_name).prime
        partials = scale_shard.partial_point_products(
            record.commitments.points, plan, prime
        )
        return scale_shard.merge_point_partials(partials, prime)

    def _batch_verified_reveals(
        self, record: _RoundRecord, revealed_by_slot
    ) -> bool:
        """One multi-exp over every dropout reveal's Pedersen check.

        ``True`` means all reveals verified in a single randomized batch
        and the per-slot sweep may skip its point checks.  ``False``
        means either the batch was not applicable (too few openings,
        legacy bare-word reveals, no commitments) or it failed — in both
        cases :meth:`_verified_repair_mask` runs the per-slot check
        unchanged, preserving exact blame and abort behavior.
        """
        if record.commitments is None:
            return False
        openings = [
            (slot, revealed)
            for slot, revealed in revealed_by_slot
            if isinstance(revealed, MaskOpening)
        ]
        if len(openings) < 2 or len(openings) != len(revealed_by_slot):
            return False
        if batch_verify_openings(record.commitments, openings):
            group_ops.bump("batch_verifications")
            return True
        group_ops.bump("batch_fallbacks")
        return False

    def _verified_repair_mask(
        self, record: _RoundRecord, slot: int, revealed, preverified: bool = False
    ) -> tuple[int, ...]:
        """Check a revealed dropout mask against the round's commitments.

        Commitment-aware provisioners reveal a full
        :class:`~repro.crypto.commitments.MaskOpening`; the engine verifies
        it against the slot's published commitment before trusting the
        mask.  A blinder that reveals a mask other than the one it
        committed to is blamed and the round aborts — §3 repair never
        silently folds a forged mask into the aggregate.  Legacy
        provisioners reveal a bare word sequence, which is used as-is.
        ``preverified`` marks reveals already covered by a successful
        :meth:`_batch_verified_reveals` sweep, whose checks subsume this
        slot's.
        """
        if isinstance(revealed, MaskOpening):
            if record.commitments is not None and not preverified:
                try:
                    verify_opening(record.commitments, slot, revealed)
                except MaskVerificationError as exc:
                    self.monitor.record(
                        record.round_id,
                        BLINDER,
                        VIOLATION_MASK_OPENING,
                        f"dropout reveal for slot {slot}: {exc}",
                    )
                    raise self._abort(
                        record,
                        f"blinding service revealed a mask for slot {slot} "
                        f"that does not match its commitment: {exc}",
                    )
            return tuple(int(v) for v in revealed.mask)
        return tuple(int(v) for v in revealed)

    def _reconcile_consumed(self, record: _RoundRecord) -> None:
        """Adopt acceptances the service holds that the engine never saw.

        Under a duplicating network a submission whose every *witnessed*
        attempt failed can still land: a queued duplicate executes after
        the sender gave up, its response goes nowhere, and the service
        consumes the slot without the engine learning of it.  The slot
        being consumed at the service is ground truth — revealing a
        consumed slot's mask as §3 repair would fold residual mask
        material into the aggregate — so before choosing repairs the
        engine syncs its accounting against the monitor's service-gate
        record, cross-checked with the nonces the service actually holds.
        Signatures keep the adoption sound: the service can only hold
        contributions a genuine Glimmer signed, and the finalize audit
        recomputes the aggregate over exactly that set.
        """
        state_getter = getattr(self.service, "round_state", None)
        if state_getter is None:
            return
        try:
            state = state_getter(record.round_id)
        except ProtocolError:
            return
        held = {c.nonce for c in getattr(state, "accepted", ())}
        if not held:
            return
        claimed = self.monitor.accepted_slots(record.round_id)
        for slot, user_id in record.provisioned.items():
            if slot in record.consumed:
                continue
            nonce = claimed.get(slot)
            if nonce is None or nonce not in held:
                continue
            record.consumed.add(slot)
            record.slot_nonce[slot] = nonce
            record.reconciled += 1

    def _evict_offenders(self, record: _RoundRecord) -> None:
        """Quarantine this round's offenders and evict their contributions.

        Offenders flagged for equivocation, flooding, or malformed traffic
        are blocked from future rounds, and any contribution of theirs the
        service already accepted is evicted: the slot's accepted nonce is
        removed, the slot reverts to unconsumed, and §3 dropout repair
        reveals its mask — so the finalized aggregate is exact over the
        honest contributions only.
        """
        round_id = record.round_id
        kinds = (
            VIOLATION_EQUIVOCATION,
            VIOLATION_FLOODING,
            VIOLATION_MALFORMED,
        )
        for offender in self.monitor.offenders_for(round_id, kinds):
            for violation in self.monitor.violations_for(round_id):
                if violation.offender == offender and violation.kind in kinds:
                    self.quarantine.block(violation)
                    break
            if offender not in record.quarantined_now:
                record.quarantined_now.append(offender)
            prefix = "client:"
            if not offender.startswith(prefix):
                continue
            client_id = offender[len(prefix):]
            evicted = False
            for slot, user_id in record.provisioned.items():
                if user_id != client_id or slot not in record.consumed:
                    continue
                nonce = record.slot_nonce.get(slot)
                if nonce is None or not hasattr(self.service, "evict_nonce"):
                    continue
                if self.service.evict_nonce(round_id, nonce):
                    record.consumed.discard(slot)
                    record.slot_nonce.pop(slot, None)
                    self.monitor.forget_slot(round_id, slot)
                    evicted = True
            if client_id in record.participants:
                record.outcomes[client_id] = (
                    OUTCOME_EVICTED if evicted else OUTCOME_QUARANTINED
                )

    def _audit_result(self, record: _RoundRecord, result, repairs) -> None:
        """Audit the service's finalize result before trusting it.

        The service returns the contributions it aggregated; the engine
        re-checks nonce uniqueness, that every contribution it witnessed
        being accepted is present, the counts, every signature, and —
        decisive against a tampering aggregator — recomputes the aggregate
        bit-exactly.  Legacy service results without the audit trail
        (``accepted`` empty) pass through unchecked.
        """
        accepted = getattr(result, "accepted", ())
        if not accepted:
            return
        problems: list[str] = []
        nonces = [c.nonce for c in accepted]
        if len(set(nonces)) != len(nonces):
            problems.append("duplicate nonces in the aggregated set")
        witnessed = set(record.slot_nonce.values())
        if not witnessed.issubset(set(nonces)):
            problems.append(
                "an engine-witnessed accepted contribution is missing"
            )
        if result.num_contributions != len(accepted):
            problems.append(
                f"contribution count {result.num_contributions} != "
                f"{len(accepted)} aggregated"
            )
        if result.num_dropouts_repaired != len(repairs):
            problems.append(
                f"repair count {result.num_dropouts_repaired} != "
                f"{len(repairs)} masks handed over"
            )
        if self.signing_public is not None and not getattr(
            record, "preverified", False
        ):
            # Scale-path rounds verified every accepted signature exactly
            # once already (worker pre-verification or service admission);
            # re-walking them here would serialize what the pool spread out.
            # The cohort is first tried as ONE randomized batch (~25x
            # cheaper than the loop); only a failed or unbatchable cohort
            # walks per signature, which is also what names the culprit.
            try:
                batched = batch_verify_signatures(
                    self.signing_public,
                    [
                        (contribution.signed_bytes(), contribution.signature)
                        for contribution in accepted
                    ],
                )
            except Exception:
                batched = None
            if batched is True:
                group_ops.bump("batch_verifications")
            else:
                if batched is False:
                    group_ops.bump("batch_fallbacks")
                for contribution in accepted:
                    try:
                        valid = self.signing_public.is_valid(
                            contribution.signed_bytes(), contribution.signature
                        )
                    except Exception:
                        valid = False
                    if not valid:
                        problems.append("an aggregated contribution is unsigned")
                        break
        codec = self.codec or getattr(self.service, "codec", None)
        if not problems and codec is not None:
            expected = self._recompute_aggregate(record, accepted, repairs, codec)
            if expected is not None and not np.array_equal(
                np.asarray(expected), np.asarray(result.aggregate)
            ):
                problems.append("aggregate does not match the recomputation")
        if problems:
            detail = "; ".join(problems)
            self.monitor.record(
                record.round_id, SERVICE, VIOLATION_AGGREGATE_TAMPERING, detail
            )
            raise self._abort(
                record, f"service finalize result failed the audit: {detail}"
            )

    def _recompute_aggregate(self, record: _RoundRecord, accepted, repairs, codec):
        try:
            if record.blinded:
                # Chunked accumulate: the audit only needs the sum, so the
                # full cohort matrix is never materialized here either.
                total = kernels.ring_accumulate(
                    (c.ring_payload for c in accepted), codec.modulus_bits
                )
                if repairs:
                    # Repairs commute in the ring, so one summed repair
                    # vector applied once equals applying each in turn.
                    repair = kernels.ring_accumulate(
                        (list(mask) for mask in repairs), codec.modulus_bits
                    )
                    total = kernels.ring_add(total, repair, codec.modulus_bits)
                return codec.decode(total) / len(accepted)
            stacked = np.stack(
                [np.asarray(c.plain_payload, dtype=float) for c in accepted]
            )
            return stacked.mean(axis=0)
        except Exception:
            return None

    def _close_round_clients(self, record: _RoundRecord) -> None:
        """Best-effort teardown: tell provisioned clients to purge the round.

        A lost close message only delays the purge (the client's own
        lifecycle hooks still bound mask growth); it never affects the
        already-finalized aggregate, so there is no retry."""
        notified: set[str] = set()
        for user_id in record.provisioned.values():
            if user_id in notified or user_id not in self.clients:
                continue
            notified.add(user_id)
            try:
                self.network.call(
                    ENGINE,
                    client_endpoint(user_id),
                    m.KIND_CLOSE_ROUND,
                    m.CloseRound(record.round_id),
                )
            except (NetworkError, ReproError):
                pass

    def abandon_round(self, round_id: int) -> None:
        """Forget an aborted round's engine-side state.

        Safe mid-phase (an open phase window is closed first, so the
        record never leaks a dangling window) and idempotent: abandoning
        a round that was already abandoned — or never tracked — is a
        no-op.  Monitor state for the round is closed if it was still
        live, so a monitor entry cannot outlive its round record.
        """
        record = self._rounds.pop(round_id, None)
        if record is not None:
            self._close_phase(record)
            self.monitor.close(round_id)

    def _abort(self, record: _RoundRecord, reason: str) -> RoundAbortedError:
        """Close the round's books and build the error for an abort.

        The phase window is closed, a *partial* report (``aborted=True``,
        no aggregate) is recorded under the round id, and the returned
        :class:`RoundAbortedError` carries that report as ``.report``.
        The record stays tracked so callers can inspect it before
        :meth:`abandon_round`.  Callers ``raise self._abort(...)``.
        """
        self._close_phase(record)
        num_contributions = 0
        rejected: dict[str, int] = {}
        try:
            state = self.service.round_state(record.round_id)
            num_contributions = len(state.accepted)
            rejected = dict(state.rejected)
        except (ProtocolError, AttributeError):
            pass
        report = self._report_from(
            record,
            masks_repaired=0,
            num_contributions=num_contributions,
            rejected=rejected,
            aggregate=None,
            service_result=None,
            aborted=True,
            abort_reason=reason,
        )
        self.reports[record.round_id] = report
        self.monitor.close(record.round_id)
        error = RoundAbortedError(f"round {record.round_id}: {reason}")
        error.report = report
        return error

    # ------------------------------------------------------------ whole round

    def _restart_client(self, record: _RoundRecord, client) -> bool:
        """Try to bring a crashed client back from its sealed checkpoints."""
        if not hasattr(client, "restart"):
            return False
        try:
            client.restart()
        except Exception:
            return False
        record.recoveries += 1
        return True

    def run_round(
        self,
        round_id: int,
        participants: Iterable[str],
        values_by_user: Mapping[str, Sequence[float]],
        features: Sequence,
        *,
        dropouts: Iterable[str] = (),
        collect_dropouts: Iterable[str] = (),
        deadline_ms: float | None = None,
        phase_deadlines_ms: Mapping[str, float] | None = None,
        claims_by_user: Mapping[str, Mapping] | None = None,
        context_fields: Sequence[str] = (),
        recovery_threshold: float | None = None,
        blind: bool = True,
        adaptive: AdaptiveDeadlines | None = None,
    ) -> RoundReport:
        """Run one full round: open → provision → collect → finalize.

        ``dropouts`` are participants that go silent before doing anything;
        ``collect_dropouts`` are nastier — they complete provisioning (a
        mask is charged to their slot) and then never contribute, which is
        the exact §3 repair case.  A participant whose provisioning or
        submission is lost to the network, or whose enclave crashes and
        cannot be recovered, is treated the same way.

        ``phase_deadlines_ms`` optionally bounds the simulated duration of
        the ``"provision"`` and ``"collect"`` phases individually (each
        measured from the phase start); participants reached after a phase
        deadline are marked ``deadline-missed`` and degrade into dropouts
        rather than failing the round, down to ``recovery_threshold``.

        ``adaptive`` replaces those fixed per-phase budgets with
        observation-derived ones (see
        :class:`~repro.runtime.deadlines.AdaptiveDeadlines`): each phase's
        cutoff is computed from the latency percentiles of its own
        completed operations, stragglers are counted, and — with
        ``adaptive.hedge`` — a participant that fails its command gets one
        hedged re-delivery (retransmission-numbered, answered from handler
        idempotency caches) before degrading into a dropout.  When both
        ``adaptive`` and ``phase_deadlines_ms`` are given, ``adaptive``
        wins.

        Raises :class:`RoundAbortedError` when no contribution is
        accepted, when survivors fall below ``recovery_threshold`` (a
        fraction of participants), or when a submission cannot be
        reconciled — in every case with phases closed and a partial
        ``aborted=True`` report recorded in :attr:`reports`.
        """
        stages = self.round_stages(
            round_id,
            participants,
            values_by_user,
            features,
            dropouts=dropouts,
            collect_dropouts=collect_dropouts,
            deadline_ms=deadline_ms,
            phase_deadlines_ms=phase_deadlines_ms,
            claims_by_user=claims_by_user,
            context_fields=context_fields,
            recovery_threshold=recovery_threshold,
            blind=blind,
            adaptive=adaptive,
        )
        while True:
            try:
                next(stages)
            except StopIteration as stop:
                return stop.value

    def round_stages(
        self,
        round_id: int,
        participants: Iterable[str],
        values_by_user: Mapping[str, Sequence[float]],
        features: Sequence,
        *,
        dropouts: Iterable[str] = (),
        collect_dropouts: Iterable[str] = (),
        deadline_ms: float | None = None,
        phase_deadlines_ms: Mapping[str, float] | None = None,
        claims_by_user: Mapping[str, Mapping] | None = None,
        context_fields: Sequence[str] = (),
        recovery_threshold: float | None = None,
        blind: bool = True,
        adaptive: AdaptiveDeadlines | None = None,
    ):
        """One round as a resumable generator of phase-labelled stages.

        This is :meth:`run_round`'s body, reshaped so a scheduler can own
        the pacing: each ``yield`` marks a point where the round can be
        suspended — after open, after every provisioned or collected
        participant, and before finalize — and the yielded string names
        the phase being worked.  Draining the generator to completion
        performs *exactly* the serial round (``run_round`` is literally
        that loop), so interleaving multiple rounds' generators changes
        scheduling only, never per-round results.  The final
        :class:`RoundReport` is the generator's return value
        (``StopIteration.value``); aborts raise through ``next()``
        unchanged.
        """
        participants = list(participants)
        silent = set(dropouts)
        silent_after_provision = set(collect_dropouts)
        threshold = (
            self.recovery_threshold
            if recovery_threshold is None
            else float(recovery_threshold)
        )
        phase_deadlines = dict(phase_deadlines_ms or {})
        features = tuple(features)
        if (
            self.parallelism is not None
            and self.parallelism.enabled
            and adaptive is None
            and self.link_conditions is None
        ):
            # Adaptive deadlines and link-conditions trimming are serial-
            # path features: both observe per-operation timing on the bus,
            # which the sharded fast path deliberately does not expose.
            from repro.scale import rounds as scale_rounds

            if scale_rounds.parallel_eligible(
                self,
                participants=participants,
                blind=blind,
                deadline_ms=deadline_ms,
                phase_deadlines_ms=phase_deadlines,
                claims_by_user=claims_by_user,
                context_fields=context_fields,
            ):
                return scale_rounds.run_parallel_round(
                    self,
                    self.parallelism,
                    round_id,
                    participants,
                    values_by_user,
                    features,
                    dropouts=silent,
                    collect_dropouts=silent_after_provision,
                    recovery_threshold=threshold,
                )
        subgroup_size = 0
        if (
            self.parallelism is not None
            and getattr(self.parallelism, "hierarchical", False)
            and adaptive is None
            and self.link_conditions is None
        ):
            # Hierarchical rounds are the serial path with grouped masks
            # and a streaming service round — same messages, same slots,
            # same per-slot repair.  The gate (PR-5 style) routes anything
            # that could need eviction or per-row audit back to the flat
            # path unchanged.
            from repro.scale import hierarchy

            if hierarchy.hierarchical_eligible(
                self,
                participants=participants,
                blind=blind,
                deadline_ms=deadline_ms,
                phase_deadlines_ms=phase_deadlines,
                claims_by_user=claims_by_user,
                context_fields=context_fields,
            ):
                subgroup_size = self.parallelism.subgroup_size
        try:
            self.open_round(
                round_id,
                len(participants),
                len(features),
                blinded=blind,
                subgroup_size=subgroup_size,
            )
        except NetworkError as exc:
            # The round is tracked the moment open_round starts, so a
            # failed open still aborts cleanly with a partial report.
            record = self.round_record(round_id)
            raise self._abort(record, f"round could not be opened: {exc}")
        yield "open"
        record = self.round_record(round_id)
        for user_id in participants:
            record.note_participant(user_id)
        quarantined = {
            user_id
            for user_id in participants
            if self.quarantine.is_blocked(client_endpoint(user_id))
        }
        for user_id in quarantined:
            # Known offenders sit the round out entirely: no mask slot is
            # charged to them and no command reaches them.
            record.outcomes[user_id] = OUTCOME_QUARANTINED
        hedging = adaptive is not None and adaptive.hedge
        if blind:
            self._start_phase(record, "provision")
            provision_deadline = self._phase_deadline(phase_deadlines, "provision")
            controller = None
            if adaptive is not None:
                provision_deadline = None
                controller = PhaseDeadlineController(
                    adaptive,
                    self.network.clock.now_ms(),
                    len(participants) - len(quarantined),
                )
            self._trim_partitioned(record, participants, quarantined)
            for index, user_id in enumerate(participants):
                yield "provision"
                if user_id in quarantined:
                    continue
                if record.outcomes.get(user_id) == OUTCOME_PARTITIONED:
                    continue
                if user_id in silent:
                    record.outcomes[user_id] = OUTCOME_DROPOUT
                    continue
                cutoff = (
                    controller.cutoff_ms()
                    if controller is not None
                    else provision_deadline
                )
                if cutoff is not None and self.network.clock.now_ms() > cutoff:
                    record.outcomes[user_id] = OUTCOME_DEADLINE_MISSED
                    continue
                started = self.network.clock.now_ms()
                try:
                    self.provision_mask(user_id, round_id, index)
                except MaskVerificationError as exc:
                    # The client's Glimmer refused a delivered mask that
                    # fails its published commitment: the blinding service
                    # is lying, and no aggregate this round can be trusted.
                    self.monitor.record(
                        round_id, BLINDER, VIOLATION_MASK_OPENING, str(exc)
                    )
                    raise self._abort(
                        record,
                        f"blinding service delivered a mask that fails its "
                        f"commitment: {exc}",
                    )
                except NetworkError:
                    if hedging and self._hedge_provision(
                        record, user_id, round_id, index
                    ):
                        self._observe_op(record, controller, started)
                        continue
                    record.outcomes[user_id] = OUTCOME_PROVISION_FAILED
                except EnclaveError:
                    # Client enclave died mid-provision.  Restart it from
                    # sealed state and retry the slot once; a second death
                    # writes the client off for this round.
                    if self._recover_and_retry_provision(
                        record, user_id, round_id, index
                    ):
                        self._observe_op(record, controller, started)
                        continue
                    record.outcomes[user_id] = OUTCOME_CRASHED
                else:
                    self._observe_op(record, controller, started)
        self._start_phase(record, "collect")
        deadline = None if deadline_ms is None else record.opened_at_ms + deadline_ms
        collect_deadline = self._phase_deadline(phase_deadlines, "collect")
        collect_controller = None
        if adaptive is not None:
            collect_deadline = None
            collect_controller = PhaseDeadlineController(
                adaptive,
                self.network.clock.now_ms(),
                len(participants) - len(quarantined),
            )
        self._trim_partitioned(record, participants, quarantined)
        for user_id in participants:
            yield "collect"
            if user_id in quarantined:
                continue
            if user_id in silent:
                record.outcomes.setdefault(user_id, OUTCOME_DROPOUT)
                continue
            if user_id in silent_after_provision:
                record.outcomes[user_id] = OUTCOME_DROPOUT
                continue
            if record.outcomes.get(user_id) in (
                OUTCOME_PROVISION_FAILED,
                OUTCOME_CRASHED,
                OUTCOME_DEADLINE_MISSED,
                OUTCOME_PARTITIONED,
            ):
                continue
            phase_cutoff = (
                collect_controller.cutoff_ms()
                if collect_controller is not None
                else collect_deadline
            )
            if deadline is not None and self.network.clock.now_ms() > deadline:
                record.outcomes[user_id] = OUTCOME_DEADLINE_MISSED
                continue
            if (
                phase_cutoff is not None
                and self.network.clock.now_ms() > phase_cutoff
            ):
                record.outcomes[user_id] = OUTCOME_DEADLINE_MISSED
                continue
            effective_cutoff = min(
                (c for c in (deadline, phase_cutoff) if c is not None),
                default=None,
            )
            started = self.network.clock.now_ms()
            claims = (claims_by_user or {}).get(user_id)
            try:
                outcome = self.contribute(
                    user_id,
                    round_id,
                    values_by_user[user_id],
                    features,
                    blind=blind,
                    claims=claims,
                    context_fields=context_fields,
                )
            except NetworkError:
                outcome = None
                if hedging:
                    outcome = self._hedge_contribute(
                        record,
                        user_id,
                        round_id,
                        values_by_user[user_id],
                        features,
                        blind=blind,
                        claims=claims,
                        context_fields=context_fields,
                    )
                if outcome is None:
                    record.outcomes[user_id] = OUTCOME_UNREACHABLE
                    continue
            self._observe_op(record, collect_controller, started)
            if outcome == OUTCOME_ACCEPTED and (
                effective_cutoff is not None
                and self.network.clock.now_ms() > effective_cutoff
            ):
                # The reply landed, but only after the deadline had
                # passed — from the round's point of view this client
                # missed it, and counting the contribution anyway would
                # double-book the slot against the deadline bookkeeping.
                self._discard_late_reply(record, user_id)
                continue
            if outcome == OUTCOME_CRASHED:
                # One recovery attempt: restart the enclave from sealed
                # checkpoints and re-issue the contribute command.  If the
                # checkpoint was refused (rollback) the retry fails closed
                # inside the enclave and the slot is repaired by reveal.
                client = self.clients.get(user_id)
                if client is not None and self._restart_client(record, client):
                    try:
                        self.contribute(
                            user_id,
                            round_id,
                            values_by_user[user_id],
                            features,
                            blind=blind,
                            claims=claims,
                            context_fields=context_fields,
                        )
                    except NetworkError:
                        record.outcomes[user_id] = OUTCOME_UNREACHABLE
        if record.unresolved:
            raise self._abort(
                record,
                f"{len(record.unresolved)} submission(s) could not be "
                "reconciled (accepted-or-not unknown)",
            )
        survivors = [
            u for u in participants if record.outcomes.get(u) == OUTCOME_ACCEPTED
        ]
        survivors += [
            u
            for slot, u in record.provisioned.items()
            if slot in record.consumed and u not in survivors
        ]
        if not survivors:
            raise self._abort(
                record,
                f"no contribution was accepted "
                f"({len(participants)} participants)",
            )
        if threshold and len(survivors) < threshold * len(participants):
            raise self._abort(
                record,
                f"{len(survivors)}/{len(participants)} survivors is below "
                f"the recovery threshold of {threshold:.0%}",
            )
        yield "finalize"
        return self.finalize_round(round_id)

    def _phase_deadline(
        self, phase_deadlines: Mapping[str, float], phase: str
    ) -> float | None:
        budget = phase_deadlines.get(phase)
        if budget is None:
            return None
        return self.network.clock.now_ms() + float(budget)

    def _recover_and_retry_provision(
        self, record: _RoundRecord, user_id: str, round_id: int, index: int
    ) -> bool:
        client = self.clients.get(user_id)
        if client is None or not self._restart_client(record, client):
            return False
        try:
            self.provision_mask(user_id, round_id, index)
        except (NetworkError, EnclaveError):
            return False
        return True

    def _trim_partitioned(
        self,
        record: _RoundRecord,
        participants: Sequence[str],
        quarantined: set[str],
    ) -> None:
        """Mark participants the link oracle reports offline right now.

        Called at phase starts when a :class:`LinkConditions` oracle is
        attached: a partitioned device would burn its full retry budget
        per command and stall the whole cohort, so it is degraded into
        the §3 dropout-repair path immediately (``partitioned``).  A
        device whose episode ends before the next phase boundary rejoins
        naturally — trimming is per-phase, not per-round.
        """
        conditions = self.link_conditions
        if conditions is None:
            return
        now = self.network.clock.now_ms()
        for user_id in participants:
            if user_id in quarantined:
                continue
            if record.outcomes.get(user_id) == OUTCOME_PARTITIONED:
                continue
            if conditions.offline_for(user_id, now):
                record.outcomes[user_id] = OUTCOME_PARTITIONED
                record.partition_trimmed += 1

    def _observe_op(
        self,
        record: _RoundRecord,
        controller: PhaseDeadlineController | None,
        started_ms: float,
    ) -> None:
        """Feed one completed operation's latency to the phase controller."""
        if controller is None:
            return
        if controller.observe(self.network.clock.now_ms() - started_ms):
            record.stragglers += 1

    def _hedge_provision(
        self, record: _RoundRecord, user_id: str, round_id: int, index: int
    ) -> bool:
        """One hedged provision re-delivery before writing the slot off.

        The re-issued command starts its attempt numbering past
        ``max_attempts``, so the client endpoint sees an unambiguous
        retransmission and answers from its idempotency cache if the
        original actually executed — pure re-delivery, never
        re-execution.
        """
        record.hedged += 1
        try:
            self.provision_mask(
                user_id, round_id, index, first_attempt=self.max_attempts + 1
            )
        except (NetworkError, EnclaveError):
            return False
        return True

    def _hedge_contribute(
        self,
        record: _RoundRecord,
        user_id: str,
        round_id: int,
        values: Sequence[float],
        features: Sequence,
        *,
        blind: bool,
        claims: Mapping | None,
        context_fields: Sequence[str],
    ) -> str | None:
        """One hedged contribute re-delivery; outcome or ``None`` if lost."""
        record.hedged += 1
        try:
            return self.contribute(
                user_id,
                round_id,
                values,
                features,
                blind=blind,
                claims=claims,
                context_fields=context_fields,
                first_attempt=self.max_attempts + 1,
            )
        except NetworkError:
            return None

    def _discard_late_reply(self, record: _RoundRecord, user_id: str) -> None:
        """Evict a contribution whose accept reply landed past the deadline.

        The client was about to be marked ``deadline-missed`` when its
        in-flight reply arrived: without this, the round would count the
        contribution *and* the deadline bookkeeping — double-booking the
        slot.  The accepted nonce is evicted from the service, the slot
        reverts to unconsumed (so §3 repair reveals its mask), and the
        client is marked ``deadline-missed`` after all.  Discard only
        happens when the eviction verifiably succeeds; if the service
        cannot evict (plain rounds, legacy services), the accept stands —
        exactness outranks deadline hygiene.
        """
        slots = [
            slot
            for slot, owner in record.provisioned.items()
            if owner == user_id and slot in record.consumed
        ]
        for slot in slots:
            nonce = record.slot_nonce.get(slot)
            if nonce is None or not hasattr(self.service, "evict_nonce"):
                continue
            if self.service.evict_nonce(record.round_id, nonce):
                record.consumed.discard(slot)
                record.slot_nonce.pop(slot, None)
                self.monitor.forget_slot(record.round_id, slot)
                record.outcomes[user_id] = OUTCOME_DEADLINE_MISSED
                record.late_discards += 1

    # --------------------------------------------------------------- reports

    def _report_from(
        self,
        record: _RoundRecord,
        *,
        masks_repaired: int,
        num_contributions: int,
        rejected: Mapping[str, int],
        aggregate,
        service_result,
        aborted: bool = False,
        abort_reason: str | None = None,
    ) -> RoundReport:
        cycles: dict[str, int] = {}
        for client_id, before in record.meter_start.items():
            client = record.joined.get(client_id)
            if client is None:
                continue
            after = meter_snapshot(client.glimmer.meter)
            for bucket, grown in meter_delta(before, after).items():
                cycles[bucket] = cycles.get(bucket, 0) + grown
        faults = 0
        if self.fault_injector is not None:
            faults = len(self.fault_injector.fired) - record.faults0
        # Process-wide growth while this round was open; with overlapping
        # rounds the attribution is approximate, the totals exact.
        pk_delta = group_ops.counters_delta(record.pk_counters0)
        return RoundReport(
            round_id=record.round_id,
            blinded=record.blinded,
            participants=tuple(record.participants),
            outcomes=dict(record.outcomes),
            num_slots=record.num_slots,
            masks_repaired=masks_repaired,
            num_contributions=num_contributions,
            rejected=dict(rejected),
            messages_sent=self.network.messages_delivered
            + self.network.messages_dropped
            - record.messages0,
            messages_dropped=self.network.messages_dropped - record.dropped0,
            retries=record.retries,
            bytes_on_wire=self.network.bytes_delivered - record.bytes0,
            latency_ms=self.network.clock.now_ms() - record.opened_at_ms,
            ecalls=record.ecalls,
            enclave_cycles=cycles,
            phases=tuple(record.phases),
            aggregate=aggregate,
            service_result=service_result,
            aborted=aborted,
            abort_reason=abort_reason,
            client_restarts=record.recoveries,
            faults_injected=faults,
            violations=self.monitor.violations_for(record.round_id),
            quarantined=tuple(record.quarantined_now),
            late_replies_discarded=record.late_discards,
            hedged_deliveries=record.hedged,
            stragglers=record.stragglers,
            partition_trimmed=record.partition_trimmed,
            submissions_reconciled=record.reconciled,
            batch_verifications=pk_delta["batch_verifications"],
            batch_fallbacks=pk_delta["batch_fallbacks"],
            handshakes_resumed=pk_delta["handshakes_resumed"],
            membership_checks_skipped=pk_delta["membership_checks_skipped"],
            subgroup_size=record.subgroup_size,
            subgroups_aggregated=(
                record.subgroup_plan.num_groups
                if record.subgroup_plan is not None
                else 0
            ),
            subgroup_dropout_repairs=record.subgroup_repairs,
            submissions_streamed=record.streamed,
        )

    def _build_report(
        self, record: _RoundRecord, result, masks_repaired: int
    ) -> RoundReport:
        self._close_phase(record)
        return self._report_from(
            record,
            masks_repaired=masks_repaired,
            num_contributions=result.num_contributions,
            rejected=dict(result.rejected),
            aggregate=result.aggregate,
            service_result=result,
        )
