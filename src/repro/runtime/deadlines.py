"""Adaptive per-phase deadlines derived from observed latency.

Fixed ``phase_deadlines_ms`` budgets assume the operator knows the
fleet's latency distribution in advance; a degraded-link fleet makes
that assumption absurd — the right budget for an urban-wifi cohort
strands half a cellular-edge cohort.  :class:`AdaptiveDeadlines` instead
derives each phase's cutoff from the latencies the engine *observes*
while working the phase: after ``warmup`` successful operations, the
phase deadline becomes::

    phase_start + max(min_budget_ms, pctl(percentile) * multiplier * ops)

where ``ops`` is the number of participants the phase must serve.  The
cutoff is re-derived as observations accumulate, so a phase that starts
slow earns a longer budget instead of stranding its tail — while a
genuinely stuck cohort is still bounded, because ``multiplier`` times a
high percentile is a *tolerance*, not an open door.

The controller also classifies **stragglers**: a single operation slower
than ``pctl * multiplier`` is flagged (telemetry), and with ``hedge``
enabled the engine grants a failed participant one hedged re-delivery —
a retransmission-numbered extra attempt — before degrading it into a
dropout.

Percentiles use the same subnormal-safe linear interpolation as
:func:`numpy.percentile` on the observed sample list; everything is
deterministic given the simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdaptiveDeadlines", "PhaseDeadlineController"]


@dataclass(frozen=True)
class AdaptiveDeadlines:
    """Policy knobs for observation-derived phase deadlines."""

    percentile: float = 90.0
    multiplier: float = 5.0
    min_budget_ms: float = 1000.0
    warmup: int = 2
    """Successful operations to observe before any cutoff applies; a
    phase with fewer observations than this has no adaptive deadline."""
    hedge: bool = True
    """Grant a failed participant one hedged re-delivery (an extra,
    retransmission-numbered attempt) before degrading it to a dropout."""


class PhaseDeadlineController:
    """Derives one phase's cutoff from per-operation latency samples."""

    def __init__(
        self, policy: AdaptiveDeadlines, phase_start_ms: float, expected_ops: int
    ) -> None:
        self.policy = policy
        self.phase_start_ms = float(phase_start_ms)
        self.expected_ops = max(1, int(expected_ops))
        self.samples: list[float] = []
        self.stragglers = 0

    def observe(self, elapsed_ms: float) -> bool:
        """Record one successful operation; True if it was a straggler."""
        threshold = self.straggler_threshold_ms()
        self.samples.append(float(elapsed_ms))
        if threshold is not None and elapsed_ms > threshold:
            self.stragglers += 1
            return True
        return False

    def straggler_threshold_ms(self) -> float | None:
        """Per-operation tolerance; ``None`` until warmup completes."""
        if len(self.samples) < self.policy.warmup:
            return None
        pctl = float(np.percentile(self.samples, self.policy.percentile))
        return pctl * self.policy.multiplier

    def cutoff_ms(self) -> float | None:
        """Absolute phase deadline; ``None`` until warmup completes."""
        threshold = self.straggler_threshold_ms()
        if threshold is None:
            return None
        budget = max(
            self.policy.min_budget_ms, threshold * self.expected_ops
        )
        return self.phase_start_ms + budget
