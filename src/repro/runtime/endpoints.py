"""Bus-facing adapters for the round participants.

Each adapter turns one protocol party into a named transport endpoint:
handler keys are the message kinds in :mod:`repro.runtime.messages`, and
handler bodies call the party's existing methods — the parties themselves
do not know about the bus.  The client adapter is the interesting one: a
``client/provision-mask`` or ``client/contribute`` command makes the
*client* originate further messages (mask request to the blinding
service, signed submission to the cloud service), so the full §3 message
flow goes over the wire, adversaries included.

Since the response leg of a call can now drop (see
:mod:`repro.network.transport`), delivery is at-least-once and every
handler with side effects is idempotent **for retransmissions**: when
``message.attempt > 1`` the handler may answer from its result cache.  A
*fresh* message carrying old content (``attempt == 1``) never takes that
shortcut — replay attacks still face the strict protocol checks, which is
exactly the distinction E2's replay arm relies on.

This is also where the client-lifecycle fault sites live: a faulted run
can kill the client process while it handles a command — before signing,
or in the gap after the Glimmer signed but before the submission went out
— which is the adversarial timing the sealed-checkpoint recovery design
exists to survive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import (
    CryptoError,
    EnclaveError,
    NetworkError,
    ProtocolError,
    ProtocolViolation,
    ValidationError,
)
from repro.faults import (
    ACTION_CRASH,
    SITE_CLIENT_POST_SIGN,
    SITE_CLIENT_PRE_SIGN,
    SITE_CLIENT_PROVISION,
)
from repro.network.message import Message
from repro.runtime import messages as m
from repro.runtime.wire import validate_payload
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_CRASHED,
    OUTCOME_SERVICE_REJECTED,
    OUTCOME_SUBMIT_FAILED,
    OUTCOME_VALIDATION_REJECTED,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.engine import RoundEngine


def _checked(monitor, message: Message) -> None:
    """Schema-validate one inbound message, logging any violation.

    Wire validation happens before handler logic; a failed check is
    Byzantine evidence attributed to the sender, recorded with the
    monitor (when one is attached) and re-raised to reject the call.
    """
    try:
        validate_payload(message.kind, message.sender, message.payload)
    except ProtocolViolation as exc:
        if monitor is not None and exc.round_id is not None:
            monitor.record(
                exc.round_id, message.sender, exc.kind, str(exc)
            )
        raise


class ServiceEndpoint:
    """The cloud service as a transport endpoint."""

    def __init__(self, service, monitor=None) -> None:
        self.service = service
        self.monitor = monitor
        self._submit_results: dict[bytes, bool] = {}

    def handlers(self) -> dict:
        return {
            m.KIND_OPEN_SERVICE: self._handle_open,
            m.KIND_SUBMIT: self._handle_submit,
            m.KIND_QUERY_SUBMISSION: self._handle_query_submission,
            m.KIND_FINALIZE: self._handle_finalize,
        }

    def _handle_open(self, message: Message):
        _checked(self.monitor, message)
        request: m.OpenServiceRound = message.payload
        if message.attempt > 1:
            try:
                state = self.service.round_state(request.round_id)
            except ProtocolError:
                state = None
            if state is not None and state.blinded == request.blinded:
                return True  # the earlier attempt's open landed; ack again
        if request.subgroup_size:
            # Only reached when the engine's hierarchical gate already
            # established the service is a stock CloudService; legacy and
            # wrapped services are always opened with the flat signature.
            self.service.open_round(
                request.round_id,
                request.expected_parties,
                blinded=request.blinded,
                subgroup_size=request.subgroup_size,
            )
            return True
        self.service.open_round(
            request.round_id, request.expected_parties, blinded=request.blinded
        )
        return True

    def _handle_submit(self, message: Message) -> bool:
        _checked(self.monitor, message)
        request: m.SubmitContribution = message.payload
        nonce = getattr(request.contribution, "nonce", None)
        if (
            message.attempt > 1
            and nonce is not None
            and nonce in self._submit_results
        ):
            # Retransmission of a submission whose verdict we already
            # issued but whose response leg was lost.  Answering from
            # cache keeps at-least-once delivery from double-counting.
            # Fresh replays (attempt == 1) skip this and hit the
            # replayed-nonce check below, as they must.
            return self._submit_results[nonce]
        if self.monitor is not None and nonce is not None:
            self.monitor.check_submit(
                request.round_id,
                message.sender,
                request.slot,
                nonce,
                retransmit=message.attempt > 1,
            )
        if getattr(type(self.service), "accepts_submit_slot", False):
            # Checked on the class so Byzantine wrappers whose __getattr__
            # forwards attributes (but whose shadowing submit keeps the
            # legacy two-argument shape) still get the legacy call.
            accepted = self.service.submit(
                request.round_id, request.contribution, slot=request.slot
            )
        else:
            accepted = self.service.submit(request.round_id, request.contribution)
        if nonce is not None:
            self._submit_results[nonce] = accepted
        if self.monitor is not None:
            if accepted:
                self.monitor.note_accepted(
                    request.round_id, message.sender, request.slot, nonce
                )
            else:
                self.monitor.note_rejected(
                    request.round_id, message.sender, "service-rejected"
                )
        return accepted

    def _handle_query_submission(self, message: Message) -> bool:
        """Reconciliation: was this nonce accepted into its round?"""
        _checked(self.monitor, message)
        request: m.SubmissionStatusQuery = message.payload
        try:
            state = self.service.round_state(request.round_id)
        except ProtocolError:
            return False
        return request.nonce in state.seen_nonces

    def _handle_finalize(self, message: Message):
        _checked(self.monitor, message)
        request: m.FinalizeRound = message.payload
        if self.service.round_state(request.round_id).blinded:
            return self.service.finalize_blinded_round(
                request.round_id, request.dropout_masks
            )
        return self.service.finalize_plain_round(request.round_id)


class BlinderEndpoint:
    """The blinding service as a transport endpoint."""

    def __init__(self, provisioner, monitor=None) -> None:
        self.provisioner = provisioner
        self.monitor = monitor

    def handlers(self) -> dict:
        return {
            m.KIND_OPEN_BLINDER: self._handle_open,
            m.KIND_MASK_REQUEST: self._handle_mask_request,
            m.KIND_REVEAL_MASK: self._handle_reveal,
        }

    def _handle_open(self, message: Message):
        _checked(self.monitor, message)
        request: m.OpenBlinderRound = message.payload
        if message.attempt > 1 and getattr(self.provisioner, "has_round", None):
            if self.provisioner.has_round(request.round_id):
                # Re-answer with the same published commitment set, when
                # the provisioner keeps one (legacy provisioners ack).
                commitments = getattr(
                    self.provisioner, "round_commitments", None
                )
                if commitments is not None:
                    try:
                        return commitments(request.round_id)
                    except CryptoError:
                        pass
                return True
        if request.subgroup_size:
            result = self.provisioner.open_round(
                request.round_id,
                request.num_parties,
                request.vector_length,
                subgroup_size=request.subgroup_size,
            )
        else:
            result = self.provisioner.open_round(
                request.round_id, request.num_parties, request.vector_length
            )
        # Commitment-aware provisioners publish their MaskCommitmentSet;
        # legacy ones return None and the engine skips verification.
        return result if result is not None else True

    def _handle_mask_request(self, message: Message):
        # Stateless per request: re-answering a retransmitted handshake
        # just re-derives a fresh delivery for the same session.
        _checked(self.monitor, message)
        request: m.MaskRequest = message.payload
        if self.monitor is not None:
            self.monitor.check_active(
                request.round_id, message.sender, "mask request"
            )
        return self.provisioner.provision_mask(
            request.session_id,
            request.dh_public,
            request.quote,
            request.round_id,
            request.party_index,
        )

    def _handle_reveal(self, message: Message):
        _checked(self.monitor, message)
        request: m.RevealMask = message.payload
        return self.provisioner.reveal_dropout_mask(
            request.round_id, request.party_index
        )


class ClientEndpoint:
    """One client device as a transport endpoint.

    Engine commands arrive here; the resulting client-originated traffic
    (attested mask requests, signed submissions) goes back out over the
    same network under this endpoint's name, so eavesdroppers see exactly
    what a real on-path attacker would.
    """

    def __init__(self, engine: "RoundEngine", client, name: str) -> None:
        self.engine = engine
        self.client = client
        self.name = name
        self._contribute_outcomes: dict[int, tuple[str, str | None]] = {}

    def handlers(self) -> dict:
        return {
            m.KIND_PROVISION_MASK: self._handle_provision,
            m.KIND_CONTRIBUTE: self._handle_contribute,
            m.KIND_CLOSE_ROUND: self._handle_close,
        }

    def outcome_for(self, round_id: int) -> tuple[str, str | None] | None:
        """The last contribute outcome this endpoint issued for a round."""
        return self._contribute_outcomes.get(round_id)

    def _fire(self, site: str, round_id: int) -> bool:
        injector = self.engine.fault_injector
        if injector is None:
            return False
        return (
            injector.fire(
                site, client_id=self.client.client_id, round_id=round_id
            )
            == ACTION_CRASH
        )

    def _handle_provision(self, message: Message) -> bool:
        _checked(self.engine.monitor, message)
        request: m.ProvisionMask = message.payload
        record = self.engine.round_record(request.round_id)
        self.engine.note_client_join(record, self.client)
        if (
            message.attempt > 1
            and self.client.party_index_for(request.round_id) == request.party_index
        ):
            return True  # mask already installed; only the ack was lost
        if self._fire(SITE_CLIENT_PROVISION, request.round_id):
            self.client.crash()
            raise EnclaveError(
                f"client {self.client.client_id!r} crashed while provisioning "
                f"round {request.round_id} (injected fault)"
            )
        session_id, dh_public, quote = self.client.handshake_request()
        record.ecalls += 1  # begin_handshake
        delivery = self.engine.call_with_retry(
            record,
            self.name,
            m.BLINDER,
            m.KIND_MASK_REQUEST,
            m.MaskRequest(
                session_id=session_id,
                dh_public=dh_public,
                quote=quote,
                round_id=request.round_id,
                party_index=request.party_index,
            ),
        )
        try:
            self._install_mask(request, delivery)
        except CryptoError:
            # A resumed delivery this (restarted) Glimmer could not open:
            # its session-key cache is gone.  Evict the provisioner's
            # entry and re-run the full handshake once; without a session
            # cache the failure is genuine.
            cache = getattr(
                self.engine.blinder_provisioner, "session_cache", None
            )
            if cache is None:
                raise
            cache.evict(quote.platform_id, "blinding-mask-provisioning")
            session_id, dh_public, quote = self.client.handshake_request()
            record.ecalls += 1  # begin_handshake (retry)
            delivery = self.engine.call_with_retry(
                record,
                self.name,
                m.BLINDER,
                m.KIND_MASK_REQUEST,
                m.MaskRequest(
                    session_id=session_id,
                    dh_public=dh_public,
                    quote=quote,
                    round_id=request.round_id,
                    party_index=request.party_index,
                ),
            )
            self._install_mask(request, delivery)
        record.ecalls += 1  # install_blinding_mask
        if hasattr(self.client, "checkpoint_round"):
            # Seal the freshly installed mask so a later crash in this
            # round is recoverable.  Not counted in record.ecalls, which
            # tracks the paper's three-ecall protocol path per client.
            self.client.checkpoint_round(request.round_id)
        return True

    def _install_mask(self, request, delivery) -> None:
        if request.commitment is not None:
            self.client.install_mask(
                request.round_id,
                request.party_index,
                delivery,
                commitment=request.commitment,
            )
        else:
            self.client.install_mask(
                request.round_id, request.party_index, delivery
            )

    def _remember(
        self, round_id: int, outcome: tuple[str, str | None]
    ) -> tuple[str, str | None]:
        self._contribute_outcomes[round_id] = outcome
        return outcome

    def _handle_contribute(self, message: Message) -> tuple[str, str | None]:
        _checked(self.engine.monitor, message)
        command: m.ContributeCommand = message.payload
        record = self.engine.round_record(command.round_id)
        self.engine.note_client_join(record, self.client)
        if message.attempt > 1 and command.round_id in self._contribute_outcomes:
            # Retransmitted command: the earlier attempt ran to completion
            # and only its response was lost.  Re-running it would re-sign
            # (or double-submit); answer from the cache instead.
            return self._contribute_outcomes[command.round_id]
        if self._fire(SITE_CLIENT_PRE_SIGN, command.round_id):
            self.client.crash()
            return self._remember(
                command.round_id,
                (OUTCOME_CRASHED, "killed before the Glimmer signed"),
            )
        record.ecalls += 1  # process_contribution (charged even on rejection)
        try:
            signed = self.client.contribute(
                command.round_id,
                list(command.values),
                list(command.features),
                blind=command.blind,
                claims=dict(command.claims),
                context_fields=command.context_fields,
            )
        except ValidationError as exc:
            return self._remember(
                command.round_id, (OUTCOME_VALIDATION_REJECTED, str(exc))
            )
        except (EnclaveError, CryptoError, ProtocolError) as exc:
            # Enclave killed mid-ecall, mask unavailable after an
            # unrecoverable checkpoint, or key state missing: the client
            # is effectively down for this round until restarted.
            return self._remember(command.round_id, (OUTCOME_CRASHED, str(exc)))
        if self._fire(SITE_CLIENT_POST_SIGN, command.round_id):
            # The nastiest timing: the mask is consumed and the signing
            # counter advanced, but nothing was submitted.  Recovery must
            # NOT resurrect the mask (rollback check) — the slot gets
            # repaired by reveal instead.
            self.client.crash()
            return self._remember(
                command.round_id,
                (OUTCOME_CRASHED, "killed after signing, before submission"),
            )
        try:
            accepted = self.engine.submit_signed(
                self.client.client_id, command.round_id, signed
            )
        except NetworkError as exc:
            return self._remember(
                command.round_id, (OUTCOME_SUBMIT_FAILED, str(exc))
            )
        if accepted:
            if hasattr(self.client, "discard_checkpoint"):
                self.client.discard_checkpoint(command.round_id)
            return self._remember(command.round_id, (OUTCOME_ACCEPTED, None))
        return self._remember(command.round_id, (OUTCOME_SERVICE_REJECTED, None))

    def _handle_close(self, message: Message) -> bool:
        """Round teardown: purge the Glimmer's per-round mask state."""
        command: m.CloseRound = message.payload
        if hasattr(self.client, "close_round"):
            self.client.close_round(command.round_id)
        return True
