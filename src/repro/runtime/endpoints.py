"""Bus-facing adapters for the round participants.

Each adapter turns one protocol party into a named transport endpoint:
handler keys are the message kinds in :mod:`repro.runtime.messages`, and
handler bodies call the party's existing methods — the parties themselves
do not know about the bus.  The client adapter is the interesting one: a
``client/provision-mask`` or ``client/contribute`` command makes the
*client* originate further messages (mask request to the blinding
service, signed submission to the cloud service), so the full §3 message
flow goes over the wire, adversaries included.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import NetworkError, ValidationError
from repro.network.message import Message
from repro.runtime import messages as m
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_SERVICE_REJECTED,
    OUTCOME_SUBMIT_FAILED,
    OUTCOME_VALIDATION_REJECTED,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.engine import RoundEngine


class ServiceEndpoint:
    """The cloud service as a transport endpoint."""

    def __init__(self, service) -> None:
        self.service = service

    def handlers(self) -> dict:
        return {
            m.KIND_OPEN_SERVICE: self._handle_open,
            m.KIND_SUBMIT: self._handle_submit,
            m.KIND_FINALIZE: self._handle_finalize,
        }

    def _handle_open(self, message: Message):
        request: m.OpenServiceRound = message.payload
        self.service.open_round(
            request.round_id, request.expected_parties, blinded=request.blinded
        )
        return True

    def _handle_submit(self, message: Message) -> bool:
        request: m.SubmitContribution = message.payload
        return self.service.submit(request.round_id, request.contribution)

    def _handle_finalize(self, message: Message):
        request: m.FinalizeRound = message.payload
        if self.service.round_state(request.round_id).blinded:
            return self.service.finalize_blinded_round(
                request.round_id, request.dropout_masks
            )
        return self.service.finalize_plain_round(request.round_id)


class BlinderEndpoint:
    """The blinding service as a transport endpoint."""

    def __init__(self, provisioner) -> None:
        self.provisioner = provisioner

    def handlers(self) -> dict:
        return {
            m.KIND_OPEN_BLINDER: self._handle_open,
            m.KIND_MASK_REQUEST: self._handle_mask_request,
            m.KIND_REVEAL_MASK: self._handle_reveal,
        }

    def _handle_open(self, message: Message):
        request: m.OpenBlinderRound = message.payload
        self.provisioner.open_round(
            request.round_id, request.num_parties, request.vector_length
        )
        return True

    def _handle_mask_request(self, message: Message):
        request: m.MaskRequest = message.payload
        return self.provisioner.provision_mask(
            request.session_id,
            request.dh_public,
            request.quote,
            request.round_id,
            request.party_index,
        )

    def _handle_reveal(self, message: Message):
        request: m.RevealMask = message.payload
        return self.provisioner.reveal_dropout_mask(
            request.round_id, request.party_index
        )


class ClientEndpoint:
    """One client device as a transport endpoint.

    Engine commands arrive here; the resulting client-originated traffic
    (attested mask requests, signed submissions) goes back out over the
    same network under this endpoint's name, so eavesdroppers see exactly
    what a real on-path attacker would.
    """

    def __init__(self, engine: "RoundEngine", client, name: str) -> None:
        self.engine = engine
        self.client = client
        self.name = name

    def handlers(self) -> dict:
        return {
            m.KIND_PROVISION_MASK: self._handle_provision,
            m.KIND_CONTRIBUTE: self._handle_contribute,
        }

    def _handle_provision(self, message: Message) -> bool:
        request: m.ProvisionMask = message.payload
        record = self.engine.round_record(request.round_id)
        self.engine.note_client_join(record, self.client)
        session_id, dh_public, quote = self.client.handshake_request()
        record.ecalls += 1  # begin_handshake
        delivery = self.engine.call_with_retry(
            record,
            self.name,
            m.BLINDER,
            m.KIND_MASK_REQUEST,
            m.MaskRequest(
                session_id=session_id,
                dh_public=dh_public,
                quote=quote,
                round_id=request.round_id,
                party_index=request.party_index,
            ),
        )
        self.client.install_mask(request.round_id, request.party_index, delivery)
        record.ecalls += 1  # install_blinding_mask
        return True

    def _handle_contribute(self, message: Message) -> tuple[str, str | None]:
        command: m.ContributeCommand = message.payload
        record = self.engine.round_record(command.round_id)
        self.engine.note_client_join(record, self.client)
        record.ecalls += 1  # process_contribution (charged even on rejection)
        try:
            signed = self.client.contribute(
                command.round_id,
                list(command.values),
                list(command.features),
                blind=command.blind,
                claims=dict(command.claims),
                context_fields=command.context_fields,
            )
        except ValidationError as exc:
            return OUTCOME_VALIDATION_REJECTED, str(exc)
        try:
            accepted = self.engine.submit_signed(
                self.client.client_id, command.round_id, signed
            )
        except NetworkError as exc:
            return OUTCOME_SUBMIT_FAILED, str(exc)
        if accepted:
            return OUTCOME_ACCEPTED, None
        return OUTCOME_SERVICE_REJECTED, None
