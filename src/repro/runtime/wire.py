"""Strict wire-message validation for the round bus.

Every inbound payload is checked against its kind's schema *before* any
handler logic runs: field presence, types, and value ranges.  A payload
that fails is a :class:`~repro.errors.ProtocolViolation` attributed to
its sender — honest endpoints built from this codebase never produce
one, so a malformed message is Byzantine evidence, not noise.

Bounds are deliberately generous (they gate absurdity, not policy):
round ids fit in 63 bits, cohorts cap at a million parties, vectors at
ten million entries, ring words at the 64-bit ring modulus, confidences
in [0, 1], floats must be finite.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.signing import SignedContribution
from repro.crypto.schnorr import SchnorrSignature
from repro.errors import ProtocolViolation
from repro.runtime import messages as m
from repro.runtime.protocol import VIOLATION_MALFORMED

MAX_ROUND_ID = (1 << 63) - 1
MAX_PARTIES = 1_000_000
MAX_VECTOR_LENGTH = 10_000_000
RING_MODULUS = 1 << 64
NONCE_BYTES = 16


def _fail(sender: str, round_id: int | None, detail: str) -> ProtocolViolation:
    return ProtocolViolation(
        detail,
        offender=sender,
        kind=VIOLATION_MALFORMED,
        round_id=round_id,
    )


def _check_round_id(sender: str, value: Any) -> int:
    if type(value) is not int or not 0 <= value <= MAX_ROUND_ID:
        raise _fail(sender, None, f"round_id out of range: {value!r}")
    return value


def _check_int(
    sender: str, round_id: int, name: str, value: Any, low: int, high: int
) -> int:
    if type(value) is not int or not low <= value <= high:
        raise _fail(
            sender, round_id, f"{name} out of range [{low}, {high}]: {value!r}"
        )
    return value


def _check_nonce(sender: str, round_id: int, value: Any) -> bytes:
    if not isinstance(value, bytes) or len(value) != NONCE_BYTES:
        raise _fail(sender, round_id, "nonce must be exactly 16 bytes")
    return value


def _check_finite_floats(
    sender: str, round_id: int, name: str, values: Any
) -> None:
    if not isinstance(values, tuple):
        raise _fail(sender, round_id, f"{name} must be a tuple")
    for v in values:
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            raise _fail(sender, round_id, f"{name} holds a non-number: {v!r}")
        if not math.isfinite(v):
            raise _fail(sender, round_id, f"{name} holds a non-finite value")


def _check_ring_words(
    sender: str, round_id: int, name: str, values: Any
) -> None:
    if not isinstance(values, tuple):
        raise _fail(sender, round_id, f"{name} must be a tuple")
    if len(values) > MAX_VECTOR_LENGTH:
        raise _fail(sender, round_id, f"{name} exceeds the vector-length cap")
    for v in values:
        if type(v) is not int or not 0 <= v < RING_MODULUS:
            raise _fail(
                sender, round_id, f"{name} holds a non-ring word: {v!r}"
            )


def validate_contribution(
    sender: str, round_id: int, contribution: Any
) -> SignedContribution:
    """Schema-check one signed contribution (not its signature)."""
    if not isinstance(contribution, SignedContribution):
        raise _fail(sender, round_id, "payload is not a SignedContribution")
    _check_round_id(sender, contribution.round_id)
    _check_nonce(sender, round_id, contribution.nonce)
    if not isinstance(contribution.blinded, bool):
        raise _fail(sender, round_id, "blinded flag must be a bool")
    if contribution.blinded:
        if contribution.ring_payload is None or contribution.plain_payload is not None:
            raise _fail(
                sender, round_id, "blinded contribution must carry ring payload only"
            )
        _check_ring_words(
            sender, round_id, "ring_payload", contribution.ring_payload
        )
    else:
        if contribution.plain_payload is None or contribution.ring_payload is not None:
            raise _fail(
                sender, round_id, "plain contribution must carry plain payload only"
            )
        _check_finite_floats(
            sender, round_id, "plain_payload", contribution.plain_payload
        )
        if len(contribution.plain_payload) > MAX_VECTOR_LENGTH:
            raise _fail(
                sender, round_id, "plain_payload exceeds the vector-length cap"
            )
    confidence = contribution.confidence
    if (
        not isinstance(confidence, (int, float))
        or isinstance(confidence, bool)
        or not math.isfinite(confidence)
        or not 0.0 <= float(confidence) <= 1.0
    ):
        raise _fail(sender, round_id, f"confidence out of [0, 1]: {confidence!r}")
    signature = contribution.signature
    if not isinstance(signature, SchnorrSignature):
        raise _fail(sender, round_id, "signature is not a SchnorrSignature")
    for part in (signature.challenge, signature.response):
        if type(part) is not int or part < 0:
            raise _fail(sender, round_id, "signature components must be ints")
    return contribution


# --------------------------------------------------------- per-kind validators


def _validate_open_blinder(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.OpenBlinderRound):
        raise _fail(sender, None, "expected OpenBlinderRound payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_int(sender, rid, "num_parties", payload.num_parties, 1, MAX_PARTIES)
    _check_int(
        sender, rid, "vector_length", payload.vector_length, 1, MAX_VECTOR_LENGTH
    )
    _check_int(
        sender, rid, "subgroup_size", payload.subgroup_size, 0, MAX_PARTIES
    )


def _validate_open_service(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.OpenServiceRound):
        raise _fail(sender, None, "expected OpenServiceRound payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_int(
        sender, rid, "expected_parties", payload.expected_parties, 1, MAX_PARTIES
    )
    if not isinstance(payload.blinded, bool):
        raise _fail(sender, rid, "blinded flag must be a bool")
    _check_int(
        sender, rid, "subgroup_size", payload.subgroup_size, 0, MAX_PARTIES
    )


def _validate_provision(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.ProvisionMask):
        raise _fail(sender, None, "expected ProvisionMask payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_int(sender, rid, "party_index", payload.party_index, 0, MAX_PARTIES - 1)


def _validate_mask_request(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.MaskRequest):
        raise _fail(sender, None, "expected MaskRequest payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_int(sender, rid, "party_index", payload.party_index, 0, MAX_PARTIES - 1)
    if not isinstance(payload.session_id, bytes) or not payload.session_id:
        raise _fail(sender, rid, "session_id must be non-empty bytes")
    if type(payload.dh_public) is not int or payload.dh_public <= 0:
        raise _fail(sender, rid, "dh_public must be a positive int")


def _validate_contribute(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.ContributeCommand):
        raise _fail(sender, None, "expected ContributeCommand payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_finite_floats(sender, rid, "values", payload.values)
    if len(payload.values) > MAX_VECTOR_LENGTH:
        raise _fail(sender, rid, "values exceed the vector-length cap")


def _validate_submit(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.SubmitContribution):
        raise _fail(sender, None, "expected SubmitContribution payload")
    rid = _check_round_id(sender, payload.round_id)
    if payload.slot is not None:
        _check_int(sender, rid, "slot", payload.slot, 0, MAX_PARTIES - 1)
    validate_contribution(sender, rid, payload.contribution)


def _validate_query(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.SubmissionStatusQuery):
        raise _fail(sender, None, "expected SubmissionStatusQuery payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_nonce(sender, rid, payload.nonce)


def _validate_reveal(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.RevealMask):
        raise _fail(sender, None, "expected RevealMask payload")
    rid = _check_round_id(sender, payload.round_id)
    _check_int(sender, rid, "party_index", payload.party_index, 0, MAX_PARTIES - 1)


def _validate_finalize(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.FinalizeRound):
        raise _fail(sender, None, "expected FinalizeRound payload")
    rid = _check_round_id(sender, payload.round_id)
    if not isinstance(payload.dropout_masks, tuple):
        raise _fail(sender, rid, "dropout_masks must be a tuple")
    for mask in payload.dropout_masks:
        _check_ring_words(sender, rid, "dropout mask", mask)


def _validate_close(sender: str, payload: Any) -> None:
    if not isinstance(payload, m.CloseRound):
        raise _fail(sender, None, "expected CloseRound payload")
    _check_round_id(sender, payload.round_id)


VALIDATORS: dict[str, Callable[[str, Any], None]] = {
    m.KIND_OPEN_BLINDER: _validate_open_blinder,
    m.KIND_OPEN_SERVICE: _validate_open_service,
    m.KIND_PROVISION_MASK: _validate_provision,
    m.KIND_MASK_REQUEST: _validate_mask_request,
    m.KIND_CONTRIBUTE: _validate_contribute,
    m.KIND_SUBMIT: _validate_submit,
    m.KIND_QUERY_SUBMISSION: _validate_query,
    m.KIND_REVEAL_MASK: _validate_reveal,
    m.KIND_FINALIZE: _validate_finalize,
    m.KIND_CLOSE_ROUND: _validate_close,
}


def validate_payload(kind: str, sender: str, payload: Any) -> None:
    """Validate one inbound payload; raises :class:`ProtocolViolation`.

    Kinds without a registered validator pass through — new message
    kinds fail open at the schema layer but still hit handler-level
    checks.
    """
    validator = VALIDATORS.get(kind)
    if validator is not None:
        validator(sender, payload)
