"""Per-round protocol state machine, violation records, and quarantine.

The RoundEngine treats Byzantine behaviour as a first-class protocol
event, not an exception to be swallowed.  Three pieces live here:

* :class:`ViolationRecord` — one observed misbehaviour, attributable to a
  named offender, serializable into :class:`~repro.runtime.telemetry.RoundReport`;
* :class:`Quarantine` — the persistent blocklist.  An offender evicted in
  round *r* is excluded from round *r+1* onward until explicitly pardoned;
* :class:`ProtocolMonitor` — the per-round state machine.  It tracks the
  phase each round is in (monotonically: ``open → provision → collect →
  finalize → closed``), remembers which (slot, nonce) pairs each sender
  has submitted, and classifies inbound traffic: out-of-phase messages,
  duplicate/equivocating submissions, flooding, and traffic from
  quarantined senders.

Classification policy (calibrated so honest-but-faulty behaviour — the
at-least-once transport's retransmits, E5's deliberate replay arm, E15's
flooding study — is *recorded*, while only provably Byzantine behaviour
is *rejected*):

* **replay** (same slot, same nonce, not a transport retransmit) —
  recorded, then handed to the service, whose nonce cache rejects it
  idempotently.  Recording without raising keeps replay-study experiments
  running while the telemetry still names the replayer.
* **equivocation** (same slot, *different* nonce while the first
  submission was accepted) — raised: two different signed values for one
  mask slot can only come from a cheating sender, and accepting either
  would let it choose the aggregate.
* **flooding** (``FLOOD_THRESHOLD`` service-rejected submissions in one
  round) — recorded once per offender per round; the engine evicts and
  quarantines at finalize.
* **quarantined sender / out-of-phase / malformed** — raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ProtocolViolation

# Violation kinds ------------------------------------------------------------
VIOLATION_MALFORMED = "malformed-message"
VIOLATION_OUT_OF_PHASE = "out-of-phase"
VIOLATION_REPLAY = "replayed-nonce"
VIOLATION_EQUIVOCATION = "equivocation"
VIOLATION_FLOODING = "flooding"
VIOLATION_QUARANTINED = "quarantined-sender"
VIOLATION_MASK_COMMITMENT = "mask-commitment-invalid"
VIOLATION_MASK_OPENING = "mask-opening-invalid"
VIOLATION_MASK_REUSE = "mask-reuse"
VIOLATION_MASK_LENGTH = "mask-length"
VIOLATION_NON_SUM_ZERO = "non-sum-zero-masks"
VIOLATION_AGGREGATE_TAMPERING = "aggregate-tampering"

#: Rejected submissions from one sender in one round before it counts as
#: flooding.  High enough that honest retry storms (each retransmit of an
#: accepted nonce is *not* a rejection) never trip it.
FLOOD_THRESHOLD = 5

#: How many closed rounds the monitor retains violation history for.
CLOSED_ROUND_RETENTION = 64

_PHASE_ORDER = ("open", "provision", "collect", "finalize", "closed")


@dataclass(frozen=True)
class ViolationRecord:
    """One observed protocol violation, ready for telemetry."""

    offender: str
    kind: str
    round_id: int
    phase: str = ""
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "offender": self.offender,
            "kind": self.kind,
            "round_id": self.round_id,
            "phase": self.phase,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ViolationRecord":
        return cls(
            offender=str(data["offender"]),
            kind=str(data["kind"]),
            round_id=int(data["round_id"]),
            phase=str(data.get("phase", "")),
            detail=str(data.get("detail", "")),
        )


class Quarantine:
    """The persistent offender blocklist shared across rounds."""

    def __init__(self) -> None:
        self._blocked: dict[str, ViolationRecord] = {}

    def block(self, record: ViolationRecord) -> None:
        """Quarantine an offender (first violation wins as the reason)."""
        self._blocked.setdefault(record.offender, record)

    def is_blocked(self, name: str) -> bool:
        return name in self._blocked

    def reason(self, name: str) -> ViolationRecord | None:
        return self._blocked.get(name)

    def pardon(self, name: str) -> bool:
        """Lift a quarantine (operator action); True if it was in effect."""
        return self._blocked.pop(name, None) is not None

    def blocked(self) -> tuple[str, ...]:
        return tuple(sorted(self._blocked))

    def to_dict(self) -> dict[str, Any]:
        return {
            name: record.as_dict() for name, record in self._blocked.items()
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Quarantine":
        quarantine = cls()
        for record in data.values():
            quarantine.block(ViolationRecord.from_dict(record))
        return quarantine


@dataclass
class _RoundMonitor:
    """Mutable per-round protocol state."""

    round_id: int
    phase: str = "open"
    # slot -> the nonce the service actually accepted for it
    slot_nonces: dict[int, bytes] = field(default_factory=dict)
    rejected_counts: dict[str, int] = field(default_factory=dict)
    flood_flagged: set[str] = field(default_factory=set)
    violations: list[ViolationRecord] = field(default_factory=list)


class ProtocolMonitor:
    """Round-phase tracking plus Byzantine traffic classification.

    Phases advance *monotonically and implicitly*: observing a message
    that belongs to a later phase advances the round to it.  This keeps
    the monitor compatible with manual experiment flows that drive
    provisioning and submission directly without narrating phases, while
    still rejecting traffic that arrives after the round moved past its
    phase (a submission into a finalized round, a mask request into a
    closed one).
    """

    def __init__(self, quarantine: Quarantine | None = None) -> None:
        self.quarantine = quarantine or Quarantine()
        self._rounds: dict[int, _RoundMonitor] = {}
        self._closed: dict[int, tuple[ViolationRecord, ...]] = {}

    # ------------------------------------------------------------ round state

    def _round(self, round_id: int) -> _RoundMonitor:
        monitor = self._rounds.get(round_id)
        if monitor is None:
            monitor = _RoundMonitor(round_id=round_id)
            self._rounds[round_id] = monitor
        return monitor

    def phase(self, round_id: int) -> str:
        if round_id in self._closed:
            return "closed"
        monitor = self._rounds.get(round_id)
        return monitor.phase if monitor is not None else "open"

    def advance(self, round_id: int, phase: str) -> None:
        """Move a round forward to ``phase`` (never backward)."""
        if phase not in _PHASE_ORDER:
            raise ValueError(f"unknown phase {phase!r}")
        monitor = self._round(round_id)
        if _PHASE_ORDER.index(phase) > _PHASE_ORDER.index(monitor.phase):
            monitor.phase = phase

    def close(self, round_id: int) -> tuple[ViolationRecord, ...]:
        """Finalize bookkeeping for a round; returns its violations.

        Idempotent: closing a round that is already closed returns (and
        preserves) the violations recorded at the first close rather
        than overwriting them with an empty tuple.
        """
        monitor = self._rounds.pop(round_id, None)
        if monitor is None and round_id in self._closed:
            return self._closed[round_id]
        violations = tuple(monitor.violations) if monitor is not None else ()
        self._closed[round_id] = violations
        while len(self._closed) > CLOSED_ROUND_RETENTION:
            del self._closed[next(iter(self._closed))]
        return violations

    # ------------------------------------------------------------- violations

    def record(
        self,
        round_id: int,
        offender: str,
        kind: str,
        detail: str = "",
    ) -> ViolationRecord:
        """Log a violation without rejecting the message."""
        monitor = self._round(round_id)
        record = ViolationRecord(
            offender=offender,
            kind=kind,
            round_id=round_id,
            phase=monitor.phase,
            detail=detail,
        )
        monitor.violations.append(record)
        return record

    def reject(
        self,
        round_id: int,
        offender: str,
        kind: str,
        detail: str = "",
    ) -> ProtocolViolation:
        """Log a violation and build the exception that rejects the message."""
        self.record(round_id, offender, kind, detail)
        return ProtocolViolation(
            detail, offender=offender, kind=kind, round_id=round_id
        )

    def violations_for(self, round_id: int) -> tuple[ViolationRecord, ...]:
        closed = self._closed.get(round_id)
        if closed is not None:
            return closed
        monitor = self._rounds.get(round_id)
        return tuple(monitor.violations) if monitor is not None else ()

    def offenders_for(self, round_id: int, kinds: Iterable[str]) -> tuple[str, ...]:
        """Distinct offenders with a violation of one of ``kinds`` this round."""
        wanted = set(kinds)
        seen: dict[str, None] = {}
        for violation in self.violations_for(round_id):
            if violation.kind in wanted:
                seen.setdefault(violation.offender, None)
        return tuple(seen)

    # ----------------------------------------------------------- inbound gates

    def check_sender(self, round_id: int, sender: str) -> None:
        """Reject traffic from a quarantined sender outright."""
        if self.quarantine.is_blocked(sender):
            raise self.reject(
                round_id,
                sender,
                VIOLATION_QUARANTINED,
                f"{sender} is quarantined and may not participate",
            )

    def check_active(self, round_id: int, sender: str, desc: str) -> None:
        """Reject traffic that arrives after the round left its live phases."""
        self.check_sender(round_id, sender)
        monitor = self._rounds.get(round_id)
        phase = monitor.phase if monitor is not None else self.phase(round_id)
        if phase in ("finalize", "closed") or round_id in self._closed:
            raise self.reject(
                round_id,
                sender,
                VIOLATION_OUT_OF_PHASE,
                f"{desc} into {phase} round {round_id}",
            )

    def check_submit(
        self,
        round_id: int,
        sender: str,
        slot: int | None,
        nonce: bytes,
        retransmit: bool = False,
    ) -> None:
        """Gate one inbound submission; raises :class:`ProtocolViolation`.

        ``retransmit`` marks a delivery the transport itself re-sent
        (``Message.attempt > 1``); those are never replay/equivocation
        evidence.  The equivocation check compares against nonces the
        service *accepted* (registered via :meth:`note_accepted`), never
        against rejected attempts — a sender whose first submission was
        refused may legitimately retry with a fresh nonce.
        """
        self.check_active(round_id, sender, "submission")
        self.advance(round_id, "collect")
        if retransmit or slot is None:
            return
        monitor = self._round(round_id)
        accepted = monitor.slot_nonces.get(slot)
        if accepted is None:
            return
        if accepted == nonce:
            # Same slot, same nonce, fresh send: an application-level
            # replay.  Recorded; the service's nonce cache rejects it.
            self.record(
                round_id,
                sender,
                VIOLATION_REPLAY,
                f"replayed nonce for slot {slot}",
            )
        else:
            raise self.reject(
                round_id,
                sender,
                VIOLATION_EQUIVOCATION,
                f"second contribution for already-filled slot {slot} "
                f"(equivocation attempt)",
            )

    def note_accepted(
        self, round_id: int, sender: str, slot: int | None, nonce: bytes
    ) -> None:
        """Register a service-accepted submission for equivocation tracking."""
        if slot is None:
            return
        monitor = self._round(round_id)
        monitor.slot_nonces.setdefault(slot, nonce)

    def accepted_slots(self, round_id: int) -> dict[int, bytes]:
        """Slot → service-accepted nonce, as witnessed at the service gate.

        Includes acceptances the *engine* never saw a reply for — a
        duplicate delivery whose response went nowhere still passed
        through :meth:`note_accepted` — which is what lets the engine
        reconcile its slot accounting with the service at finalize.
        """
        monitor = self._rounds.get(round_id)
        return dict(monitor.slot_nonces) if monitor is not None else {}

    def forget_slot(self, round_id: int, slot: int | None) -> None:
        """Drop a slot's accepted-nonce record (quarantine eviction)."""
        if slot is None:
            return
        monitor = self._rounds.get(round_id)
        if monitor is not None:
            monitor.slot_nonces.pop(slot, None)

    def note_rejected(self, round_id: int, sender: str, reason: str) -> None:
        """Count a service-side rejection toward the flooding threshold."""
        monitor = self._round(round_id)
        count = monitor.rejected_counts.get(sender, 0) + 1
        monitor.rejected_counts[sender] = count
        if count >= FLOOD_THRESHOLD and sender not in monitor.flood_flagged:
            monitor.flood_flagged.add(sender)
            self.record(
                round_id,
                sender,
                VIOLATION_FLOODING,
                f"{count} rejected submissions in round {round_id} "
                f"(last reason: {reason})",
            )
