"""Typed messages exchanged by the RoundEngine over the transport.

Each round phase has its own message kind so drop models and adversaries
can target individual flows (``DropAdversary(drop_kinds={KIND_SUBMIT})``
models a service-side brownout without touching provisioning, for
example).  Payloads are frozen dataclasses: the wire carries data, never
live object references, which is what lets :func:`payload_size` price them
and adversaries capture or tamper with them meaningfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# Well-known endpoint names on the round bus --------------------------------
ENGINE = "engine"
SERVICE = "service"
BLINDER = "blinder"


def client_endpoint(client_id: str) -> str:
    """The transport endpoint name for a client device."""
    return f"client:{client_id}"


# Engine → provisioners / service ------------------------------------------
KIND_OPEN_BLINDER = "round/open-blinder"
KIND_OPEN_SERVICE = "round/open-service"
KIND_FINALIZE = "round/finalize"
KIND_REVEAL_MASK = "mask/reveal-dropout"

# Engine → clients ----------------------------------------------------------
KIND_PROVISION_MASK = "client/provision-mask"
KIND_CONTRIBUTE = "client/contribute"
KIND_CLOSE_ROUND = "client/close-round"

# Clients → provisioners / service ------------------------------------------
KIND_MASK_REQUEST = "mask/request"
KIND_SUBMIT = "contribution/submit"
KIND_QUERY_SUBMISSION = "contribution/status"


@dataclass(frozen=True)
class OpenBlinderRound:
    """Ask the blinding service to sample sum-zero masks for a round.

    ``subgroup_size > 0`` requests the hierarchical construction: an
    independent sum-zero family per DRBG-keyed subgroup of at most that
    many slots (the plan is a pure function of the round id, so every
    party recomputes it).  ``0`` keeps the flat §3 family.
    """

    round_id: int
    num_parties: int
    vector_length: int
    subgroup_size: int = 0


@dataclass(frozen=True)
class OpenServiceRound:
    """Ask the cloud service to start accepting contributions.

    ``subgroup_size > 0`` opens a streaming round: submissions fold into
    per-subgroup accumulators on arrival and raw vectors are released.
    """

    round_id: int
    expected_parties: int
    blinded: bool = True
    subgroup_size: int = 0


@dataclass(frozen=True)
class ProvisionMask:
    """Command a client to fetch its round mask from the blinding service.

    ``commitment`` is the slot's engine-vouched
    :class:`~repro.crypto.commitments.MaskCommitmentRecord`: the engine
    validated the published commitment set when the round opened, so
    shipping the per-slot record here stops the blinding service from
    equivocating — delivering the engine one mask family and the clients
    another.
    """

    round_id: int
    party_index: int
    commitment: Any = None


@dataclass(frozen=True)
class MaskRequest:
    """A client's attested handshake, forwarded to the blinding service."""

    session_id: bytes
    dh_public: int
    quote: Any
    round_id: int
    party_index: int


@dataclass(frozen=True)
class ContributeCommand:
    """Command a client to train-endorse-submit for a round."""

    round_id: int
    values: tuple
    features: tuple
    blind: bool = True
    claims: tuple = ()  # (key, value) pairs, immutable like the rest
    context_fields: tuple = ()


@dataclass(frozen=True)
class SubmitContribution:
    """A signed contribution on its way to the cloud service.

    ``round_id`` names the round the *sender* targets; the service checks
    it against the signed ``contribution.round_id``, which is how
    cross-round replay is caught.  ``slot`` names the mask slot the sender
    claims to consume — the protocol monitor uses it to catch
    equivocation (two different signed values for one slot).
    """

    round_id: int
    contribution: Any
    slot: int | None = None


@dataclass(frozen=True)
class SubmissionStatusQuery:
    """Did a submission with this nonce land?  (Reconciliation, not replay.)

    Sent when every attempt of a submit call failed on the *response* leg:
    the contribution may or may not have been accepted, and the sender
    must find out before the round can finalize exactly.  Nonces are
    unforgeable 128-bit values minted inside the Glimmer, so answering
    this query leaks nothing an attacker could not already observe.
    """

    round_id: int
    nonce: bytes


@dataclass(frozen=True)
class RevealMask:
    """§3 dropout repair: ask the blinding service for a missing mask."""

    round_id: int
    party_index: int


@dataclass(frozen=True)
class FinalizeRound:
    """Close a round at the service, handing over any repair masks."""

    round_id: int
    dropout_masks: tuple = field(default=())


@dataclass(frozen=True)
class CloseRound:
    """Tell a client the round is over: purge Glimmer mask state."""

    round_id: int

