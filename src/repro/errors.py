"""Exception hierarchy for the Glimmers reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can distinguish library failures from programming errors.  Security
failures (bad signatures, failed attestation, rejected contributions) get
their own branches because experiments count them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad parameters)."""


class AuthenticationError(CryptoError):
    """Ciphertext, signature, or MAC verification failed."""


class ProtocolError(ReproError):
    """A multi-party protocol received a message violating its state machine."""


class EnclaveError(ReproError):
    """The SGX simulator rejected an operation (bad enclave state, EPC, ...)."""


class AttestationError(EnclaveError):
    """A quote failed verification, or attestation preconditions do not hold."""


class SealingError(EnclaveError):
    """Sealed data could not be unsealed (wrong measurement/signer/key)."""


class ValidationError(ReproError):
    """A Glimmer validation predicate rejected a contribution."""


class AuditError(ReproError):
    """The runtime auditor rejected an outbound message (format/bit budget)."""


class NetworkError(ReproError):
    """The simulated transport could not deliver a message."""


class RoundAbortedError(ProtocolError):
    """A round lost too many participants to finalize safely."""


class ConfigurationError(ReproError):
    """An object was constructed or used with inconsistent parameters."""
