"""Exception hierarchy for the Glimmers reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can distinguish library failures from programming errors.  Security
failures (bad signatures, failed attestation, rejected contributions) get
their own branches because experiments count them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad parameters)."""


class AuthenticationError(CryptoError):
    """Ciphertext, signature, or MAC verification failed."""


class MaskVerificationError(CryptoError):
    """A blinding mask does not match the provisioner's round commitments.

    Raised by the Glimmer at install time and by the engine at reveal
    time; the engine converts it into a blamed abort of the round — a
    lying blinding service is detected, never silently aggregated over.
    """


class ProtocolError(ReproError):
    """A multi-party protocol received a message violating its state machine."""


class ProtocolViolation(ProtocolError):
    """A message that no honest party would send: malformed fields,
    out-of-phase traffic, equivocation, or a quarantined sender.

    Carries enough structure for the quarantine layer to blame someone:
    ``offender`` is the endpoint (or party name) that misbehaved, ``kind``
    is one of the ``VIOLATION_*`` constants in
    :mod:`repro.runtime.protocol`, and ``round_id`` the round it hit.
    """

    def __init__(
        self,
        detail: str,
        *,
        offender: str = "unknown",
        kind: str = "protocol-violation",
        round_id: int | None = None,
    ) -> None:
        super().__init__(detail)
        self.detail = detail
        self.offender = offender
        self.kind = kind
        self.round_id = round_id


class EnclaveError(ReproError):
    """The SGX simulator rejected an operation (bad enclave state, EPC, ...)."""


class AttestationError(EnclaveError):
    """A quote failed verification, or attestation preconditions do not hold."""


class SealingError(EnclaveError):
    """Sealed data could not be unsealed (wrong measurement/signer/key)."""


class ValidationError(ReproError):
    """A Glimmer validation predicate rejected a contribution."""


class AuditError(ReproError):
    """The runtime auditor rejected an outbound message (format/bit budget)."""


class NetworkError(ReproError):
    """The simulated transport could not deliver a message."""


class RoundAbortedError(ProtocolError):
    """A round lost too many participants to finalize safely."""


class ConfigurationError(ReproError):
    """An object was constructed or used with inconsistent parameters."""


class AdmissionError(ReproError):
    """The service's submission queue refused an enqueue (backpressure).

    Raised when the durable queue is at capacity and the overflow policy
    is ``reject``, or when even the deferred buffer is full under
    ``defer``.  Carries no client data — admission control is load
    shedding, not a protocol verdict."""


class StorageError(ReproError):
    """Base class for storage-backend failures in the service layer."""


class StorageFaultError(StorageError):
    """One storage operation failed (transient: an I/O error, a torn write).

    This is the *retryable* storage failure: the resilience layer backs
    off and re-issues the operation.  The chaos harness injects it at the
    ``storage.*`` fault sites; a real deployment would map ``OSError`` /
    ``sqlite3.OperationalError`` onto it at the backend boundary."""


class StorageUnavailableError(StorageError):
    """Storage is down for real: retries exhausted or the circuit is open.

    Raised fail-fast by an open :class:`~repro.service.resilience
    .CircuitBreaker` so callers stop hammering a dead backend, and by the
    retry layer once its attempt budget is spent.  The service reacts by
    quarantining the affected tenant (bulkhead), never by blocking."""


class ServiceKilledError(ReproError):
    """The chaos schedule hard-killed the service process at this point.

    Only ever raised when a fault injector is attached to the service's
    kill points; the harness catches it, drops the in-memory service, and
    restarts from persisted state — the crash itself is the test."""
