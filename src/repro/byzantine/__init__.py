"""Byzantine actors, attack plans, and the round harness that drives them.

The crash/omission fault model of :mod:`repro.faults` covers an
environment that *fails*; this package covers parties that *lie* — a
blinding service delivering or committing to masks it shouldn't, clients
replaying, equivocating, flooding, or forging, and an aggregation
service tampering with its own finalize result.  Everything is
DRBG-seeded and deterministic, and an :class:`AttackPlan` composes with
a :class:`~repro.faults.FaultPlan` on the same deployment.

Typical use::

    plan = AttackPlan.sample(rng, clients=user_ids)
    install_attacks(deployment, plan, rng)
    result = run_byzantine_round(deployment, round_id, user_ids, plan)
    assert result.outcome != OUTCOME_UNDETECTED_CORRUPTION
"""

from repro.byzantine.actors import LyingBlinder, TamperingAggregator
from repro.byzantine.harness import (
    OUTCOME_BENIGN_ABORT,
    OUTCOME_CLEAN,
    OUTCOME_DETECTED_ABORT,
    OUTCOME_EXACT,
    OUTCOME_UNDETECTED_CORRUPTION,
    ByzantineRoundResult,
    expected_aggregate,
    forged_contribution,
    install_attacks,
    run_byzantine_round,
)
from repro.byzantine.plan import (
    ALL_ATTACKS,
    ATTACK_BLINDER_FORGED_CLAIMS,
    ATTACK_BLINDER_TAMPER_DELIVERY,
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_EQUIVOCATE,
    ATTACK_FLOOD,
    ATTACK_FORGE,
    ATTACK_REPLAY,
    ATTACK_SERVICE_CORRUPT,
    ATTACK_SERVICE_DUPLICATE,
    ATTACK_SERVICE_MISCOUNT,
    ATTACK_SERVICE_OMIT,
    BLINDER_ATTACKS,
    CLIENT_ATTACKS,
    SERVICE_ATTACKS,
    AttackPlan,
    AttackSpec,
)

__all__ = [
    "ALL_ATTACKS",
    "ATTACK_BLINDER_FORGED_CLAIMS",
    "ATTACK_BLINDER_TAMPER_DELIVERY",
    "ATTACK_BLINDER_TAMPER_REVEAL",
    "ATTACK_EQUIVOCATE",
    "ATTACK_FLOOD",
    "ATTACK_FORGE",
    "ATTACK_REPLAY",
    "ATTACK_SERVICE_CORRUPT",
    "ATTACK_SERVICE_DUPLICATE",
    "ATTACK_SERVICE_MISCOUNT",
    "ATTACK_SERVICE_OMIT",
    "BLINDER_ATTACKS",
    "CLIENT_ATTACKS",
    "SERVICE_ATTACKS",
    "AttackPlan",
    "AttackSpec",
    "ByzantineRoundResult",
    "LyingBlinder",
    "TamperingAggregator",
    "OUTCOME_BENIGN_ABORT",
    "OUTCOME_CLEAN",
    "OUTCOME_DETECTED_ABORT",
    "OUTCOME_EXACT",
    "OUTCOME_UNDETECTED_CORRUPTION",
    "expected_aggregate",
    "forged_contribution",
    "install_attacks",
    "run_byzantine_round",
]
