"""Deterministic Byzantine actors: a lying blinder, a tampering aggregator.

Each actor wraps the honest implementation and lies in exactly one
configured way, so every experiment row names precisely which defence
caught it:

* :class:`LyingBlinder` wraps a
  :class:`~repro.core.provisioning.BlinderProvisioner`.  Its
  ``tamper-delivery`` mode is caught by the client Glimmer's per-slot
  opening check at install; ``tamper-reveal`` by the engine's
  commitment check on repair masks; ``forged-claims`` — the strongest
  lie, a non-sum-zero family behind internally consistent commitments —
  by the engine's homomorphic sum-zero check at finalize.
* :class:`TamperingAggregator` wraps a
  :class:`~repro.core.service.CloudService` and mutates its finalize
  result; every mode is caught by the engine's result audit
  (nonce/count/signature cross-checks plus bit-exact recomputation).

Both actors draw their perturbations from an :class:`HmacDrbg`, so an
attack schedule replays identically under the same seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.byzantine.plan import (
    ATTACK_BLINDER_FORGED_CLAIMS,
    ATTACK_BLINDER_TAMPER_DELIVERY,
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_SERVICE_CORRUPT,
    ATTACK_SERVICE_DUPLICATE,
    ATTACK_SERVICE_MISCOUNT,
    ATTACK_SERVICE_OMIT,
    BLINDER_ATTACKS,
    SERVICE_ATTACKS,
)
from repro.crypto.commitments import (
    MaskCommitmentSet,
    MaskOpening,
    encode_mask_payload,
    hash_commitment,
    pedersen_generators,
    scalar_for_mask,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.masking import SumZeroMasks
from repro.errors import ConfigurationError


class LyingBlinder:
    """A Byzantine blinding service: honest machinery, one configured lie."""

    def __init__(
        self,
        inner,
        mode: str,
        *,
        target_slot: int = 0,
        rng: HmacDrbg | None = None,
    ) -> None:
        if mode not in BLINDER_ATTACKS:
            raise ConfigurationError(f"unknown blinder attack mode {mode!r}")
        self.inner = inner
        self.mode = mode
        self.target_slot = target_slot
        self.rng = rng or HmacDrbg(b"lying-blinder")
        self.lies_told = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _tampered(self, opening: MaskOpening) -> MaskOpening:
        """The same opening with one mask word shifted by a nonzero delta."""
        delta = 1 + self.rng.randint((1 << 16) - 1)
        mask = list(opening.mask)
        mask[0] = (int(mask[0]) + delta) % (1 << 64)
        self.lies_told += 1
        return MaskOpening(
            mask=tuple(mask), salt=opening.salt, randomizer=opening.randomizer
        )

    # ---------------------------------------------------------- lying surface

    def provision_mask(
        self, session_id, glimmer_dh_public, quote, round_id, party_index
    ):
        if (
            self.mode != ATTACK_BLINDER_TAMPER_DELIVERY
            or party_index != self.target_slot
        ):
            return self.inner.provision_mask(
                session_id, glimmer_dh_public, quote, round_id, party_index
            )
        # Same attested handshake and wire format as the honest path; only
        # the mask inside the authenticated ciphertext differs from the
        # committed one.
        self.inner._require_blinding().mask_for(round_id, party_index)
        tampered = self._tampered(self.inner.mask_opening(round_id, party_index))
        return self.inner._deliver(
            session_id,
            glimmer_dh_public,
            quote,
            encode_mask_payload(tampered),
            "blinding-mask-provisioning",
        )

    def reveal_dropout_mask(self, round_id, party_index):
        opening = self.inner.reveal_dropout_mask(round_id, party_index)
        if self.mode == ATTACK_BLINDER_TAMPER_REVEAL:
            return self._tampered(opening)
        return opening

    def open_round(self, round_id, num_parties, length):
        honest = self.inner.open_round(round_id, num_parties, length)
        if self.mode != ATTACK_BLINDER_FORGED_CLAIMS:
            return honest
        return self._forge_round(round_id, honest)

    def _forge_round(
        self, round_id: int, honest: MaskCommitmentSet
    ) -> MaskCommitmentSet:
        """Corrupt one mask word, then claim the *honest* column sums.

        The forged set is internally consistent everywhere a per-slot
        check looks: hash commitments and Pedersen points are computed
        over the corrupted masks, so structural validation at round open
        and every client's opening check at install both pass.  Only the
        claimed limb-column sums are a lie — they still belong to the
        original sum-zero family — which is exactly what the engine's
        homomorphic sum-zero check over the points exposes at finalize.
        """
        blinding = self.inner._require_blinding()
        family = blinding._round_masks[round_id]
        masks = [list(mask) for mask in family.masks]
        slot = min(self.target_slot, len(masks) - 1)
        delta = 1 + self.rng.randint((1 << 16) - 1)
        masks[slot][0] = (int(masks[slot][0]) + delta) % (1 << family.modulus_bits)
        corrupted = tuple(tuple(int(v) for v in mask) for mask in masks)
        openings = self.inner._openings[round_id]
        salts = [opening.salt for opening in openings]
        randomizers = [opening.randomizer for opening in openings]
        forged = _forge_commitments(
            self.inner.identity.group, honest, corrupted, salts, randomizers
        )
        new_openings = tuple(
            MaskOpening(mask=corrupted[i], salt=salts[i], randomizer=randomizers[i])
            for i in range(len(corrupted))
        )
        new_family = SumZeroMasks(masks=corrupted, modulus_bits=family.modulus_bits)
        blinding._round_masks[round_id] = new_family
        self.inner._openings[round_id] = new_openings
        self.inner._commitments[round_id] = forged
        self.inner._sealed_rounds[round_id] = self.inner._seal_round(
            round_id, new_family, new_openings
        )
        self.lies_told += 1
        return forged


def _forge_commitments(
    group, honest: MaskCommitmentSet, masks, salts, randomizers
) -> MaskCommitmentSet:
    """A commitment set over ``masks`` that claims ``honest``'s column sums."""
    hash_commitments = tuple(
        hash_commitment(honest.round_id, slot, masks[slot], salts[slot])
        for slot in range(len(masks))
    )
    partial = dataclasses.replace(
        honest, hash_commitments=hash_commitments, points=(), randomizer_sum=0
    )
    h, u = pedersen_generators(group)
    weights = partial.weights()
    points = tuple(
        (
            group.power(h, scalar_for_mask(partial, masks[slot], weights))
            * group.power(u, randomizers[slot])
        )
        % group.prime
        for slot in range(len(masks))
    )
    return dataclasses.replace(
        partial,
        points=points,
        randomizer_sum=sum(randomizers) % group.subgroup_order,
    )


class TamperingAggregator:
    """A Byzantine cloud service: aggregates honestly, then lies about it."""

    def __init__(self, inner, mode: str, *, rng: HmacDrbg | None = None) -> None:
        if mode not in SERVICE_ATTACKS:
            raise ConfigurationError(f"unknown service attack mode {mode!r}")
        self.inner = inner
        self.mode = mode
        self.rng = rng or HmacDrbg(b"tampering-aggregator")
        self.lies_told = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def finalize_blinded_round(self, round_id, dropout_masks=()):
        return self._tamper(
            self.inner.finalize_blinded_round(round_id, dropout_masks)
        )

    def finalize_plain_round(self, round_id):
        return self._tamper(self.inner.finalize_plain_round(round_id))

    def _tamper(self, result):
        self.lies_told += 1
        if self.mode == ATTACK_SERVICE_CORRUPT:
            aggregate = np.array(result.aggregate, dtype=float, copy=True)
            bump = 1.0 + float(self.rng.randint(538))
            aggregate[self.rng.randint(len(aggregate))] += bump
            return dataclasses.replace(result, aggregate=aggregate)
        if self.mode == ATTACK_SERVICE_OMIT:
            if not result.accepted:
                return result
            return dataclasses.replace(
                result,
                accepted=result.accepted[:-1],
                num_contributions=result.num_contributions - 1,
            )
        if self.mode == ATTACK_SERVICE_DUPLICATE:
            if not result.accepted:
                return result
            return dataclasses.replace(
                result,
                accepted=result.accepted + (result.accepted[0],),
                num_contributions=result.num_contributions + 1,
            )
        if self.mode == ATTACK_SERVICE_MISCOUNT:
            # The aggregate divides by the true count but the receipt
            # claims one more contributor than was aggregated.
            return dataclasses.replace(
                result, num_contributions=result.num_contributions + 1
            )
        raise ConfigurationError(f"unknown service attack mode {self.mode!r}")
