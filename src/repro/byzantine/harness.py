"""Drive Byzantine rounds: install actors, run the attacks, classify.

:func:`install_attacks` rewires a :class:`~repro.experiments.common.Deployment`
for one :class:`~repro.byzantine.plan.AttackPlan` — wrapping the blinding
provisioner and/or cloud service in their lying counterparts and swapping
attack-targeted clients for :class:`~repro.core.client.MaliciousClient`\\ s.
It is idempotent: installing a new plan first unwraps the previous one, so
one long-lived deployment can run many sampled schedules (and the
quarantine carries over between them, exactly like a real fleet).

:func:`run_byzantine_round` then drives one full round over the message
bus, interleaving each attacker's moves with the honest traffic, and
classifies what came out:

* ``clean-finalize`` / ``exact-finalize`` — the aggregate equals, bit for
  bit, the fixed-point mean over exactly the honest contributions that
  stayed accepted;
* ``detected-abort`` — the round aborted with at least one
  :class:`~repro.runtime.protocol.ViolationRecord` naming an offender;
* ``benign-abort`` — aborted with no violation (e.g. nothing was
  accepted, or a composed fault plan starved the round);
* ``undetected-corruption`` — a finalized aggregate that does **not**
  match the honest recomputation.  The design goal is that this outcome
  never occurs; E19 and the Byzantine chaos suite assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.byzantine.actors import LyingBlinder, TamperingAggregator
from repro.byzantine.plan import (
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_EQUIVOCATE,
    ATTACK_FLOOD,
    ATTACK_FORGE,
    ATTACK_REPLAY,
    AttackPlan,
    AttackSpec,
)
from repro.core.signing import SignedContribution, contribution_digest
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import (
    MaskVerificationError,
    NetworkError,
    RoundAbortedError,
)
from repro.runtime.endpoints import BlinderEndpoint, ServiceEndpoint
from repro.runtime.messages import BLINDER, SERVICE, client_endpoint
from repro.runtime.protocol import FLOOD_THRESHOLD, VIOLATION_MASK_OPENING
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DROPOUT,
    OUTCOME_EVICTED,
    OUTCOME_QUARANTINED,
    OUTCOME_SUBMIT_FAILED,
    RoundReport,
)

# Round outcome classifications ----------------------------------------------
OUTCOME_CLEAN = "clean-finalize"
OUTCOME_EXACT = "exact-finalize"
OUTCOME_DETECTED_ABORT = "detected-abort"
OUTCOME_BENIGN_ABORT = "benign-abort"
OUTCOME_UNDETECTED_CORRUPTION = "undetected-corruption"


@dataclass(frozen=True)
class ByzantineRoundResult:
    """One driven round, classified."""

    round_id: int
    plan: AttackPlan
    report: RoundReport
    outcome: str
    aborted: bool
    corrupted: bool
    offenders: tuple[str, ...]

    @property
    def detected(self) -> bool:
        return bool(self.offenders)


def install_attacks(deployment, plan: AttackPlan, rng: HmacDrbg | None = None):
    """Wire a plan's Byzantine actors into a deployment (idempotent)."""
    rng = rng or HmacDrbg(b"byzantine-install")
    engine = deployment.engine

    blinder = deployment.blinder_provisioner
    while isinstance(blinder, LyingBlinder):
        blinder = blinder.inner
    spec = plan.blinder_attack()
    if spec is not None:
        blinder = LyingBlinder(blinder, spec.kind, rng=rng.fork("lying-blinder"))
    deployment.blinder_provisioner = blinder
    engine.blinder_provisioner = blinder
    for kind, handler in (
        BlinderEndpoint(blinder, monitor=engine.monitor).handlers().items()
    ):
        deployment.network.add_handler(BLINDER, kind, handler)

    service = deployment.service
    while isinstance(service, TamperingAggregator):
        service = service.inner
    spec = plan.service_attack()
    if spec is not None:
        service = TamperingAggregator(
            service, spec.kind, rng=rng.fork("tampering-aggregator")
        )
    deployment.service = service
    engine.service = service
    for kind, handler in (
        ServiceEndpoint(service, monitor=engine.monitor).handlers().items()
    ):
        deployment.network.add_handler(SERVICE, kind, handler)

    return deployment


def forged_contribution(client, round_id: int, values) -> SignedContribution:
    """A contribution in the honest wire shape, signed with a made-up key.

    The same forgery as :meth:`MaliciousClient.bypass_glimmer`, but usable
    with any client device — an attacker does not need a special build of
    the client software to put bytes on the wire.
    """
    forged_key = SchnorrKeyPair.generate(client.rng.fork("forged-key"))
    nonce = client.rng.generate(16)
    ring = tuple(int(round(float(v) * (1 << 16))) % (1 << 64) for v in values)
    digest = contribution_digest(round_id, nonce, True, ring, None, 1.0)
    return SignedContribution(
        round_id=round_id,
        nonce=nonce,
        blinded=True,
        ring_payload=ring,
        plain_payload=None,
        confidence=1.0,
        signature=forged_key.sign(digest),
    )


def expected_aggregate(codec, vectors, included: Sequence[str]):
    """Ground truth: the fixed-point mean over exactly ``included``."""
    if not included:
        return None
    encoded = [codec.encode(list(vectors[user_id])) for user_id in included]
    return codec.decode(codec.sum_vectors(encoded)) / len(encoded)


def run_byzantine_round(
    deployment,
    round_id: int,
    participants: Sequence[str],
    plan: AttackPlan,
    *,
    dropouts: Sequence[str] = (),
) -> ByzantineRoundResult:
    """One full round with the plan's attackers interleaved; classified."""
    engine = deployment.engine
    participants = list(participants)
    features = tuple(deployment.features.bigrams)
    vectors = deployment.local_vectors(participants)
    silent = set(dropouts)
    blinder_spec = plan.blinder_attack(round_id)
    if (
        blinder_spec is not None
        and blinder_spec.kind == ATTACK_BLINDER_TAMPER_REVEAL
        and not silent
        and len(participants) > 1
    ):
        # A tampered reveal only fires on an unconsumed slot; give it one.
        silent = {participants[-1]}
    accepted_users: list[str] = []
    try:
        try:
            engine.open_round(round_id, len(participants), len(features))
        except NetworkError as exc:
            raise engine.abort_round(round_id, f"round could not be opened: {exc}")
        record = engine.round_record(round_id)
        for user_id in participants:
            record.note_participant(user_id)
        quarantined = {
            user_id
            for user_id in participants
            if engine.quarantine.is_blocked(client_endpoint(user_id))
        }
        for user_id in quarantined:
            record.outcomes[user_id] = OUTCOME_QUARANTINED
        engine.begin_phase(round_id, "provision")
        for index, user_id in enumerate(participants):
            if user_id in quarantined:
                continue
            if user_id in silent:
                record.outcomes[user_id] = OUTCOME_DROPOUT
                continue
            try:
                engine.provision_mask(user_id, round_id, index)
            except MaskVerificationError as exc:
                engine.monitor.record(
                    round_id, BLINDER, VIOLATION_MASK_OPENING, str(exc)
                )
                raise engine.abort_round(
                    round_id,
                    f"blinding service delivered a mask that fails its "
                    f"commitment: {exc}",
                )
        engine.begin_phase(round_id, "collect")
        for user_id in participants:
            if user_id in quarantined or user_id in silent:
                continue
            spec = plan.client_attack(round_id, user_id)
            accepted = _drive_collect(
                deployment, spec, user_id, round_id, vectors[user_id], features
            )
            if accepted:
                accepted_users.append(user_id)
                record.outcomes[user_id] = OUTCOME_ACCEPTED
            else:
                record.outcomes.setdefault(user_id, OUTCOME_SUBMIT_FAILED)
        if not accepted_users:
            raise engine.abort_round(
                round_id,
                f"no contribution was accepted ({len(participants)} participants)",
            )
        report = engine.finalize_round(round_id)
    except RoundAbortedError as exc:
        engine.abandon_round(round_id)
        report = exc.report
        offenders = tuple(sorted({v.offender for v in report.violations}))
        return ByzantineRoundResult(
            round_id=round_id,
            plan=plan,
            report=report,
            outcome=OUTCOME_DETECTED_ABORT if offenders else OUTCOME_BENIGN_ABORT,
            aborted=True,
            corrupted=False,
            offenders=offenders,
        )
    evicted = {
        user_id
        for user_id, outcome in report.outcomes.items()
        if outcome == OUTCOME_EVICTED
    }
    included = [u for u in accepted_users if u not in evicted]
    truth = expected_aggregate(deployment.codec, vectors, included)
    corrupted = truth is None or not np.array_equal(
        np.asarray(report.aggregate), truth
    )
    offenders = tuple(sorted({v.offender for v in report.violations}))
    if corrupted:
        outcome = OUTCOME_UNDETECTED_CORRUPTION
    elif plan.is_benign:
        outcome = OUTCOME_CLEAN
    else:
        outcome = OUTCOME_EXACT
    return ByzantineRoundResult(
        round_id=round_id,
        plan=plan,
        report=report,
        outcome=outcome,
        aborted=False,
        corrupted=corrupted,
        offenders=offenders,
    )


def _drive_collect(
    deployment, spec: AttackSpec | None, user_id, round_id, values, features
) -> bool:
    """One participant's collect-phase moves; True iff an honest-valued
    contribution of theirs was accepted by the service."""
    engine = deployment.engine
    client = deployment.clients[user_id]
    try:
        if spec is None:
            return engine.contribute(
                user_id, round_id, values, features
            ) == OUTCOME_ACCEPTED
        if spec.kind == ATTACK_FORGE:
            forged = forged_contribution(client, round_id, values)
            engine.submit_signed(user_id, round_id, forged)
            return False
        if spec.kind == ATTACK_FLOOD:
            for index in range(FLOOD_THRESHOLD + 1):
                forged = forged_contribution(
                    client, round_id, [float(v) + index for v in values]
                )
                engine.submit_signed(user_id, round_id, forged)
            return False
        if spec.kind == ATTACK_REPLAY:
            signed = client.contribute(round_id, values, features)
            accepted = engine.submit_signed(user_id, round_id, signed)
            engine.submit_signed(user_id, round_id, signed)
            return accepted
        if spec.kind == ATTACK_EQUIVOCATE:
            signed = client.contribute(round_id, values, features)
            accepted = engine.submit_signed(user_id, round_id, signed)
            rival = forged_contribution(client, round_id, values)
            engine.submit_signed(user_id, round_id, rival)
            return accepted
    except NetworkError:
        # A composed fault plan can starve any of the moves above; the
        # participant degrades into the ordinary repair path.
        return False
    raise ValueError(f"unknown client attack kind {spec.kind!r}")
