"""Attack kinds, attack specs, and samplable Byzantine attack plans.

Where :mod:`repro.faults` models an *environment* that fails (drops,
crashes, seal loss), this module models *parties* that lie.  An attack
**kind** names a Byzantine behaviour of one protocol role; an
:class:`AttackSpec` pins a kind to a target (a client id, for client
attacks) and optionally to one round; an :class:`AttackPlan` bundles the
specs for one run and can be **sampled** deterministically from a DRBG —
the same seed always yields the same attacker mix, so every chaos
schedule replays bit-for-bit.  Plans are plain data and compose freely
with a :class:`~repro.faults.FaultPlan`: the same round can lose messages
*and* host an equivocating client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.drbg import HmacDrbg

# Client attack kinds --------------------------------------------------------
ATTACK_REPLAY = "client.replay"
"""Submit a genuinely signed contribution twice (same nonce, fresh send)."""

ATTACK_EQUIVOCATE = "client.equivocate"
"""Submit a second, different contribution for an already-filled slot."""

ATTACK_FLOOD = "client.flood"
"""Spray forged submissions until the flooding threshold trips."""

ATTACK_FORGE = "client.forge"
"""Submit one self-signed contribution without any Glimmer (Figure 1d)."""

# Blinding-service attack kinds ---------------------------------------------
ATTACK_BLINDER_TAMPER_DELIVERY = "blinder.tamper-delivery"
"""Deliver a mask to one client that differs from the committed one."""

ATTACK_BLINDER_TAMPER_REVEAL = "blinder.tamper-reveal"
"""Reveal a dropout-repair mask that differs from the committed one."""

ATTACK_BLINDER_FORGED_CLAIMS = "blinder.forged-claims"
"""Publish a non-sum-zero mask family behind forged sum-zero claims."""

# Aggregation-service attack kinds ------------------------------------------
ATTACK_SERVICE_CORRUPT = "service.corrupt-aggregate"
"""Return a finalize result whose aggregate was perturbed."""

ATTACK_SERVICE_OMIT = "service.omit-contribution"
"""Drop one accepted contribution from the result's audit trail."""

ATTACK_SERVICE_DUPLICATE = "service.duplicate-contribution"
"""Count one accepted contribution twice in the result's audit trail."""

ATTACK_SERVICE_MISCOUNT = "service.miscount"
"""Report a contribution count that does not match the aggregated set."""

CLIENT_ATTACKS: tuple[str, ...] = (
    ATTACK_REPLAY,
    ATTACK_EQUIVOCATE,
    ATTACK_FLOOD,
    ATTACK_FORGE,
)

BLINDER_ATTACKS: tuple[str, ...] = (
    ATTACK_BLINDER_TAMPER_DELIVERY,
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_BLINDER_FORGED_CLAIMS,
)

SERVICE_ATTACKS: tuple[str, ...] = (
    ATTACK_SERVICE_CORRUPT,
    ATTACK_SERVICE_OMIT,
    ATTACK_SERVICE_DUPLICATE,
    ATTACK_SERVICE_MISCOUNT,
)

ALL_ATTACKS: tuple[str, ...] = CLIENT_ATTACKS + BLINDER_ATTACKS + SERVICE_ATTACKS


@dataclass(frozen=True)
class AttackSpec:
    """One Byzantine behaviour: ``kind``, optionally pinned to a target/round.

    ``target`` is a client id for client attacks and ignored for blinder
    and service attacks (those roles are singletons).  ``round_id`` of
    ``None`` means the attack applies in every round of the run.
    """

    kind: str
    target: str | None = None
    round_id: int | None = None

    def applies(self, round_id: int) -> bool:
        return self.round_id is None or self.round_id == round_id


@dataclass(frozen=True)
class AttackPlan:
    """The attacker mix for one run: who lies, and how.

    At most one blinder attack and one service attack are honoured per
    plan (the roles are singletons); any number of distinct clients can
    misbehave.  Pair a plan with a deployment via
    :func:`repro.byzantine.harness.install_attacks`.
    """

    specs: tuple[AttackSpec, ...] = ()
    label: str = ""

    @property
    def is_benign(self) -> bool:
        return not self.specs

    def client_attack(self, round_id: int, client_id: str) -> AttackSpec | None:
        """The first client attack targeting ``client_id`` in this round."""
        for spec in self.specs:
            if (
                spec.kind in CLIENT_ATTACKS
                and spec.target == client_id
                and spec.applies(round_id)
            ):
                return spec
        return None

    def blinder_attack(self, round_id: int | None = None) -> AttackSpec | None:
        for spec in self.specs:
            if spec.kind in BLINDER_ATTACKS and (
                round_id is None or spec.applies(round_id)
            ):
                return spec
        return None

    def service_attack(self, round_id: int | None = None) -> AttackSpec | None:
        for spec in self.specs:
            if spec.kind in SERVICE_ATTACKS and (
                round_id is None or spec.applies(round_id)
            ):
                return spec
        return None

    @classmethod
    def sample(
        cls,
        rng: HmacDrbg,
        clients: Sequence[str],
        rounds: Sequence[int] = (),
        max_client_attackers: int = 2,
        blinder_rate: float = 0.3,
        service_rate: float = 0.3,
        label: str = "",
    ) -> "AttackPlan":
        """Draw a random-but-reproducible attacker mix.

        Between zero and ``max_client_attackers`` distinct clients get a
        random client attack each; independently, the blinding service
        turns Byzantine with probability ``blinder_rate`` and the
        aggregator with ``service_rate``.  Pinning specs to ``rounds``
        (when given) keeps multi-round runs from re-firing one-shot
        attacker mixes every round.
        """
        specs: list[AttackSpec] = []
        pool = list(clients)
        count = min(len(pool), rng.randint(max_client_attackers + 1))
        for _ in range(count):
            target = rng.choice(pool)
            pool.remove(target)
            specs.append(
                AttackSpec(
                    kind=rng.choice(list(CLIENT_ATTACKS)),
                    target=target,
                    round_id=rng.choice(list(rounds)) if rounds else None,
                )
            )
        if rng.uniform() < blinder_rate:
            specs.append(
                AttackSpec(
                    kind=rng.choice(list(BLINDER_ATTACKS)),
                    round_id=rng.choice(list(rounds)) if rounds else None,
                )
            )
        if rng.uniform() < service_rate:
            specs.append(
                AttackSpec(
                    kind=rng.choice(list(SERVICE_ATTACKS)),
                    round_id=rng.choice(list(rounds)) if rounds else None,
                )
            )
        return cls(specs=tuple(specs), label=label)
