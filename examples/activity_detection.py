#!/usr/bin/env python3
"""In-home activity detection: the paper's most privacy-fraught example.

§2: "activity-recognition models improve from analyzing silhouettes and
image structure from in-home cameras, but checking that silhouettes are
legitimate requires analysis of full video streams captured at people's
homes."  Nobody should upload in-home video; nobody should trust
unvalidated activity claims (think insurance or utility incentives for
"active households").  The Glimmer resolves it: the silhouette predicate
replays the motion-energy histogram from the private frames on-device and
signs only matching reports, which are then blinded before leaving.

Run:  python examples/activity_detection.py
"""

from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import (
    BlinderProvisioner,
    ServiceProvisioner,
    VettingRegistry,
)
from repro.core.service import CloudService
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import ValidationError
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import VendorKey
from repro.workloads.camera import MOTION_BINS, CameraWorkload

FEATURES = tuple((f"motion-bin-{i}", "mass") for i in range(MOTION_BINS))
NUM_HOMES = 8


def main() -> None:
    rng = HmacDrbg(b"activity-example")
    workload = CameraWorkload.generate(
        NUM_HOMES, rng.fork("camera"), frames_per_stream=100, forged_fraction=0.25
    )
    forged = sum(c.is_forged for c in workload.contributions)
    print(f"{NUM_HOMES} homes, {forged} fabricated activity reports planted\n")

    ias = AttestationService(b"activity-ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    service_identity = SchnorrKeyPair.generate(rng.fork("svc"), TEST_GROUP)
    signing = SchnorrKeyPair.generate(rng.fork("sign"), TEST_GROUP)
    blinder_identity = SchnorrKeyPair.generate(rng.fork("blind"), TEST_GROUP)
    codec = FixedPointCodec()
    config = GlimmerConfig(
        predicate_spec="chain:range,0.0,1.0+silhouette,0.02",
        service_identity=service_identity.public_key,
        blinder_identity=blinder_identity.public_key,
        features_digest=features_digest(FEATURES),
    )
    image = build_glimmer_image(vendor, config, name="activity-glimmer")
    registry = VettingRegistry()
    registry.publish("activity-glimmer", image.mrenclave)
    service_prov = ServiceProvisioner(
        service_identity, signing, ias, registry, "activity-glimmer", rng.fork("sp")
    )
    blinder_prov = BlinderProvisioner(
        blinder_identity, BlindingService(rng.fork("bs"), codec),
        ias, registry, "activity-glimmer", rng.fork("bp"),
    )
    service = CloudService(signing.public_key, codec)
    blinder_prov.open_round(1, NUM_HOMES, MOTION_BINS)
    service.open_round(1, NUM_HOMES)

    accepted_slots = []
    for index, contribution in enumerate(workload.contributions):
        stream = workload.streams[contribution.user_id]
        client = ClientDevice(
            contribution.user_id, image, ias,
            seed=contribution.user_id.encode(),
            data=LocalDataStore(video_stream=stream),
        )
        client.provision_signing_key(service_prov)
        client.provision_mask(blinder_prov, 1, index)
        tag = "FORGED" if contribution.is_forged else "honest"
        try:
            signed = client.contribute(1, list(contribution.values), FEATURES)
            service.submit(1, signed)
            accepted_slots.append(index)
            print(f"  [{tag}] {contribution.user_id} ({stream.activity}): endorsed, blinded, submitted")
        except ValidationError as exc:
            print(f"  [{tag}] {contribution.user_id}: rejected — {str(exc)[:60]}…")

    repairs = [
        blinder_prov.reveal_dropout_mask(1, index)
        for index in range(NUM_HOMES)
        if index not in accepted_slots
    ]
    result = service.finalize_blinded_round(1, repairs)
    print(f"\nservice aggregated {result.num_contributions} blinded histograms "
          f"(max bin mass {float(max(result.aggregate)):.3f})")
    frames = sum(len(s.frames) for s in workload.streams.values())
    print(f"video frames that never left any home: {frames}")


if __name__ == "__main__":
    main()
