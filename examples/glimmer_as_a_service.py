#!/usr/bin/env python3
"""§4.2 Glimmer-as-a-service: contributions from devices with no TEE.

A fleet of IoT thermostats (no SGX) contributes temperature-model updates
through a Glimmer hosted on the household set-top box.  Each device first
*verifies the host's attestation quote* — quote verification needs no
trusted hardware — then ships its contribution and private context
end-to-end encrypted into the enclave.  The host relays ciphertext it
cannot read.

A second act shows the failure mode the design exists for: a host running
its own software instead of the vetted Glimmer fails attestation, and the
client never sends it anything private.

Run:  python examples/glimmer_as_a_service.py
"""

from repro.core.remote import IoTClient, RemoteGlimmerHost
from repro.core.validation import PrivateContext
from repro.errors import AttestationError
from repro.experiments.common import Deployment, GLIMMER_NAME
from repro.experiments.e10_gaas import NotAGlimmerProgram
from repro.network.clock import LOCAL_LATENCY
from repro.network.transport import Network
from repro.sgx.attestation import report_data_for
from repro.sgx.measurement import EnclaveImage
from repro.sgx.platform import SgxPlatform

NUM_DEVICES = 4


def main() -> None:
    deployment = Deployment.build(
        num_users=2, seed=b"gaas-example", provision_clients=False
    )
    features = deployment.features
    network = Network(seed=b"home-lan", latency=LOCAL_LATENCY)

    print("== the set-top box hosts a vetted Glimmer ==")
    host = RemoteGlimmerHost(
        "set-top-box", deployment.image, deployment.attestation, network,
        b"set-top-box-seed",
    )
    host.provision_signing_key(deployment.service_provisioner)
    deployment.blinder_provisioner.open_round(1, NUM_DEVICES, len(features))
    deployment.service.open_round(1, NUM_DEVICES)
    print(f"  glimmer measurement: {deployment.image.mrenclave.hex()[:16]}…\n")

    vector = [0.25] * len(features)
    for index in range(NUM_DEVICES):
        host.provision_mask(deployment.blinder_provisioner, 1, index)
        device = IoTClient(
            f"thermostat-{index}", network, deployment.attestation,
            deployment.registry, GLIMMER_NAME,
            f"thermostat-{index}".encode(), group=deployment.group,
        )
        start = network.clock.now_ms()
        signed = device.contribute_via(
            "set-top-box", 1, vector, features.bigrams, PrivateContext(),
            party_index=index,
        )
        elapsed = network.clock.now_ms() - start
        accepted = deployment.service.submit(1, signed)
        print(f"  thermostat-{index}: attested host, contributed in "
              f"{elapsed:.2f} ms (simulated) — "
              f"{'accepted' if accepted else 'rejected'}")

    result = deployment.service.finalize_blinded_round(1)
    print(f"\nservice aggregated {result.num_contributions} blinded "
          f"contributions exactly\n")

    print("== act two: a dishonest host swaps in its own software ==")
    evil_network = Network(seed=b"evil-lan", latency=LOCAL_LATENCY)
    fake_image = EnclaveImage.build(
        NotAGlimmerProgram, deployment.vendor, name=GLIMMER_NAME
    )
    platform = SgxPlatform(b"evil-host", attestation_service=deployment.attestation)
    fake_enclave = platform.load_enclave(fake_image)

    def fake_attest(message):
        from repro.core.remote import AttestedOffer

        public = fake_enclave.ecall("begin_handshake", b"x")
        quote = platform.quote_enclave(
            fake_enclave, report_data_for(int(public).to_bytes(256, "big"))
        )
        return AttestedOffer(session_id=b"x", dh_public=public, quote=quote)

    evil_network.register("set-top-box", {"attest-glimmer": fake_attest})
    device = IoTClient(
        "thermostat-victim", evil_network, deployment.attestation,
        deployment.registry, GLIMMER_NAME, b"victim", group=deployment.group,
    )
    try:
        device.contribute_via(
            "set-top-box", 1, vector, features.bigrams, PrivateContext()
        )
        print("  !!! the device trusted the impostor — this should never print")
    except AttestationError as exc:
        print(f"  the device refused: {exc}")
        print("  no private data was ever transmitted to the impostor host")


if __name__ == "__main__":
    main()
