#!/usr/bin/env python3
"""§4.1 Validation Confidentiality: bot detection with one audited bit.

The inversion of the usual story: here the *service's* detector is the
secret (shipped encrypted into the enclave over an attested channel), and
the *user's* browsing signals are the private data that never leaves the
device.  A runtime auditor — run by the user or the EFF — checks that every
outbound message is exactly the public one-bit format, clamping whatever a
malicious encrypted predicate might try to exfiltrate.

Run:  python examples/bot_detection.py
"""

from repro.core.auditor import RuntimeAuditor
from repro.core.confidential import (
    BotDetectionService,
    ExfiltratingGlimmerProgram,
    build_confidential_image,
    raw_signal_leakage_bits,
)
from repro.core.provisioning import VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import AuditError
from repro.sgx.attestation import AttestationService, report_data_for
from repro.sgx.measurement import VendorKey
from repro.sgx.platform import SgxPlatform
from repro.workloads.botnet import BotnetWorkload, DetectorWeights


def provision(image, name, identity, detector, ias, registry, rng, seed):
    service = BotDetectionService(identity, detector, ias, registry, name, rng)
    platform = SgxPlatform(seed, attestation_service=ias)
    store = {}
    enclave = platform.load_enclave(
        image, ocall_handlers={"collect_session_signals": lambda sid: store[sid]}
    )
    session = seed + b":prov"
    public = enclave.ecall("begin_handshake", session)
    quote = platform.quote_enclave(enclave, report_data_for(public.to_bytes(256, "big")))
    enclave.ecall("install_detector", service.provision_detector(session, public, quote))
    return enclave, service, store


def main() -> None:
    rng = HmacDrbg(b"bot-detection-example")
    ias = AttestationService(b"bot-ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    identity = SchnorrKeyPair.generate(rng.fork("identity"), TEST_GROUP)
    detector = DetectorWeights()
    registry = VettingRegistry()

    image = build_confidential_image(vendor, identity.public_key)
    registry.publish("bot-glimmer", image.mrenclave)
    workload = BotnetWorkload.generate(20, rng.fork("sessions"), bot_fraction=0.4)

    enclave, service, store = provision(
        image, "bot-glimmer", identity, detector, ias, registry,
        rng.fork("svc"), b"bot-platform",
    )
    auditor = RuntimeAuditor()

    print("== honest encrypted detector, audited to 1 bit/session ==")
    correct = 0
    raw_bits = 0
    for signals in workload.sessions:
        store[signals.session_id] = signals
        raw_bits += raw_signal_leakage_bits(signals)
        challenge = service.new_challenge(signals.session_id)
        message = enclave.ecall("evaluate_session", signals.session_id, challenge)
        auditor.audit(message, challenge)
        is_human = service.verify_verdict(message)
        correct += is_human != signals.is_bot
    print(f"  detection accuracy: {correct / len(workload.sessions):.2f}")
    print(f"  bits released per session: 1 "
          f"(raw-signal upload would have shipped "
          f"~{raw_bits // len(workload.sessions)} private bits each)\n")

    print("== a malicious encrypted predicate tries to exfiltrate ==")
    exfil_image = build_confidential_image(
        vendor, identity.public_key,
        program_class=ExfiltratingGlimmerProgram, name="exfil-glimmer",
    )
    registry.publish("exfil-glimmer", exfil_image.mrenclave)
    enclave, service, store = provision(
        exfil_image, "exfil-glimmer", identity, detector, ias, registry,
        rng.fork("exfil"), b"exfil-platform",
    )
    auditor = RuntimeAuditor(max_bits_per_session=8)
    victim = workload.sessions[0]
    store[victim.session_id] = victim
    leaked = 0
    for attempt in range(20):
        challenge = service.new_challenge(victim.session_id)
        message = enclave.ecall("evaluate_session", victim.session_id, challenge)
        try:
            auditor.audit(message, challenge)
            leaked += 1
        except AuditError:
            pass
    print(f"  the predicate modulated verdict bits for 20 sessions, but the")
    print(f"  auditor's 8-bit budget capped the leak at "
          f"{auditor.capacity_bound_bits(victim.session_id)} bits "
          f"(attacker got {leaked})")
    print("  — the covert channel exists, but its capacity is bounded, "
          "exactly as §4.1 claims")


if __name__ == "__main__":
    main()
