#!/usr/bin/env python3
"""Photos-for-maps: public contributions validated against private data.

The paper's second example (§1, §3): users contribute photos to a mapping
service.  The photos themselves are meant to be public — no blinding — but
*validating* them ("did this user actually go there?") needs the user's GPS
track and camera fingerprint, which must never leave the device.

The Glimmer runs the geo-corroboration predicate locally and signs only
photos whose claimed location sits on the user's track and whose camera
fingerprint matches the device.  Spoofers (teleporting claims, stolen
photos) are rejected without the service learning anyone's movements.

Run:  python examples/photo_maps.py
"""

from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import ServiceProvisioner, VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import ValidationError
from repro.experiments.e11_photo_maps import PHOTO_FEATURES, photo_digest_values
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import VendorKey
from repro.workloads.geo import GeoWorkload

NUM_USERS = 6


def main() -> None:
    rng = HmacDrbg(b"photo-maps-example")
    workload = GeoWorkload.generate(NUM_USERS, rng.fork("geo"), photos_per_user=4)
    print(f"generated {len(workload.submissions)} photo submissions from "
          f"{NUM_USERS} users "
          f"({sum(p.is_spoofed for p in workload.submissions)} spoofed)\n")

    # Stand up the trust infrastructure with a geo predicate (25 m radius).
    ias = AttestationService(b"maps-ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    service_identity = SchnorrKeyPair.generate(rng.fork("svc"), TEST_GROUP)
    signing = SchnorrKeyPair.generate(rng.fork("sign"), TEST_GROUP)
    blinder_identity = SchnorrKeyPair.generate(rng.fork("blind"), TEST_GROUP)
    config = GlimmerConfig(
        predicate_spec="geo:25.0",
        service_identity=service_identity.public_key,
        blinder_identity=blinder_identity.public_key,
        features_digest=features_digest(PHOTO_FEATURES),
    )
    image = build_glimmer_image(vendor, config, name="maps-glimmer")
    registry = VettingRegistry()
    registry.publish("maps-glimmer", image.mrenclave)
    provisioner = ServiceProvisioner(
        service_identity, signing, ias, registry, "maps-glimmer", rng.fork("sp")
    )

    # One device per user, holding its private GPS track + fingerprint.
    clients = {}
    for user_id, context in workload.contexts.items():
        client = ClientDevice(
            user_id, image, ias, seed=user_id.encode(),
            data=LocalDataStore(geo_context=context),
        )
        client.provision_signing_key(provisioner)
        clients[user_id] = client

    accepted = rejected = wrong = 0
    for photo in workload.submissions:
        try:
            signed = clients[photo.user_id].contribute(
                round_id=1,
                values=photo_digest_values(photo),
                features=PHOTO_FEATURES,
                blind=False,  # photos are public; no blinding needed
                claims={"submission": photo},
            )
            ok = signing.public_key.is_valid(signed.signed_bytes(), signed.signature)
            verdict = "endorsed" if ok else "bad signature?!"
            accepted += 1
            if photo.is_spoofed:
                wrong += 1
        except ValidationError as exc:
            verdict = f"rejected ({str(exc)[:48]}…)"
            rejected += 1
            if not photo.is_spoofed:
                wrong += 1
        tag = "SPOOF " if photo.is_spoofed else "honest"
        print(f"  [{tag}] {photo.photo_id}: {verdict}")

    print(f"\nendorsed {accepted}, rejected {rejected}, "
          f"misclassified {wrong} of {len(workload.submissions)}")
    total_fixes = sum(len(c.track) for c in workload.contexts.values())
    print(f"GPS fixes that never left any device: {total_fixes}")


if __name__ == "__main__":
    main()
