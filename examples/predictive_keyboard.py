#!/usr/bin/env python3
"""The full Figure 1 story: four designs for a predictive keyboard service.

Replays the paper's motivating narrative end to end, measuring each panel:

* (a) raw sharing — great model, zero privacy;
* (b) federated learning — model inversion recovers each user's politics;
* (c) secure aggregation — private, but the 538 poisoner wrecks the model;
* (d→Glimmer) client-side validation inside SGX — private *and* trustworthy.

Run:  python examples/predictive_keyboard.py
"""

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService, apply_mask
from repro.errors import ValidationError
from repro.experiments.common import Deployment
from repro.federated.aggregation import FederatedAggregator
from repro.federated.inversion import InversionAttacker
from repro.federated.metrics import top1_accuracy
from repro.federated.model import BigramModel
from repro.federated.poisoning import Poisoner
from repro.workloads.text import stance_evidence

NUM_USERS = 12


def main() -> None:
    deployment = Deployment.build(num_users=NUM_USERS, seed=b"keyboard-example")
    corpus, features = deployment.corpus, deployment.features
    labels = corpus.labels()
    vectors = deployment.local_vectors()
    holdout = corpus.holdout(deployment.rng.fork("holdout"))
    attacker = InversionAttacker(features, stance_evidence())
    aggregator = FederatedAggregator(features)

    print("== Figure 1a: raw sharing ==")
    central = BigramModel.train(features, corpus.all_sentences())
    print(f"  utility (top-1): {top1_accuracy(central, holdout):.3f}")
    print("  privacy: the service reads everyone's sentences — including "
          f"{corpus.users[0].user_id}'s politics — directly\n")

    print("== Figure 1b: federated learning ==")
    federated = aggregator.aggregate(list(vectors.values()))
    print(f"  utility (top-1): {top1_accuracy(federated, holdout):.3f}")
    inversion = attacker.accuracy(vectors, labels)
    print(f"  but per-user models invert: attacker recovers stances with "
          f"accuracy {inversion:.2f}\n")

    print("== Figure 1c: secure aggregation (no validation) ==")
    codec = FixedPointCodec()
    rng = HmacDrbg(b"fig1c")
    blinding = BlindingService(rng, codec)
    blinding.open_round(1, NUM_USERS, len(features))
    blinded = {}
    for index, (user_id, vector) in enumerate(vectors.items()):
        blinded[user_id] = apply_mask(
            codec.encode(list(vector)), blinding.mask_for(1, index)
        )
    leaked = attacker.accuracy(
        {u: np.array(codec.decode(b)) for u, b in blinded.items()}, labels
    )
    print(f"  inversion on blinded vectors: {leaked:.2f} (chance ≈ 0.5)")
    # ... but Alice poisons one parameter with 538 before blinding:
    poisoner = Poisoner(features, [features.bigrams[0]])
    evil_vector = poisoner.magnitude_attack(
        list(vectors.values())[0], 538.0
    ).vector
    blinded_evil = apply_mask(codec.encode(list(evil_vector)), blinding.mask_for(1, 0))
    total = codec.sum_vectors([blinded_evil] + list(blinded.values())[1:])
    skewed = np.array(codec.decode(total)) / NUM_USERS
    honest_mean = np.mean(np.stack(list(vectors.values())), axis=0)
    print(f"  ...and the hidden 538 skews the aggregate by "
          f"{np.max(np.abs(skewed - honest_mean)):.1f} — undetectably\n")

    print("== The Glimmer: validation before blinding, inside SGX ==")
    user_ids = [user.user_id for user in corpus.users]
    deployment.open_round(10, user_ids)
    rejected = 0
    for index, user_id in enumerate(user_ids):
        values = vectors[user_id]
        if index == 0:  # Alice tries the same 538
            values = poisoner.magnitude_attack(values, 538.0).vector
        try:
            signed = deployment.clients[user_id].contribute(
                10, list(values), features.bigrams
            )
        except ValidationError:
            rejected += 1
            continue
        deployment.service.submit(10, signed)
    repair = [deployment.blinder_provisioner.reveal_dropout_mask(10, 0)]
    result = deployment.service.finalize_blinded_round(10, repair)
    survivors_mean = np.mean(
        np.stack([vectors[u] for u in user_ids[1:]]), axis=0
    )
    print(f"  poisoned contributions rejected in-enclave: {rejected}")
    print(f"  defended aggregate max error: "
          f"{np.max(np.abs(result.aggregate - survivors_mean)):.2e}")
    defended = BigramModel.from_vector(features, result.aggregate)
    print(f"  utility (top-1): {top1_accuracy(defended, holdout):.3f}")
    print(f"  next word after 'donald': {defended.top_prediction('donald')!r}")
    print("\nPrivacy AND trust: the quagmire resolved (for this round, anyway).")


if __name__ == "__main__":
    main()
