#!/usr/bin/env python3
"""Quickstart: one client, one Glimmer, one validated blinded contribution.

Walks the minimal end-to-end path of the paper's architecture (Figure 3):

1. the service publishes a feature space and a vetted Glimmer image;
2. a client device loads the Glimmer and obtains the signing key over an
   attested handshake;
3. the blinding service provisions a sum-zero mask for the round;
4. the client's Glimmer validates, blinds, and signs a contribution;
5. the cloud service verifies the endorsement and — together with the rest
   of the cohort — recovers the exact aggregate without ever seeing the
   client's values;
6. a poisoned contribution (the famous 538) is rejected inside the enclave.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.errors import ValidationError
from repro.experiments.common import Deployment

NUM_USERS = 5


def main() -> None:
    print("== Glimmers quickstart ==\n")

    # Deployment.build stands up the whole cast: attestation service,
    # vendor, vetted Glimmer image, provisioners, cloud service, and a
    # synthetic keyboard corpus with one client device per user.
    deployment = Deployment.build(num_users=NUM_USERS, seed=b"quickstart")
    features = deployment.features
    print(f"service tracks {len(features)} bigram features")
    print(f"vetted Glimmer measurement: {deployment.image.mrenclave.hex()[:16]}…")

    # Open a blinded aggregation round: the blinding service samples N
    # masks summing to zero and provisions each client's Glimmer.
    user_ids = [user.user_id for user in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    print(f"round 1 open with {len(user_ids)} participants\n")

    # Every client trains locally and contributes through its Glimmer.
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), features.bigrams
        )
        accepted = deployment.service.submit(1, signed)
        print(f"  {user_id}: blinded contribution "
              f"{'accepted' if accepted else 'REJECTED'}")

    # The service sums blinded vectors; masks cancel; the aggregate is exact.
    result = deployment.service.finalize_blinded_round(1)
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    error = float(np.max(np.abs(result.aggregate - truth)))
    print(f"\naggregate recovered with max error {error:.2e}")

    from repro.federated.model import BigramModel

    model = BigramModel.from_vector(features, result.aggregate)
    print(f"the global model now suggests {model.top_prediction('donald')!r} "
          f"after 'donald'")

    # And the attack of Figure 1d: a contribution of 538 never gets signed.
    deployment.blinder_provisioner.open_round(2, 1, len(features))
    deployment.service.open_round(2, 1)
    client = deployment.clients[user_ids[0]]
    client.provision_mask(deployment.blinder_provisioner, 2, 0)
    poisoned = [538.0] + [0.0] * (len(features) - 1)
    try:
        client.contribute(2, poisoned, features.bigrams)
        print("\n!!! the 538 attack went through — this should never print")
    except ValidationError as exc:
        print(f"\nthe 538 attack was stopped inside the enclave:\n  {exc}")


if __name__ == "__main__":
    main()
