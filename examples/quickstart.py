#!/usr/bin/env python3
"""Quickstart: one client, one Glimmer, one validated blinded contribution.

Walks the minimal end-to-end path of the paper's architecture (Figure 3),
with every protocol step travelling as a message over the simulated
transport via the RoundEngine:

1. the service publishes a feature space and a vetted Glimmer image;
2. a client device loads the Glimmer and obtains the signing key over an
   attested handshake;
3. the round engine opens the round and commands each client to fetch its
   sum-zero mask from the blinding service — over the wire;
4. the client's Glimmer validates, blinds, and signs a contribution, which
   the client submits to the cloud service — over the wire;
5. the cloud service verifies the endorsement and — together with the rest
   of the cohort — recovers the exact aggregate without ever seeing the
   client's values; the engine hands back a RoundReport of everything the
   wire and the enclaves did;
6. a poisoned contribution (the famous 538) is rejected inside the enclave.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.experiments.common import Deployment
from repro.runtime.telemetry import OUTCOME_ACCEPTED, OUTCOME_VALIDATION_REJECTED

NUM_USERS = 5


def main() -> None:
    print("== Glimmers quickstart ==\n")

    # Deployment.build stands up the whole cast: attestation service,
    # vendor, vetted Glimmer image, provisioners, cloud service, a message
    # bus with a RoundEngine, and a synthetic keyboard corpus with one
    # client device per user.
    deployment = Deployment.build(num_users=NUM_USERS, seed=b"quickstart")
    engine = deployment.engine
    features = deployment.features
    print(f"service tracks {len(features)} bigram features")
    print(f"vetted Glimmer measurement: {deployment.image.mrenclave.hex()[:16]}…")

    # Open a blinded aggregation round: the blinding service samples N
    # masks summing to zero, and the engine commands each client to fetch
    # its mask over an attested handshake — all of it as bus messages.
    user_ids = [user.user_id for user in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    print(f"round 1 open with {len(user_ids)} participants\n")

    # Every client trains locally and contributes through its Glimmer; the
    # signed blinded payload goes to the service over the wire.
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        outcome = engine.contribute(
            user_id, 1, list(vectors[user_id]), features.bigrams
        )
        print(f"  {user_id}: blinded contribution "
              f"{'accepted' if outcome == OUTCOME_ACCEPTED else outcome.upper()}")

    # The service sums blinded vectors; masks cancel; the aggregate is exact.
    report = engine.finalize_round(1)
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    error = float(np.max(np.abs(report.aggregate - truth)))
    print(f"\naggregate recovered with max error {error:.2e}")

    # The engine metered the whole round: transport and enclave telemetry.
    print(f"round telemetry: {report.messages_sent} messages "
          f"({report.messages_dropped} dropped), {report.bytes_on_wire} bytes, "
          f"{report.latency_ms:.1f} ms simulated latency")
    print(f"                 {report.ecalls} ecalls, "
          f"{report.enclave_transition_cycles:,} enclave transition cycles")

    from repro.federated.model import BigramModel

    model = BigramModel.from_vector(features, report.aggregate)
    print(f"the global model now suggests {model.top_prediction('donald')!r} "
          f"after 'donald'")

    # And the attack of Figure 1d: a contribution of 538 never gets signed.
    engine.open_round(2, 1, len(features))
    engine.provision_mask(user_ids[0], 2, 0)
    poisoned = [538.0] + [0.0] * (len(features) - 1)
    outcome = engine.contribute(user_ids[0], 2, poisoned, features.bigrams)
    if outcome == OUTCOME_VALIDATION_REJECTED:
        print("\nthe 538 attack was stopped inside the enclave "
              "(validation-rejected; the Glimmer never signed it)")
    else:
        print("\n!!! the 538 attack went through — this should never print")


if __name__ == "__main__":
    main()
