#!/usr/bin/env python3
"""The recommender example: reviews corroborated by private purchase history.

§2 of the paper: "recommender services learn similarities among products
from individual users' registered likes, dislikes, and shopping habits, but
detecting spurious reviews requires access to individual users' purchasing
history."  The history is exactly the data users least want to upload.

Here the contribution is a review (public by intent); the Glimmer's
purchase-corroboration predicate checks, on-device, that the reviewed
product was actually bought *before* the review was written.  Shill reviews
of never-purchased products are rejected without the service — or anyone —
seeing a single purchase record.

Run:  python examples/recommender.py
"""

from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import ServiceProvisioner, VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import ValidationError
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import VendorKey
from repro.workloads.reviews import ReviewWorkload

# The signed values: the star rating (normalized) — tiny but real payload.
REVIEW_FEATURES = (("review", "rating"),)


def main() -> None:
    rng = HmacDrbg(b"recommender-example")
    workload = ReviewWorkload.generate(
        8, rng.fork("reviews"), reviews_per_user=3, spurious_fraction=0.3
    )
    spurious = sum(r.is_spurious for r in workload.reviews)
    print(f"{len(workload.reviews)} reviews from {len(workload.contexts)} "
          f"shoppers ({spurious} shill reviews planted)\n")

    ias = AttestationService(b"shop-ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    service_identity = SchnorrKeyPair.generate(rng.fork("svc"), TEST_GROUP)
    signing = SchnorrKeyPair.generate(rng.fork("sign"), TEST_GROUP)
    blinder_identity = SchnorrKeyPair.generate(rng.fork("blind"), TEST_GROUP)
    config = GlimmerConfig(
        predicate_spec="purchase",
        service_identity=service_identity.public_key,
        blinder_identity=blinder_identity.public_key,
        features_digest=features_digest(REVIEW_FEATURES),
    )
    image = build_glimmer_image(vendor, config, name="shop-glimmer")
    registry = VettingRegistry()
    registry.publish("shop-glimmer", image.mrenclave)
    provisioner = ServiceProvisioner(
        service_identity, signing, ias, registry, "shop-glimmer", rng.fork("sp")
    )

    clients = {}
    for user_id, context in workload.contexts.items():
        client = ClientDevice(
            user_id, image, ias, seed=user_id.encode(),
            data=LocalDataStore(shopping_context=context),
        )
        client.provision_signing_key(provisioner)
        clients[user_id] = client

    endorsed = rejected = misclassified = 0
    for review in workload.reviews:
        try:
            signed = clients[review.user_id].contribute(
                round_id=1,
                values=[review.rating / 5.0],
                features=REVIEW_FEATURES,
                blind=False,
                claims={"review": review},
            )
            assert signing.public_key.is_valid(signed.signed_bytes(), signed.signature)
            endorsed += 1
            misclassified += review.is_spurious
            verdict = "endorsed"
        except ValidationError as exc:
            rejected += 1
            misclassified += not review.is_spurious
            verdict = f"rejected ({str(exc)[:52]}…)"
        tag = "SHILL " if review.is_spurious else "honest"
        print(f"  [{tag}] {review.review_id} ({review.product_id}, "
              f"{review.rating}★): {verdict}")

    print(f"\nendorsed {endorsed}, rejected {rejected}, "
          f"misclassified {misclassified} of {len(workload.reviews)}")
    total_purchases = sum(len(c.purchases) for c in workload.contexts.values())
    print(f"purchase records that never left any device: {total_purchases}")


if __name__ == "__main__":
    main()
