"""Benchmark E13: §2 extension — consortium vs SGX Glimmer.

Regenerates the E13 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e13_consortium

from benchmarks.conftest import run_and_report


def test_bench_e13(benchmark):
    run_and_report(
        benchmark, e13_consortium.run,
        num_users=8, num_members=5, quorum=3, failure_rates=(0.0, 0.2),
    )
