"""Benchmark E5: Fig. 2+3 — end-to-end Glimmer pipeline.

Regenerates the E5 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e5_pipeline

from benchmarks.conftest import run_and_report


def test_bench_e5(benchmark):
    run_and_report(benchmark, e5_pipeline.run, num_users=8)
