"""Benchmark E8: §4.1 — bot detection channels.

Regenerates the E8 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e8_bot_detection

from benchmarks.conftest import run_and_report


def test_bench_e8(benchmark):
    run_and_report(benchmark, e8_bot_detection.run, num_sessions=60, sophistication_levels=(0.0, 0.6, 0.95))
