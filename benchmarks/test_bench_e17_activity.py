"""Benchmark E17: §2 extension — in-home activity detection.

Regenerates the E17 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e17_activity

from benchmarks.conftest import run_and_report


def test_bench_e17(benchmark):
    run_and_report(
        benchmark, e17_activity.run,
        num_users=10, tolerances=(0.02, 0.05), frames_per_stream=120,
    )
