"""Benchmark E3: Fig. 1c — secure aggregation.

Regenerates the E3 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e3_secure_agg

from benchmarks.conftest import run_and_report


def test_bench_e3(benchmark):
    run_and_report(benchmark, e3_secure_agg.run, num_users=12, dropout_rates=(0.0, 0.25))
