"""Benchmark E1: Fig. 1a — raw sharing baseline.

Regenerates the E1 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e1_raw_sharing

from benchmarks.conftest import run_and_report


def test_bench_e1(benchmark):
    run_and_report(benchmark, e1_raw_sharing.run, cohort_sizes=(16, 64))
