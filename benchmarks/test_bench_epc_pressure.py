"""Ablation bench: EPC pressure on Glimmer contribution cost.

DESIGN.md §6 calls out the simulator's EPC model.  SGX1-era enclaves page
against a ~96 MiB EPC; a Glimmer co-resident with bigger enclaves (or a
bloated Glimmer) pays page-fault cycles on every entry.  This bench sweeps
the Glimmer's declared working set against a fixed small EPC and reports
simulated cycles per contribution — the argument for keeping Glimmers
"small and limited" (§3) in one table.
"""

from repro.analysis.reporting import Table
from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import BlinderProvisioner, ServiceProvisioner
from repro.crypto.masking import BlindingService
from repro.experiments.common import Deployment
from repro.sgx.costs import CostModel

FEATURES = tuple((f"w{i}", f"v{i}") for i in range(32))
EPC_BYTES = 4 << 20  # a deliberately tiny EPC to expose the paging slope
MEMORY_SWEEP = (1 << 20, 4 << 20, 16 << 20, 64 << 20)


def _cycles_for_memory(deployment, memory_bytes, index):
    config = GlimmerConfig(
        predicate_spec="range:0.0:1.0",
        service_identity=deployment.service_identity.public_key,
        blinder_identity=deployment.blinder_identity.public_key,
        features_digest=features_digest(FEATURES),
    )
    name = f"epc-glimmer-{index}"
    image = build_glimmer_image(
        deployment.vendor, config, name=name, memory_bytes=memory_bytes
    )
    deployment.registry.publish(name, image.mrenclave)
    client = ClientDevice(
        f"epc-client-{index}", image, deployment.attestation,
        seed=f"epc-{index}".encode(), data=LocalDataStore(),
    )
    client.platform.epc_bytes = EPC_BYTES
    provisioner = ServiceProvisioner(
        deployment.service_identity, deployment.signing_keypair,
        deployment.attestation, deployment.registry, name,
        deployment.rng.fork(f"epc-sp-{index}"),
    )
    blinder = BlinderProvisioner(
        deployment.blinder_identity,
        BlindingService(deployment.rng.fork(f"epc-bs-{index}"), deployment.codec),
        deployment.attestation, deployment.registry, name,
        deployment.rng.fork(f"epc-bp-{index}"),
    )
    client.provision_signing_key(provisioner)
    blinder.open_round(1, 1, len(FEATURES))
    client.provision_mask(blinder, 1, 0)
    client.glimmer.meter.reset()
    client.contribute(1, [0.5] * len(FEATURES), FEATURES)
    return client.glimmer.meter


def test_bench_epc_pressure(benchmark):
    deployment = Deployment.build(
        num_users=1, seed=b"epc-bench", provision_clients=False
    )

    def sweep():
        table = Table(
            "Ablation: Glimmer working set vs a 4 MiB EPC (cycles/contribution)",
            ["glimmer memory", "paging cycles", "total cycles"],
        )
        for index, memory in enumerate(MEMORY_SWEEP):
            meter = _cycles_for_memory(deployment, memory, index)
            table.add_row(
                f"{memory >> 20} MiB",
                meter.buckets.get("epc-paging", 0),
                meter.total,
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(table.render())
    benchmark.extra_info["table"] = table.render()
