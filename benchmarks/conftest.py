"""Benchmark harness conventions.

Every benchmark module regenerates one experiment table (DESIGN.md §4).
Experiments are deterministic end-to-end runs, so each is measured with a
single pedantic round — the interesting output is the *table*, which is
attached to ``benchmark.extra_info`` and printed (visible with ``-s``).

Run everything with::

    pytest benchmarks/ --benchmark-only
"""


def run_and_report(benchmark, runner, **kwargs):
    """Benchmark one experiment run and publish its table."""
    result = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    table = result.table().render()
    benchmark.extra_info["table"] = table
    print()
    print(table)
    return result
