"""Benchmark E14: extension — distributed DP inside the Glimmer.

Regenerates the E14 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e14_dp_release

from benchmarks.conftest import run_and_report


def test_bench_e14(benchmark):
    run_and_report(
        benchmark, e14_dp_release.run,
        num_users=10, sigmas=(0.0, 0.05, 0.2, 1.0, 5.0),
    )
