"""Benchmark E11: §1 — photos-for-maps geo validation.

Regenerates the E11 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e11_photo_maps

from benchmarks.conftest import run_and_report


def test_bench_e11(benchmark):
    run_and_report(benchmark, e11_photo_maps.run, num_users=8, radii=(10.0, 25.0, 80.0))
