"""Benchmark E2: Fig. 1b — federated learning inversion.

Regenerates the E2 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e2_federated

from benchmarks.conftest import run_and_report


def test_bench_e2(benchmark):
    run_and_report(benchmark, e2_federated.run, cohort_sizes=(16, 64))
