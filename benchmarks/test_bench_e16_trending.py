"""Benchmark E16: §1 extension — trending topics through the pipeline.

Regenerates the E16 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e16_trending

from benchmarks.conftest import run_and_report


def test_bench_e16(benchmark):
    run_and_report(
        benchmark, e16_trending.run,
        num_users=8, epoch_intensities=(0.0, 0.0, 0.1, 0.3, 0.5),
    )
