"""Benchmark E6: §2 — predicate ladder vs adversary cost.

Regenerates the E6 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e6_predicates

from benchmarks.conftest import run_and_report


def test_bench_e6(benchmark):
    run_and_report(benchmark, e6_predicates.run, num_users=4)
