"""Benchmark E10: §4.2 — Glimmer-as-a-service placements.

Regenerates the E10 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e10_gaas

from benchmarks.conftest import run_and_report


def test_bench_e10(benchmark):
    run_and_report(benchmark, e10_gaas.run, num_clients=6)
