"""Benchmark E4: Fig. 1d — the 538 poisoning attack.

Regenerates the E4 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e4_poisoning

from benchmarks.conftest import run_and_report


def test_bench_e4(benchmark):
    run_and_report(benchmark, e4_poisoning.run, num_users=10, magnitudes=(2.0, 10.0, 538.0))
