"""Micro-benchmarks for the primitives the Glimmer pipeline leans on.

Unlike the experiment benches (single deterministic runs), these measure
real wall-clock performance of the hot operations across many rounds:
Schnorr sign/verify, DH agreement, sum-zero mask sampling, fixed-point
encode, the Glimmer's ``process_contribution`` ecall, and a full secure-
aggregation round.
"""

import pytest

from repro.crypto.dh import DHKeyPair, OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import SumZeroMasks, apply_mask
from repro.crypto.schnorr import SchnorrKeyPair
from repro.experiments.common import Deployment

VECTOR = [0.5] * 256


def test_bench_schnorr_sign(benchmark):
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"bench"), OAKLEY_GROUP_1)
    benchmark(keypair.sign, b"contribution digest" * 2)


def test_bench_schnorr_verify(benchmark):
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"bench"), OAKLEY_GROUP_1)
    message = b"contribution digest" * 2
    signature = keypair.sign(message)
    benchmark(keypair.public_key.verify, message, signature)


def test_bench_schnorr_batch_verify(benchmark):
    """Randomized batch verification of a 64-signature cohort."""
    from repro.crypto.schnorr import batch_verify

    keypair = SchnorrKeyPair.generate(HmacDrbg(b"bench"), OAKLEY_GROUP_1)
    items = [
        (message, keypair.sign(message))
        for message in (b"contribution %d" % i for i in range(64))
    ]
    assert batch_verify(keypair.public_key, items) is True
    benchmark(batch_verify, keypair.public_key, items)


def test_bench_fixed_base_exp(benchmark):
    """Windowed fixed-base exponentiation for the subgroup generator."""
    from repro.crypto import group_ops

    group = OAKLEY_GROUP_1
    h = group.subgroup_generator()
    group_ops.register_base(group.prime, h)
    rng = HmacDrbg(b"bench-exp")
    exponent = group.random_exponent(rng)
    assert group_ops.fixed_power(group.prime, h, exponent) == pow(
        h, exponent, group.prime
    )
    benchmark(group_ops.fixed_power, group.prime, h, exponent)


def test_bench_multi_exp(benchmark):
    """Pippenger multi-exponentiation: 64 bases, 128-bit exponents."""
    from repro.crypto import group_ops

    group = OAKLEY_GROUP_1
    rng = HmacDrbg(b"bench-multiexp")
    h = group.subgroup_generator()
    bases = [group.power(h, group.random_exponent(rng)) for _ in range(64)]
    exponents = [int.from_bytes(rng.generate(16), "big") or 1 for _ in range(64)]
    benchmark(group_ops.multi_power, group.prime, bases, exponents)


def test_bench_dh_agreement(benchmark):
    rng = HmacDrbg(b"bench-dh")
    alice = DHKeyPair.generate(OAKLEY_GROUP_1, rng)
    bob = DHKeyPair.generate(OAKLEY_GROUP_1, rng)
    benchmark(alice.derive_key, bob.public, "bench")


def test_bench_sum_zero_mask_sampling(benchmark):
    rng = HmacDrbg(b"bench-masks")
    benchmark(SumZeroMasks.sample, 16, 256, rng)


def test_bench_fixed_point_encode(benchmark):
    codec = FixedPointCodec()
    benchmark(codec.encode, VECTOR)


def test_bench_apply_mask(benchmark):
    rng = HmacDrbg(b"bench-apply")
    codec = FixedPointCodec()
    encoded = codec.encode(VECTOR)
    mask = SumZeroMasks.sample(2, len(VECTOR), rng).mask_for(0)
    benchmark(apply_mask, encoded, mask)


def test_bench_drbg_generate(benchmark):
    rng = HmacDrbg(b"bench-drbg")
    benchmark(rng.generate, 1024)


@pytest.fixture(scope="module")
def contribution_deployment():
    deployment = Deployment.build(
        num_users=1, seed=b"bench-contribution", sentences_per_user=15
    )
    return deployment


def test_bench_glimmer_process_contribution(benchmark, contribution_deployment):
    """One full validate→blind→sign ecall (masks re-provisioned per round)."""
    deployment = contribution_deployment
    user_id = deployment.corpus.users[0].user_id
    client = deployment.clients[user_id]
    vector = list(deployment.local_vectors()[user_id])
    state = {"round": 100}

    def one_contribution():
        round_id = state["round"]
        state["round"] += 1
        deployment.blinder_provisioner.open_round(
            round_id, 1, len(deployment.features)
        )
        client.provision_mask(deployment.blinder_provisioner, round_id, 0)
        return client.contribute(round_id, vector, deployment.features.bigrams)

    benchmark.pedantic(one_contribution, rounds=10, iterations=1, warmup_rounds=1)


def test_bench_secagg_full_round(benchmark):
    """A complete 8-party Bonawitz round, no dropouts."""
    from repro.crypto.secagg import SecureAggregationClient, SecureAggregationServer

    codec = FixedPointCodec()
    values = [0.25] * 32

    def full_round():
        server = SecureAggregationServer(codec, group=TEST_GROUP)
        clients = [
            SecureAggregationClient(i, HmacDrbg(bytes([i])), codec, group=TEST_GROUP)
            for i in range(8)
        ]
        roster = server.register([c.advertise() for c in clients], 5)
        messages = []
        for client in clients:
            messages.extend(client.share_keys(roster, 5))
        routed = SecureAggregationServer.route_shares(messages)
        for client in clients:
            client.receive_shares(routed.get(client.client_id, []))
        for client in clients:
            server.collect_masked_input(
                client.client_id, client.masked_input(codec.encode(values))
            )
        survivors, dropped = server.survivor_sets()
        responses = {
            c.client_id: c.unmask_response(survivors, dropped) for c in clients
        }
        return server.aggregate(responses)

    benchmark.pedantic(full_round, rounds=3, iterations=1, warmup_rounds=0)


def test_bench_kernel_table(benchmark):
    """Regenerates the EXPERIMENTS.md kernel-microbenchmark table.

    Runs every vectorized kernel against its frozen scalar baseline
    (``repro.perf.reference``) at 256/4096/65536 elements and prints the
    scalar-vs-vectorized ops/s table (visible with ``-s``; also attached
    to ``benchmark.extra_info``).  ``repro bench`` measures the same
    metrics with longer timings for the committed BENCH_*.json snapshot.
    """
    from repro.perf.bench import _MICRO_BENCHES, _PK_BENCHES, _PK_SIZES

    sizes = (256, 4096, 65536)
    min_time = 0.05  # short timings: the table's shape, not its precision

    def run_all():
        rows = []
        plan = [(name, fn, sizes) for name, fn in _MICRO_BENCHES.items()]
        plan += [(name, fn, _PK_SIZES) for name, fn in _PK_BENCHES.items()]
        for name, bench_fn, bench_sizes in plan:
            for length in bench_sizes:
                fast, slow = bench_fn(length, min_time)
                rows.append(
                    (
                        f"{name}/n{length}",
                        fast["ops_per_sec"],
                        slow["ops_per_sec"],
                        fast["ops_per_sec"] / slow["ops_per_sec"],
                    )
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    lines = [
        "| kernel | vectorized ops/s | scalar ops/s | speedup |",
        "|---|---|---|---|",
    ]
    for key, fast_ops, slow_ops, speedup in rows:
        lines.append(f"| {key} | {fast_ops:.1f} | {slow_ops:.1f} | {speedup:.1f}x |")
    table = "\n".join(lines)
    benchmark.extra_info["table"] = table
    print()
    print(table)
