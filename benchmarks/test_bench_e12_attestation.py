"""Benchmark E12: §3 — attestation and vetting attack matrix.

Regenerates the E12 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e12_attestation

from benchmarks.conftest import run_and_report


def test_bench_e12(benchmark):
    run_and_report(benchmark, e12_attestation.run, )
