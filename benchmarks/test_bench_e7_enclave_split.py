"""Benchmark E7: §3 — single vs decomposed enclaves.

Regenerates the E7 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e7_enclave_split

from benchmarks.conftest import run_and_report


def test_bench_e7(benchmark):
    run_and_report(benchmark, e7_enclave_split.run, vector_sizes=(16, 128, 1024))
