"""Benchmark E9: §4.1 — covert channel bound.

Regenerates the E9 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e9_covert_channel

from benchmarks.conftest import run_and_report


def test_bench_e9(benchmark):
    run_and_report(benchmark, e9_covert_channel.run, budgets=(1, 8, 64))
