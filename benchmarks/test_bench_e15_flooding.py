"""Benchmark E15: extension — flooding vs rate-limits + rollback protection.

Regenerates the E15 table from DESIGN.md §4 at full experiment size and
measures its end-to-end runtime.
"""

from repro.experiments import e15_flooding

from benchmarks.conftest import run_and_report


def test_bench_e15(benchmark):
    run_and_report(
        benchmark, e15_flooding.run, num_users=6, flood_sizes=(1, 4, 8)
    )
