"""Tests for the trainer, aggregation, inversion, poisoning, and metrics."""

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.federated.aggregation import FederatedAggregator
from repro.federated.inversion import InversionAttacker, StanceEvidence
from repro.federated.metrics import (
    attribute_inference_advantage,
    empirical_accuracy,
    model_distance,
    prediction_changed,
    top1_accuracy,
)
from repro.federated.model import BigramModel, FeatureSpace
from repro.federated.poisoning import Poisoner
from repro.federated.trainer import LocalTrainer
from repro.workloads.text import KeyboardCorpus, stance_evidence


@pytest.fixture(scope="module")
def corpus():
    return KeyboardCorpus.generate(12, HmacDrbg(b"fed-tests"), sentences_per_user=25)


@pytest.fixture(scope="module")
def features(corpus):
    return FeatureSpace.from_corpus(corpus.all_sentences())


@pytest.fixture(scope="module")
def vectors(corpus, features):
    trainer = LocalTrainer(features)
    return {
        user.user_id: trainer.train(corpus.streams[user.user_id]).contribution()
        for user in corpus.users
    }


def test_trainer_matches_model_train(corpus, features):
    user = corpus.users[0].user_id
    trained = LocalTrainer(features).train(corpus.streams[user])
    direct = BigramModel.train(features, corpus.streams[user])
    assert np.allclose(trained.model.weights, direct.weights)


def test_trainer_records_evidence(corpus, features):
    user = corpus.users[0].user_id
    result = LocalTrainer(features).train(corpus.streams[user])
    assert result.num_sentences == len(corpus.streams[user])
    assert result.num_tokens == sum(len(s) for s in corpus.streams[user])
    assert sum(result.pair_counts.values()) == result.num_tokens - result.num_sentences


def test_aggregate_is_mean(features, vectors):
    aggregator = FederatedAggregator(features)
    model = aggregator.aggregate(list(vectors.values()))
    expected = np.mean(np.stack(list(vectors.values())), axis=0)
    assert np.allclose(model.weights, expected)


def test_aggregate_sum_path(features, vectors):
    aggregator = FederatedAggregator(features)
    total = np.sum(np.stack(list(vectors.values())), axis=0)
    model = aggregator.aggregate_sum(total, len(vectors))
    expected = aggregator.aggregate(list(vectors.values()))
    assert np.allclose(model.weights, expected.weights)


def test_aggregate_validations(features):
    aggregator = FederatedAggregator(features)
    with pytest.raises(ConfigurationError):
        aggregator.aggregate([])
    with pytest.raises(ConfigurationError):
        aggregator.aggregate([np.zeros(len(features) + 1)])
    with pytest.raises(ConfigurationError):
        aggregator.aggregate_sum(np.zeros(len(features)), 0)


def test_aggregate_predicts_trending_topic(corpus, features, vectors):
    model = FederatedAggregator(features).aggregate(list(vectors.values()))
    assert model.top_prediction("donald") == "trump"


def test_inversion_recovers_stances(corpus, features, vectors):
    attacker = InversionAttacker(features, stance_evidence())
    assert attacker.accuracy(vectors, corpus.labels()) >= 0.9


def test_inversion_on_aggregate_is_uninformative_per_user(corpus, features, vectors):
    attacker = InversionAttacker(features, stance_evidence())
    aggregate = np.mean(np.stack(list(vectors.values())), axis=0)
    guess = attacker.infer(aggregate)
    labels = corpus.labels()
    accuracy = sum(1 for u in labels if labels[u] == guess) / len(labels)
    assert accuracy <= 0.6  # cohort is balanced, one guess fits half


def test_inversion_validations(features):
    with pytest.raises(ConfigurationError):
        InversionAttacker(
            features,
            StanceEvidence("a", "b", positive_markers=(), negative_markers=()),
        )
    attacker = InversionAttacker(features, stance_evidence())
    with pytest.raises(ConfigurationError):
        attacker.accuracy({}, {})


def test_poisoner_magnitude_attack(features, vectors):
    poisoner = Poisoner(features, [features.bigrams[0]])
    base = next(iter(vectors.values()))
    poisoned = poisoner.magnitude_attack(base, 538.0)
    assert poisoned.vector[0] == 538.0
    assert poisoned.strategy == "magnitude"
    # untargeted parameters untouched
    assert np.array_equal(poisoned.vector[1:], base[1:])


def test_poisoner_boost_stays_in_range(features, vectors):
    poisoner = Poisoner(features, [features.bigrams[0]])
    poisoned = poisoner.boost_in_range_attack(next(iter(vectors.values())), 1.0)
    assert 0.0 <= poisoned.vector[0] <= 1.0
    with pytest.raises(ConfigurationError):
        poisoner.boost_in_range_attack(next(iter(vectors.values())), 2.0)


def test_poisoner_fabricated_attack_is_self_consistent(features):
    poisoner = Poisoner(features, [features.bigrams[0]])
    poisoned = poisoner.fabricated_consistent_attack(repetitions=10)
    retrained = LocalTrainer(features).train(poisoned.forged_sentences)
    assert np.allclose(retrained.contribution(), poisoned.vector)
    assert poisoned.fabrication_effort > 0


def test_poisoner_requires_targets(features):
    with pytest.raises(ConfigurationError):
        Poisoner(features, [])


def test_poisoner_skew_measures_target_movement(features, vectors):
    poisoner = Poisoner(features, [features.bigrams[0]])
    before = np.zeros(len(features))
    after = before.copy()
    after[0] = 53.8
    assert poisoner.skew(before, after) == pytest.approx(53.8)


def test_top1_accuracy_bounds(corpus, features, vectors):
    model = FederatedAggregator(features).aggregate(list(vectors.values()))
    holdout = corpus.holdout(HmacDrbg(b"holdout"))
    accuracy = top1_accuracy(model, holdout)
    assert 0.0 < accuracy <= 1.0


def test_top1_accuracy_empty_model(features):
    assert top1_accuracy(BigramModel(features), [["donald", "trump"]]) == 0.0


def test_attribute_inference_advantage():
    assert attribute_inference_advantage(0.5) == pytest.approx(0.0)
    assert attribute_inference_advantage(1.0) == pytest.approx(1.0)
    assert attribute_inference_advantage(0.75) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        attribute_inference_advantage(0.5, num_classes=1)


def test_model_distance(features):
    a = BigramModel(features, np.zeros(len(features)))
    b = BigramModel(features, np.zeros(len(features)))
    assert model_distance(a, b) == 0.0
    b.weights[2] = 0.7
    assert model_distance(a, b) == pytest.approx(0.7)


def test_model_distance_requires_same_features(features):
    other = FeatureSpace(bigrams=(("x", "y"),))
    with pytest.raises(ConfigurationError):
        model_distance(BigramModel(features), BigramModel(other))


def test_prediction_changed(features, vectors):
    model = FederatedAggregator(features).aggregate(list(vectors.values()))
    same = model.copy()
    assert not prediction_changed(model, same, "donald")


def test_empirical_accuracy():
    assert empirical_accuracy({"a": "x", "b": "y"}, {"a": "x", "b": "z"}) == 0.5
    with pytest.raises(ConfigurationError):
        empirical_accuracy({}, {})
