"""Tests for the bigram model and feature space."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.federated.model import BigramModel, FeatureSpace

SENTENCES = [
    ["donald", "trump", "will", "win"],
    ["i'm", "voting", "for", "donald", "trump"],
    ["donald", "duck", "cartoons"],
]


def test_feature_space_from_corpus():
    features = FeatureSpace.from_corpus(SENTENCES)
    assert ("donald", "trump") in features.bigrams
    assert ("donald", "duck") in features.bigrams
    assert len(set(features.bigrams)) == len(features.bigrams)


def test_feature_space_most_frequent_first():
    features = FeatureSpace.from_corpus(SENTENCES)
    assert features.bigrams[0] == ("donald", "trump")  # appears twice


def test_feature_space_max_features():
    features = FeatureSpace.from_corpus(SENTENCES, max_features=3)
    assert len(features) == 3


def test_feature_space_rejects_duplicates():
    with pytest.raises(ConfigurationError):
        FeatureSpace(bigrams=(("a", "b"), ("a", "b")))


def test_feature_space_rejects_empty_corpus():
    with pytest.raises(ConfigurationError):
        FeatureSpace.from_corpus([["single"]])


def test_feature_space_position():
    features = FeatureSpace(bigrams=(("a", "b"), ("c", "d")))
    assert features.position(("c", "d")) == 1
    with pytest.raises(ConfigurationError):
        features.position(("x", "y"))


def test_train_computes_conditional_probabilities():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    # "donald" is followed by "trump" twice and "duck" once.
    assert model.weight(("donald", "trump")) == pytest.approx(2 / 3)
    assert model.weight(("donald", "duck")) == pytest.approx(1 / 3)


def test_weights_always_probabilities():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    assert model.in_legal_range()


def test_untrained_model_zero_weights():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel(features)
    assert np.all(model.weights == 0)
    assert model.top_prediction("donald") is None


def test_predict_next_ranked():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    ranked = model.predict_next("donald")
    assert ranked[0] == ("trump", pytest.approx(2 / 3))
    assert ranked[1][0] == "duck"


def test_predict_unknown_word():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    assert model.predict_next("zebra") == []
    assert model.top_prediction("zebra") is None


def test_vector_roundtrip():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    restored = BigramModel.from_vector(features, model.as_vector())
    assert np.array_equal(restored.weights, model.weights)


def test_as_vector_is_a_copy():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    vector = model.as_vector()
    vector[0] = 999.0
    assert model.weights[0] != 999.0


def test_wrong_vector_shape_rejected():
    features = FeatureSpace.from_corpus(SENTENCES)
    with pytest.raises(ConfigurationError):
        BigramModel(features, np.zeros(len(features) + 1))


def test_copy_independent():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel.train(features, SENTENCES)
    clone = model.copy()
    clone.weights[0] = 0.123
    assert model.weights[0] != 0.123


def test_in_legal_range_detects_violations():
    features = FeatureSpace.from_corpus(SENTENCES)
    model = BigramModel(features, np.zeros(len(features)))
    model.weights[0] = 538.0
    assert not model.in_legal_range()


def test_first_words():
    features = FeatureSpace(bigrams=(("a", "b"), ("a", "c"), ("d", "e")))
    assert features.first_words() == {"a", "d"}


@settings(max_examples=30)
@given(
    st.lists(
        st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=6),
        min_size=1,
        max_size=10,
    )
)
def test_train_property_weights_are_probabilities(sentences):
    features = FeatureSpace.from_corpus(sentences)
    model = BigramModel.train(features, sentences)
    assert model.in_legal_range()
    # Per left word, tracked weights sum to at most 1 (they are a sub-pmf).
    for left in features.first_words():
        total = sum(
            model.weights[i]
            for i, (l, __) in enumerate(features.bigrams)
            if l == left
        )
        assert total <= 1.0 + 1e-9
