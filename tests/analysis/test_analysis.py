"""Tests for stats, reporting tables, and leakage accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.privacy import bits_of_vector, leakage_for_channel
from repro.analysis.reporting import Table
from repro.analysis.stats import mean, percentile, stddev
from repro.errors import ConfigurationError


# ---------------------------------------------------------------------- stats

def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ConfigurationError):
        mean([])


def test_stddev():
    assert stddev([5.0]) == 0.0
    assert stddev([1.0, 3.0]) == pytest.approx(2.0 ** 0.5)
    with pytest.raises(ConfigurationError):
        stddev([])


def test_percentile_basic():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_singleton():
    assert percentile([7.0], 95) == 7.0


def test_percentile_validations():
    with pytest.raises(ConfigurationError):
        percentile([], 50)
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)


def test_percentile_subnormal_endpoints_stay_in_bounds():
    # The weighted-sum interpolation underflowed both products to 0.0 here.
    tiny = 5e-324
    assert percentile([tiny, tiny], 50) == tiny


def test_percentile_order_independent():
    assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentile_bounds_property(values):
    assert min(values) <= percentile(values, 50) <= max(values)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_mean_between_min_max(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


# --------------------------------------------------------------------- tables

def test_table_render_aligned():
    table = Table("Title", ["col-a", "b"])
    table.add_row(1, "xx")
    table.add_row(22222, "y")
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "Title"
    assert "col-a" in lines[2]
    assert len({len(line) for line in lines[3:]} | {len(lines[2])}) <= 2


def test_table_row_arity_checked():
    table = Table("T", ["a", "b"])
    with pytest.raises(ConfigurationError):
        table.add_row(1)


def test_table_needs_columns():
    with pytest.raises(ConfigurationError):
        Table("T", [])


def test_table_formats_booleans_and_floats():
    table = Table("T", ["x"])
    table.add_row(True)
    table.add_row(0.123456)
    table.add_row(1e9)
    rendered = table.render()
    assert "yes" in rendered
    assert "0.1235" in rendered
    assert "e+09" in rendered


def test_table_str():
    table = Table("T", ["x"])
    table.add_row(1)
    assert str(table) == table.render()


def test_table_json_round_trip():
    import json

    import numpy as np

    table = Table("T", ["name", "score", "ok"])
    table.add_row("alpha", np.float64(0.25), True)
    table.add_row("beta", np.array([1, 2]), None)
    payload = json.loads(table.to_json(indent=2))
    assert payload == {
        "title": "T",
        "columns": ["name", "score", "ok"],
        "rows": [["alpha", 0.25, True], ["beta", [1, 2], None]],
    }
    # Raw values survive untouched even though render() formats them.
    assert table.rows[0][2] == "yes"
    assert payload["rows"][0][2] is True


# -------------------------------------------------------------------- privacy

def test_leakage_report():
    report = leakage_for_channel("raw", 1.0, 5000.0)
    assert report.attacker_advantage == pytest.approx(1.0)
    assert "raw" in report.summary()


def test_leakage_chance_has_zero_advantage():
    report = leakage_for_channel("blinded", 0.5, 64.0)
    assert report.attacker_advantage == pytest.approx(0.0)


def test_leakage_validations():
    with pytest.raises(ConfigurationError):
        leakage_for_channel("x", 1.5, 10.0)
    with pytest.raises(ConfigurationError):
        leakage_for_channel("x", 0.5, -1.0)


def test_bits_of_vector():
    assert bits_of_vector(10) == 640.0
    assert bits_of_vector(0) == 0.0
    with pytest.raises(ConfigurationError):
        bits_of_vector(-1)
