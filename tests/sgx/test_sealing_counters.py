"""Tests for sealed storage and monotonic counters."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import EnclaveError, SealingError
from repro.sgx import EnclaveImage, SgxPlatform
from repro.sgx.counters import CounterStore, MonotonicCounter
from repro.sgx.enclave import EnclaveIdentity
from repro.sgx.sealing import SealingManager

from tests.sgx.conftest import CounterProgram


def identity(mrenclave=b"\x01" * 32, mrsigner=b"\x02" * 32, version=1, debug=False):
    return EnclaveIdentity(
        mrenclave=mrenclave, mrsigner=mrsigner, version=version, debug=debug
    )


@pytest.fixture
def sealing():
    return SealingManager(b"root-secret" * 3, HmacDrbg(b"seal-rng"))


def test_seal_unseal_roundtrip(sealing):
    ident = identity()
    blob = sealing.seal(ident, b"payload", "mrenclave")
    assert sealing.unseal(ident, blob) == b"payload"


def test_mrenclave_policy_blocks_other_code(sealing):
    blob = sealing.seal(identity(), b"payload", "mrenclave")
    other = identity(mrenclave=b"\x09" * 32)
    with pytest.raises(SealingError):
        sealing.unseal(other, blob)


def test_mrsigner_policy_survives_code_change(sealing):
    blob = sealing.seal(identity(), b"payload", "mrsigner")
    upgraded = identity(mrenclave=b"\x09" * 32)  # same signer, new code
    assert sealing.unseal(upgraded, blob) == b"payload"


def test_mrsigner_policy_blocks_other_vendor(sealing):
    blob = sealing.seal(identity(), b"payload", "mrsigner")
    other_vendor = identity(mrsigner=b"\x0a" * 32)
    with pytest.raises(SealingError):
        sealing.unseal(other_vendor, blob)


def test_unknown_policy_rejected(sealing):
    with pytest.raises(SealingError):
        sealing.seal(identity(), b"x", "mrwhatever")


def test_truncated_blob_rejected(sealing):
    with pytest.raises(SealingError):
        sealing.unseal(identity(), b"\x00" * 10)


def test_unknown_policy_byte_rejected(sealing):
    blob = sealing.seal(identity(), b"x", "mrenclave")
    with pytest.raises(SealingError):
        sealing.unseal(identity(), b"\x07" + blob[1:])


def test_header_tamper_rejected(sealing):
    ident = identity()
    blob = sealing.seal(ident, b"x", "mrenclave")
    # Flip a bit in the ciphertext region.
    mutated = blob[:40] + bytes([blob[40] ^ 1]) + blob[41:]
    with pytest.raises(SealingError):
        sealing.unseal(ident, mutated)


def test_cross_platform_sealing_fails():
    ident = identity()
    sealing_a = SealingManager(b"secret-a" * 4, HmacDrbg(b"a"))
    sealing_b = SealingManager(b"secret-b" * 4, HmacDrbg(b"b"))
    blob = sealing_a.seal(ident, b"data", "mrenclave")
    with pytest.raises(SealingError):
        sealing_b.unseal(ident, blob)


def test_empty_payload_roundtrip(sealing):
    ident = identity()
    assert sealing.unseal(ident, sealing.seal(ident, b"", "mrenclave")) == b""


def test_sealed_blobs_nondeterministic(sealing):
    ident = identity()
    assert sealing.seal(ident, b"x", "mrenclave") != sealing.seal(ident, b"x", "mrenclave")


def test_cross_enclave_unseal_via_platform(vendor, attestation_service):
    """End-to-end: a different program cannot unseal the Glimmer's state."""
    from repro.sgx import EnclaveProgram, ecall

    class Thief(EnclaveProgram):
        @ecall
        def try_unseal(self, blob):
            return self.api.unseal(blob)

    platform = SgxPlatform(b"seal-plat", attestation_service=attestation_service)
    victim = platform.load_enclave(EnclaveImage.build(CounterProgram, vendor))
    thief = platform.load_enclave(EnclaveImage.build(Thief, vendor))
    blob = victim.ecall("seal_secret")
    with pytest.raises(SealingError):
        thief.ecall("try_unseal", blob)


def test_mrsigner_sealing_upgrade_path(vendor, attestation_service):
    """A v2 image from the same vendor can unseal v1's mrsigner-sealed data."""
    platform = SgxPlatform(b"upg-plat", attestation_service=attestation_service)
    v1 = platform.load_enclave(EnclaveImage.build(CounterProgram, vendor, version=1))
    v2 = platform.load_enclave(EnclaveImage.build(CounterProgram, vendor, version=2))
    blob = v1.ecall("seal_to_signer")
    assert v2.ecall("unseal", blob) == b"enclave-private-secret"


def test_monotonic_counter_increments():
    counter = MonotonicCounter(b"m" * 32, "quota")
    assert counter.value == 0
    assert counter.increment() == 1
    assert counter.increment() == 2


def test_rollback_detection():
    counter = MonotonicCounter(b"m" * 32, "quota")
    counter.increment()
    counter.assert_at_least(1)
    with pytest.raises(EnclaveError):
        counter.assert_at_least(5)


def test_counter_store_scoping():
    store = CounterStore()
    a = store.counter_for(b"a" * 32, "n")
    b = store.counter_for(b"b" * 32, "n")
    same_a = store.counter_for(b"a" * 32, "n")
    a.increment()
    assert same_a.value == 1
    assert b.value == 0
    assert len(store) == 2
