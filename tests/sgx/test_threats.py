"""Direct unit tests for the SGX attack toolkit."""

from repro.crypto.drbg import HmacDrbg
from repro.sgx.threats import (
    forge_quote,
    replay_quote_with_new_data,
    tamper_quote_measurement,
)

MRENCLAVE = b"\x01" * 32
MRSIGNER = b"\x02" * 32


def test_forged_quote_is_structurally_complete():
    quote = forge_quote(MRENCLAVE, MRSIGNER, b"binding")
    assert quote.mrenclave == MRENCLAVE
    assert quote.mrsigner == MRSIGNER
    assert len(quote.report_data) == 64
    assert quote.signature is not None


def test_forged_quote_signature_is_internally_consistent():
    """The forgery is a *valid* signature — just under an unprovisioned key.

    This matters: verification must fail on provisioning grounds, not
    because the attacker was sloppy.
    """
    from repro.crypto.schnorr import SchnorrKeyPair

    quote = forge_quote(MRENCLAVE, MRSIGNER, b"binding", seed=b"att")
    rogue = SchnorrKeyPair.generate(HmacDrbg(b"att", personalization="rogue"))
    rogue.public_key.verify(quote.signed_digest(), quote.signature)


def test_forge_quote_deterministic_per_seed():
    a = forge_quote(MRENCLAVE, MRSIGNER, b"x", seed=b"s1")
    b = forge_quote(MRENCLAVE, MRSIGNER, b"x", seed=b"s1")
    c = forge_quote(MRENCLAVE, MRSIGNER, b"x", seed=b"s2")
    assert a == b
    assert a.platform_id != c.platform_id


def test_tamper_preserves_everything_but_measurement():
    original = forge_quote(MRENCLAVE, MRSIGNER, b"x")
    tampered = tamper_quote_measurement(original, b"\x09" * 32)
    assert tampered.mrenclave == b"\x09" * 32
    assert tampered.signature == original.signature
    assert tampered.report_data == original.report_data
    assert tampered.signed_digest() != original.signed_digest()


def test_replay_swaps_report_data_only():
    original = forge_quote(MRENCLAVE, MRSIGNER, b"old binding")
    replayed = replay_quote_with_new_data(original, b"new binding")
    assert replayed.report_data.startswith(b"new binding")
    assert len(replayed.report_data) == 64
    assert replayed.mrenclave == original.mrenclave
    assert replayed.signature == original.signature
    assert replayed.signed_digest() != original.signed_digest()
