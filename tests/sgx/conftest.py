"""Shared fixtures for SGX simulator tests."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.sgx import (
    AttestationService,
    EnclaveImage,
    EnclaveProgram,
    SgxPlatform,
    VendorKey,
    ecall,
)


class CounterProgram(EnclaveProgram):
    """A tiny enclave used across the SGX tests."""

    def on_load(self):
        self._count = 0
        self._secret = b"enclave-private-secret"

    @ecall
    def increment(self, by=1):
        self.api.charge(10)
        self._count += by
        return self._count

    @ecall
    def seal_secret(self):
        return self.api.seal(self._secret)

    @ecall
    def unseal(self, blob):
        return self.api.unseal(blob)

    @ecall
    def seal_to_signer(self):
        return self.api.seal(self._secret, policy="mrsigner")

    @ecall
    def fetch_from_host(self, what):
        return self.api.ocall("fetch", what)

    @ecall
    def bump_counter(self, name):
        return self.api.monotonic_counter(name).increment()

    def not_an_ecall(self):
        return "host should never reach this"


@pytest.fixture
def vendor():
    return VendorKey.generate(HmacDrbg(b"test-vendor"))


@pytest.fixture
def attestation_service():
    return AttestationService(seed=b"test-ias")


@pytest.fixture
def image(vendor):
    return EnclaveImage.build(CounterProgram, vendor)


@pytest.fixture
def platform(attestation_service):
    return SgxPlatform(b"test-platform", attestation_service=attestation_service)


@pytest.fixture
def enclave(platform, image):
    return platform.load_enclave(image)
