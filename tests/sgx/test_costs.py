"""Tests for the cycle cost model and meters."""

import pytest
from hypothesis import given, strategies as st

from repro.sgx.costs import CostModel, CycleMeter, DEFAULT_COST_MODEL


def test_copy_cost_scales():
    model = CostModel(copy_cycles_per_byte=2.0)
    assert model.copy_cost(100) == 200
    assert model.copy_cost(0) == 0


def test_paging_cost_zero_within_epc():
    assert DEFAULT_COST_MODEL.paging_cost(0) == 0
    assert DEFAULT_COST_MODEL.paging_cost(-5) == 0


def test_paging_cost_rounds_up_to_pages():
    model = CostModel(epc_page_fault_cycles=100, epc_page_bytes=4096)
    assert model.paging_cost(1) == 100
    assert model.paging_cost(4096) == 100
    assert model.paging_cost(4097) == 200


def test_meter_charge_and_buckets():
    meter = CycleMeter()
    meter.charge(10, "a")
    meter.charge(5, "b")
    meter.charge(7, "a")
    assert meter.total == 22
    assert meter.buckets == {"a": 17, "b": 5}


def test_meter_rejects_negative():
    with pytest.raises(ValueError):
        CycleMeter().charge(-1)


def test_meter_truncates_float():
    meter = CycleMeter()
    meter.charge(2.9)
    assert meter.total == 2


def test_meter_merge():
    a = CycleMeter()
    a.charge(10, "x")
    b = CycleMeter()
    b.charge(3, "x")
    b.charge(4, "y")
    a.merge(b)
    assert a.total == 17
    assert a.buckets == {"x": 13, "y": 4}


def test_meter_reset():
    meter = CycleMeter()
    meter.charge(10)
    meter.reset()
    assert meter.total == 0
    assert meter.buckets == {}


def test_meter_snapshot():
    meter = CycleMeter()
    meter.charge(5, "z")
    assert meter.snapshot() == {"total": 5, "z": 5}


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
def test_meter_total_is_sum_of_buckets(charges):
    meter = CycleMeter()
    for i, amount in enumerate(charges):
        meter.charge(amount, f"bucket-{i % 3}")
    assert meter.total == sum(meter.buckets.values())
