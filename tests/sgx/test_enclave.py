"""Tests for enclave loading, ecalls/ocalls, isolation, and cost accounting."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import EnclaveError
from repro.sgx import (
    EnclaveImage,
    EnclaveProgram,
    SgxPlatform,
    ThreatModel,
    VendorKey,
    ecall,
)

from tests.sgx.conftest import CounterProgram


def test_ecall_roundtrip(enclave):
    assert enclave.ecall("increment") == 1
    assert enclave.ecall("increment", by=4) == 5


def test_unknown_ecall_rejected(enclave):
    with pytest.raises(EnclaveError):
        enclave.ecall("does_not_exist")


def test_non_ecall_method_not_exposed(enclave):
    assert "not_an_ecall" not in enclave.entry_points()
    with pytest.raises(EnclaveError):
        enclave.ecall("not_an_ecall")


def test_entry_points_listed(enclave):
    assert "increment" in enclave.entry_points()
    assert "seal_secret" in enclave.entry_points()


def test_private_state_isolated(enclave):
    with pytest.raises(EnclaveError):
        enclave.peek_private_state()


def test_memory_disclosure_threat_allows_peek(attestation_service, image):
    platform = SgxPlatform(
        b"weak-platform",
        attestation_service=attestation_service,
        threat_model=ThreatModel(memory_disclosure=True),
    )
    enclave = platform.load_enclave(image)
    state = enclave.peek_private_state()
    assert state["_secret"] == b"enclave-private-secret"


def test_ocall_reaches_host_handler(platform, image):
    host_log = []

    def fetch(what):
        host_log.append(what)
        return f"host-data:{what}"

    enclave = platform.load_enclave(image, ocall_handlers={"fetch": fetch})
    assert enclave.ecall("fetch_from_host", "gps") == "host-data:gps"
    assert host_log == ["gps"]


def test_missing_ocall_handler_raises(enclave):
    with pytest.raises(EnclaveError):
        enclave.ecall("fetch_from_host", "gps")


def test_launch_control_rejects_bad_signature(platform, vendor, image):
    impostor = VendorKey.generate(HmacDrbg(b"impostor"))
    forged = EnclaveImage(
        name=image.name,
        version=image.version,
        code=image.code,
        config=image.config,
        memory_bytes=image.memory_bytes,
        debug=image.debug,
        program_class=image.program_class,
        vendor_public=vendor.public_key,
        vendor_signature=impostor.keypair.sign(b"junk"),
    )
    with pytest.raises(EnclaveError):
        platform.load_enclave(forged)


def test_skip_launch_control_threat(attestation_service, vendor, image):
    impostor = VendorKey.generate(HmacDrbg(b"impostor"))
    forged = EnclaveImage(
        name=image.name,
        version=image.version,
        code=image.code,
        config=image.config,
        memory_bytes=image.memory_bytes,
        debug=image.debug,
        program_class=image.program_class,
        vendor_public=vendor.public_key,
        vendor_signature=impostor.keypair.sign(b"junk"),
    )
    platform = SgxPlatform(
        b"lc-off",
        attestation_service=attestation_service,
        threat_model=ThreatModel(skip_launch_control=True),
    )
    enclave = platform.load_enclave(forged)
    assert enclave.ecall("increment") == 1


def test_transition_cycles_charged(enclave):
    before = enclave.meter.buckets.get("transitions", 0)
    enclave.ecall("increment")
    after = enclave.meter.buckets.get("transitions", 0)
    assert after == before + enclave._platform.cost_model.ecall_cycles


def test_ocall_charges_extra_transition(platform, image):
    enclave = platform.load_enclave(
        image, ocall_handlers={"fetch": lambda what: "x"}
    )
    baseline = platform.cost_model.ecall_cycles
    before = enclave.meter.buckets.get("transitions", 0)
    enclave.ecall("fetch_from_host", "y")
    delta = enclave.meter.buckets["transitions"] - before
    assert delta == baseline + platform.cost_model.ocall_cycles


def test_boundary_copy_cycles_scale_with_payload(enclave):
    enclave.ecall("increment")
    small = enclave.meter.buckets.get("boundary-copies", 0)
    enclave.ecall("increment", by=1)
    after_small = enclave.meter.buckets["boundary-copies"]
    # big payload through seal path
    enclave.ecall("unseal", enclave.ecall("seal_secret"))
    after_big = enclave.meter.buckets["boundary-copies"]
    assert after_big - after_small > after_small - small


def test_epc_accounting(platform, image, vendor):
    used_before = platform.epc_used_bytes()
    enclave = platform.load_enclave(image)
    assert platform.epc_used_bytes() == used_before + image.memory_bytes
    enclave.destroy()
    assert platform.epc_used_bytes() == used_before


def test_epc_overflow_charges_paging(attestation_service, vendor):
    big_image = EnclaveImage.build(
        CounterProgram, vendor, memory_bytes=3 * (1 << 20)
    )
    platform = SgxPlatform(
        b"tiny-epc", attestation_service=attestation_service, epc_bytes=1 << 20
    )
    enclave = platform.load_enclave(big_image)
    enclave.ecall("increment")
    assert enclave.meter.buckets.get("epc-paging", 0) > 0


def test_no_paging_within_epc(enclave):
    enclave.ecall("increment")
    assert enclave.meter.buckets.get("epc-paging", 0) == 0


def test_destroyed_enclave_rejects_ecalls(enclave):
    enclave.destroy()
    with pytest.raises(EnclaveError):
        enclave.ecall("increment")


def test_monotonic_counter_via_api(enclave):
    assert enclave.ecall("bump_counter", "rounds") == 1
    assert enclave.ecall("bump_counter", "rounds") == 2
    assert enclave.ecall("bump_counter", "other") == 1


def test_counters_scoped_by_measurement(platform, vendor, image):
    class OtherProgram(EnclaveProgram):
        @ecall
        def bump(self, name):
            return self.api.monotonic_counter(name).increment()

    other_image = EnclaveImage.build(OtherProgram, vendor)
    a = platform.load_enclave(image)
    b = platform.load_enclave(other_image)
    assert a.ecall("bump_counter", "shared-name") == 1
    assert b.ecall("bump", "shared-name") == 1  # independent counter


def test_enclave_rng_deterministic_per_platform_seed(image):
    def load_and_draw(seed):
        platform = SgxPlatform(seed)  # unprovisioned is fine for this test
        enclave = platform.load_enclave(image)
        return enclave._api.rng.generate(16)

    assert load_and_draw(b"same") == load_and_draw(b"same")
    assert load_and_draw(b"same") != load_and_draw(b"different")
