"""Tests for enclave images and measurement."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError, EnclaveError
from repro.sgx import EnclaveImage, EnclaveProgram, VendorKey, ecall
from repro.sgx.measurement import code_identity_of

from tests.sgx.conftest import CounterProgram


class OtherProgram(EnclaveProgram):
    @ecall
    def noop(self):
        return None


def test_measurement_deterministic(vendor):
    a = EnclaveImage.build(CounterProgram, vendor)
    b = EnclaveImage.build(CounterProgram, vendor)
    assert a.mrenclave == b.mrenclave


def test_different_code_different_measurement(vendor):
    a = EnclaveImage.build(CounterProgram, vendor)
    b = EnclaveImage.build(OtherProgram, vendor, name=a.name)
    assert a.mrenclave != b.mrenclave


def test_config_changes_measurement(vendor):
    a = EnclaveImage.build(CounterProgram, vendor, config=b"range=[0,1]")
    b = EnclaveImage.build(CounterProgram, vendor, config=b"range=[0,538]")
    assert a.mrenclave != b.mrenclave


def test_version_changes_measurement(vendor):
    a = EnclaveImage.build(CounterProgram, vendor, version=1)
    b = EnclaveImage.build(CounterProgram, vendor, version=2)
    assert a.mrenclave != b.mrenclave


def test_debug_flag_changes_measurement(vendor):
    a = EnclaveImage.build(CounterProgram, vendor, debug=False)
    b = EnclaveImage.build(CounterProgram, vendor, debug=True)
    assert a.mrenclave != b.mrenclave


def test_mrsigner_tracks_vendor(vendor):
    other_vendor = VendorKey.generate(HmacDrbg(b"other-vendor"))
    a = EnclaveImage.build(CounterProgram, vendor)
    b = EnclaveImage.build(CounterProgram, other_vendor)
    assert a.mrsigner != b.mrsigner
    assert a.mrenclave == b.mrenclave  # same code, same measurement


def test_same_vendor_same_mrsigner(vendor):
    a = EnclaveImage.build(CounterProgram, vendor, version=1)
    b = EnclaveImage.build(CounterProgram, vendor, version=2)
    assert a.mrsigner == b.mrsigner


def test_vendor_signature_verifies(image):
    image.verify_vendor_signature()  # must not raise


def test_forged_vendor_signature_rejected(vendor, image):
    impostor = VendorKey.generate(HmacDrbg(b"impostor"))
    forged = EnclaveImage(
        name=image.name,
        version=image.version,
        code=image.code,
        config=image.config,
        memory_bytes=image.memory_bytes,
        debug=image.debug,
        program_class=image.program_class,
        vendor_public=vendor.public_key,           # claims the real vendor
        vendor_signature=impostor.keypair.sign(b"junk"),
    )
    with pytest.raises(EnclaveError):
        forged.verify_vendor_signature()


def test_invalid_build_parameters(vendor):
    with pytest.raises(ConfigurationError):
        EnclaveImage.build(CounterProgram, vendor, version=0)
    with pytest.raises(ConfigurationError):
        EnclaveImage.build(CounterProgram, vendor, memory_bytes=0)


def test_code_identity_uses_source():
    identity = code_identity_of(CounterProgram)
    assert b"increment" in identity


def test_rebuilt_with_overrides(vendor, image):
    rebuilt = image.rebuilt_with(vendor, version=5)
    assert rebuilt.version == 5
    assert rebuilt.mrenclave != image.mrenclave
    rebuilt.verify_vendor_signature()


def test_rebuilt_identical_matches(vendor, image):
    assert image.rebuilt_with(vendor).mrenclave == image.mrenclave
