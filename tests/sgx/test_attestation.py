"""Tests for reports, quotes, the attestation service, and attacks on them."""

import pytest

from repro.errors import AttestationError
from repro.sgx import AttestationService, QuotePolicy, SgxPlatform
from repro.sgx.attestation import REPORT_DATA_SIZE, report_data_for
from repro.sgx.threats import (
    forge_quote,
    replay_quote_with_new_data,
    tamper_quote_measurement,
)


@pytest.fixture
def quoted(platform, enclave):
    report_data = report_data_for(b"handshake-binding")
    return platform.quote_enclave(enclave, report_data), report_data


def test_genuine_quote_verifies(attestation_service, image, quoted):
    quote, report_data = quoted
    result = attestation_service.verify(
        quote, QuotePolicy(expected_mrenclave=image.mrenclave)
    )
    assert result.mrenclave == image.mrenclave
    assert result.report_data == report_data


def test_report_data_padded_to_64_bytes(platform, enclave):
    quote = platform.quote_enclave(enclave, b"short")
    assert len(quote.report_data) == REPORT_DATA_SIZE
    assert quote.report_data.startswith(b"short")


def test_quote_binds_mrsigner(attestation_service, image, quoted):
    quote, _ = quoted
    result = attestation_service.verify(
        quote, QuotePolicy(expected_mrsigner=image.mrsigner)
    )
    assert result.mrsigner == image.mrsigner


def test_wrong_expected_measurement_rejected(attestation_service, quoted):
    quote, _ = quoted
    with pytest.raises(AttestationError):
        attestation_service.verify(
            quote, QuotePolicy(expected_mrenclave=b"\x00" * 32)
        )


def test_wrong_expected_signer_rejected(attestation_service, quoted):
    quote, _ = quoted
    with pytest.raises(AttestationError):
        attestation_service.verify(quote, QuotePolicy(expected_mrsigner=b"\x11" * 32))


def test_minimum_version_enforced(attestation_service, quoted):
    quote, _ = quoted
    with pytest.raises(AttestationError):
        attestation_service.verify(quote, QuotePolicy(minimum_version=2))


def test_debug_enclave_rejected_by_default(attestation_service, platform, vendor):
    from repro.sgx import EnclaveImage
    from tests.sgx.conftest import CounterProgram

    debug_image = EnclaveImage.build(CounterProgram, vendor, debug=True)
    enclave = platform.load_enclave(debug_image)
    quote = platform.quote_enclave(enclave, b"data")
    with pytest.raises(AttestationError):
        attestation_service.verify(quote)
    # but allowed when the policy opts in
    attestation_service.verify(quote, QuotePolicy(allow_debug=True))


def test_forged_quote_rejected(attestation_service, image):
    quote = forge_quote(image.mrenclave, image.mrsigner, b"data")
    with pytest.raises(AttestationError):
        attestation_service.verify(quote)


def test_tampered_measurement_rejected(attestation_service, quoted):
    quote, _ = quoted
    tampered = tamper_quote_measurement(quote, b"\xaa" * 32)
    with pytest.raises(AttestationError):
        attestation_service.verify(tampered)


def test_replayed_report_data_rejected(attestation_service, quoted):
    quote, _ = quoted
    replayed = replay_quote_with_new_data(quote, b"different binding")
    with pytest.raises(AttestationError):
        attestation_service.verify(replayed)


def test_revoked_platform_rejected(attestation_service, platform, quoted):
    quote, _ = quoted
    attestation_service.revoke_platform(platform.platform_id)
    with pytest.raises(AttestationError):
        attestation_service.verify(quote)


def test_unprovisioned_platform_rejected(attestation_service, image):
    rogue = SgxPlatform(b"rogue-machine")  # no attestation service
    enclave = rogue.load_enclave(image)
    quote = rogue.quote_enclave(enclave, b"data")
    with pytest.raises(AttestationError):
        attestation_service.verify(quote)


def test_double_provisioning_rejected(attestation_service):
    with pytest.raises(AttestationError):
        SgxPlatform(b"dup", attestation_service=attestation_service)
        # same seed -> same platform_id -> second provision fails
        SgxPlatform(b"dup", attestation_service=attestation_service)


def test_cross_platform_report_rejected(attestation_service, image):
    service2 = AttestationService(seed=b"other-ias")
    platform_a = SgxPlatform(b"machine-a", attestation_service=attestation_service)
    platform_b = SgxPlatform(b"machine-b", attestation_service=service2)
    enclave_a = platform_a.load_enclave(image)
    report = enclave_a.create_report(b"data")
    with pytest.raises(AttestationError):
        platform_b.quoting_enclave.quote(report)


def test_report_mac_tamper_rejected(platform, enclave):
    report = enclave.create_report(b"data")
    from repro.sgx.attestation import Report

    tampered = Report(
        mrenclave=b"\x00" * 32,
        mrsigner=report.mrsigner,
        version=report.version,
        debug=report.debug,
        report_data=report.report_data,
        platform_id=report.platform_id,
        mac=report.mac,
    )
    with pytest.raises(AttestationError):
        platform.quoting_enclave.quote(tampered)


def test_report_data_for_deterministic():
    assert report_data_for(b"x") == report_data_for(b"x")
    assert report_data_for(b"x") != report_data_for(b"y")
    assert len(report_data_for(b"payload")) == REPORT_DATA_SIZE
