"""Incremental attestation sessions: caching, tickets, forced re-attestation.

Covers the :class:`repro.sgx.sessions.SessionBroker` contract the fleet
harness leans on — and the edge cases that would quietly break trust if
mishandled: an expired policy epoch, a measurement the policy no longer
accepts (firmware skew), and a stale quote replayed after a policy bump
trying to poison the verification cache.
"""

from dataclasses import replace

import pytest

from repro.errors import AttestationError
from repro.sgx import QuotePolicy, SessionBroker
from repro.sgx.attestation import report_data_for
from repro.sgx.threats import tamper_quote_measurement


@pytest.fixture
def quote(platform, enclave):
    return platform.quote_enclave(enclave, report_data_for(b"session-binding"))


@pytest.fixture
def broker(attestation_service, image):
    return SessionBroker(
        attestation_service, QuotePolicy(expected_mrenclave=image.mrenclave)
    )


# ----------------------------------------------------------------- caching


def test_identical_reverification_hits_cache(broker, quote):
    first = broker.verify(quote)
    second = broker.verify(quote)
    assert first == second
    assert broker.full_verifications == 1
    assert broker.cache_hits == 1


def test_different_quote_body_pays_full_verification(
    broker, platform, enclave, quote
):
    broker.verify(quote)
    fresh = platform.quote_enclave(enclave, report_data_for(b"new-handshake"))
    broker.verify(fresh)
    assert broker.full_verifications == 2
    assert broker.cache_hits == 0


def test_cached_verification_does_not_outlive_revocation(
    broker, attestation_service, platform, quote
):
    broker.verify(quote)
    attestation_service.revoke_platform(platform.platform_id)
    with pytest.raises(AttestationError):
        broker.verify(quote)
    assert broker.cache_hits == 0


def test_stale_quote_after_policy_bump_cannot_poison_cache(broker, quote):
    """A quote cached under epoch N must not be honored from cache at N+1.

    The cache key includes the policy epoch, so the replayed quote pays a
    full re-verification under the *new* policy — the attack surface of a
    stale-but-cached verdict simply does not exist.
    """
    broker.verify(quote)
    broker.bump_policy_epoch()
    broker.verify(quote)
    assert broker.full_verifications == 2
    assert broker.cache_hits == 0


# ----------------------------------------------------------------- sessions


def test_establish_then_resume_skips_full_verification(broker, quote):
    result, ticket = broker.establish(quote)
    resumed = broker.resume(ticket)
    assert resumed == result
    assert broker.full_verifications == 1
    assert broker.resumed == 1
    key = broker.resume_key(ticket)
    assert len(key) == 32
    assert broker.resume_key(ticket) == key  # both ends derive the same key


def test_expired_policy_epoch_rejects_resumption(broker, quote):
    _, ticket = broker.establish(quote)
    broker.bump_policy_epoch()
    with pytest.raises(AttestationError, match="epoch"):
        broker.resume(ticket)
    assert broker.resume_rejected == 1
    # The fallback path — full re-attestation — works and mints a ticket
    # valid under the new epoch.
    _, fresh = broker.establish(quote)
    assert broker.resume(fresh)
    assert broker.full_verifications == 2


def test_mrenclave_mismatch_after_firmware_skew_rejects_ticket(broker, quote):
    """A ticket minted for a measurement the policy stops trusting dies.

    Firmware skew ships a different enclave build: the verifier publishes
    a new expected MRENCLAVE without necessarily bumping the epoch, and
    tickets naming the old hash must fail resumption immediately.
    """
    _, ticket = broker.establish(quote)
    broker.policy = replace(broker.policy, expected_mrenclave=b"\x42" * 32)
    with pytest.raises(AttestationError, match="measurement"):
        broker.resume(ticket)
    assert broker.resume_rejected == 1


def test_skewed_firmware_quote_fails_establishment(broker, quote):
    tampered = tamper_quote_measurement(quote, b"\x42" * 32)
    with pytest.raises(AttestationError):
        broker.establish(tampered)


def test_forged_ticket_mac_rejected(broker, quote):
    _, ticket = broker.establish(quote)
    forged = replace(ticket, policy_epoch=ticket.policy_epoch + 1)
    with pytest.raises(AttestationError, match="MAC"):
        broker.resume(forged)
    assert broker.resume_rejected == 1


def test_revocation_kills_outstanding_tickets(
    broker, attestation_service, platform, quote
):
    _, ticket = broker.establish(quote)
    attestation_service.revoke_platform(platform.platform_id)
    with pytest.raises(AttestationError, match="revoked"):
        broker.resume(ticket)


def test_unknown_broker_ticket_rejected(attestation_service, image, quote):
    minter = SessionBroker(
        attestation_service,
        QuotePolicy(expected_mrenclave=image.mrenclave),
        seed=b"broker-one",
    )
    other = SessionBroker(
        attestation_service,
        QuotePolicy(expected_mrenclave=image.mrenclave),
        seed=b"broker-two",
    )
    _, ticket = minter.establish(quote)
    with pytest.raises(AttestationError):
        other.resume(ticket)
