"""Same-seed determinism: the parallel pipeline is a pure topology choice.

A deployment built from one seed must produce byte-identical rounds no
matter how many worker processes or aggregation shards it is split
across.  The sweep compares each (workers, shards) point against a
single serial baseline on the raw material — per-slot mask openings,
the blinded ring vectors that were actually accepted, the commitment
Merkle root, and the decoded aggregate — not just on summary numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import Deployment
from repro.scale import ScaleConfig

SEED = b"scale-determinism"
NUM_USERS = 6


def _run_round(workers, shards, round_id=1):
    parallelism = (
        ScaleConfig(workers=workers, shards=shards, chunk_size=2) if workers else None
    )
    deployment = Deployment.build(
        num_users=NUM_USERS, seed=SEED, parallelism=parallelism
    )
    users = [u.user_id for u in deployment.corpus.users]
    vectors = deployment.local_vectors()
    with deployment.engine as engine:
        report = engine.run_round(
            round_id, users, vectors, deployment.features.bigrams
        )
    return deployment, report


def _fingerprint(deployment, report, round_id=1):
    provisioner = deployment.engine.blinder_provisioner
    commitments = provisioner.round_commitments(round_id)
    return {
        "aggregate": report.aggregate.tobytes(),
        "blinded": [c.ring_payload for c in report.service_result.accepted],
        "nonces": [c.nonce for c in report.service_result.accepted],
        "root": commitments.root(),
        "hash_commitments": commitments.hash_commitments,
        "masks": [
            provisioner.mask_opening(round_id, slot).mask
            for slot in range(len(report.participants))
        ],
        "outcomes": report.outcomes,
        "ecalls": report.ecalls,
    }


@pytest.fixture(scope="module")
def serial_fingerprint():
    deployment, report = _run_round(workers=0, shards=1)
    return _fingerprint(deployment, report)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("shards", [1, 3, 8])
def test_parallel_round_is_byte_identical_to_serial(
    workers, shards, serial_fingerprint
):
    deployment, report = _run_round(workers=workers, shards=shards)
    assert _fingerprint(deployment, report) == serial_fingerprint


def test_parallel_is_self_deterministic_across_repeat_builds():
    first = _fingerprint(*_run_round(workers=2, shards=3))
    second = _fingerprint(*_run_round(workers=2, shards=3))
    assert first == second


def test_multi_round_drbg_state_stays_in_lockstep():
    """Round 2 draws from DRBG state advanced by round 1 on both paths."""

    def two_rounds(workers, shards):
        parallelism = (
            ScaleConfig(workers=workers, shards=shards, chunk_size=3)
            if workers
            else None
        )
        deployment = Deployment.build(
            num_users=NUM_USERS, seed=SEED, parallelism=parallelism
        )
        users = [u.user_id for u in deployment.corpus.users]
        vectors = deployment.local_vectors()
        with deployment.engine as engine:
            reports = [
                engine.run_round(
                    round_id, users, vectors, deployment.features.bigrams
                )
                for round_id in (1, 2)
            ]
        return [
            _fingerprint(deployment, report, round_id)
            for round_id, report in zip((1, 2), reports)
        ]

    serial = two_rounds(workers=0, shards=1)
    parallel = two_rounds(workers=2, shards=3)
    assert parallel == serial


def test_serial_fallback_when_parallelism_disabled():
    """workers=0 in the config means the serial path, not an error."""
    deployment = Deployment.build(
        num_users=4, seed=SEED, parallelism=ScaleConfig(workers=0)
    )
    users = [u.user_id for u in deployment.corpus.users]
    vectors = deployment.local_vectors()
    report = deployment.engine.run_round(
        1, users, vectors, deployment.features.bigrams
    )
    assert report.aggregate is not None
    twin = Deployment.build(num_users=4, seed=SEED)
    twin_report = twin.engine.run_round(
        1, users, twin.local_vectors(), twin.features.bigrams
    )
    assert np.array_equal(report.aggregate, twin_report.aggregate)
    assert report.messages_sent == twin_report.messages_sent
