"""Unit coverage for the hierarchical-aggregation building blocks.

The parity suite (``test_subgroup_parity.py``) proves the end-to-end
equivalence; these tests pin the component contracts — plan determinism
and partitioning, grouped-mask family independence and cache bounds,
fold-on-arrival exactness against the flat matrix sum, and the chunked
``ring_accumulate`` kernel that replaced full-matrix materialization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.masking import GroupedSumZeroMasks, SumZeroMasks
from repro.errors import ConfigurationError
from repro.perf import kernels
from repro.scale.streaming import StreamingSubgroupAccumulator
from repro.scale.subgroup import plan_subgroups


# ----------------------------------------------------------------- planner


def test_plan_is_deterministic_and_partitions_all_slots():
    plan = plan_subgroups(9, 100, 7)
    again = plan_subgroups(9, 100, 7)
    assert np.array_equal(plan.order, again.order)
    seen: set[int] = set()
    for group in range(plan.num_groups):
        slots = plan.slots_in(group)
        assert 1 <= len(slots) <= 7
        for local, slot in enumerate(slots):
            assert plan.group_of(slot) == group
            assert plan.local_index(slot) == local
        seen.update(slots)
    assert seen == set(range(100))


def test_plan_rotates_with_round_id():
    first = plan_subgroups(1, 64, 8)
    second = plan_subgroups(2, 64, 8)
    assert not np.array_equal(first.order, second.order)


def test_plan_clamps_group_size_and_validates():
    plan = plan_subgroups(1, 5, 100)
    assert plan.group_size == 5
    assert plan.num_groups == 1
    with pytest.raises(ConfigurationError):
        plan_subgroups(1, 0, 4)
    with pytest.raises(ConfigurationError):
        plan_subgroups(1, 4, 0)
    with pytest.raises(ConfigurationError):
        plan_subgroups(1, 4, 2).group_of(4)
    with pytest.raises(ConfigurationError):
        plan_subgroups(1, 4, 2).slots_in(2)


# ------------------------------------------------------------ grouped masks


def test_grouped_masks_sum_to_zero_per_group_and_globally():
    plan = plan_subgroups(3, 20, 6)
    masks = GroupedSumZeroMasks.sample(plan, 16, HmacDrbg(b"grouped"))
    assert masks.verify_sum_zero()
    total = np.zeros(16, dtype=np.uint64)
    for slot in range(20):
        total += np.asarray(masks.mask_for(slot), dtype=np.uint64)
    assert not total.any()
    for group in range(plan.num_groups):
        family = masks.group_family(group)
        assert family.verify_sum_zero()
        assert len(family.masks) == len(plan.slots_in(group))


def test_grouped_masks_cache_stays_bounded():
    plan = plan_subgroups(5, 64, 4)  # 16 groups, cache holds 4
    masks = GroupedSumZeroMasks.sample(plan, 8, HmacDrbg(b"cache"))
    for group in range(plan.num_groups):
        masks.group_family(group)
        assert len(masks._cache) <= GroupedSumZeroMasks.CACHE_GROUPS
    # Re-expansion is deterministic: evicted families come back identical.
    assert masks.group_family(0).masks == masks.group_family(0).masks
    evicted = masks.group_family(0).masks
    for group in range(plan.num_groups):
        masks.group_family(group)
    assert masks.group_family(0).masks == evicted


def test_grouped_masks_rows_match_slot_order():
    plan = plan_subgroups(7, 15, 4)
    masks = GroupedSumZeroMasks.sample(plan, 8, HmacDrbg(b"rows"))
    rows = masks.masks
    assert len(rows) == 15
    for slot in range(15):
        assert rows[slot] == masks.mask_for(slot)


def test_grouped_masks_requires_one_seed_per_group():
    plan = plan_subgroups(1, 10, 3)
    with pytest.raises(ConfigurationError):
        GroupedSumZeroMasks(plan, (b"x" * 32,), 8, 64)


# ------------------------------------------------------------- accumulator


def test_fold_matches_flat_matrix_sum():
    plan = plan_subgroups(11, 24, 5)
    rng = HmacDrbg(b"fold")
    rows = [rng.uint64_vector(12) for _ in range(24)]
    accumulator = StreamingSubgroupAccumulator(plan)
    for slot, row in enumerate(rows):
        accumulator.fold(row, slot=slot)
    assert accumulator.folded == 24
    assert np.array_equal(accumulator.total(), kernels.ring_sum_rows(np.stack(rows)))
    # Per-group partials are the group-local sums.
    for group in range(plan.num_groups):
        expected = kernels.ring_sum_rows(
            np.stack([rows[slot] for slot in plan.slots_in(group)])
        )
        assert np.array_equal(accumulator.partial(group), expected)


def test_fold_repair_and_masks_telescope():
    plan = plan_subgroups(13, 10, 4)
    masks = GroupedSumZeroMasks.sample(plan, 6, HmacDrbg(b"repair"))
    rng = HmacDrbg(b"repair-data")
    rows = [rng.uint64_vector(6) for _ in range(10)]
    dropped = {3, 7}
    accumulator = StreamingSubgroupAccumulator(plan)
    for slot, row in enumerate(rows):
        mask = np.asarray(masks.mask_for(slot), dtype=np.uint64)
        if slot in dropped:
            accumulator.fold_repair(mask, slot=slot)
        else:
            accumulator.fold(row + mask, slot=slot)
    expected = kernels.ring_sum_rows(
        np.stack([row for slot, row in enumerate(rows) if slot not in dropped])
    )
    assert np.array_equal(accumulator.total(), expected)
    assert accumulator.repairs_folded == 2


def test_fold_validates_shape_and_emptiness():
    plan = plan_subgroups(1, 4, 2)
    accumulator = StreamingSubgroupAccumulator(plan)
    with pytest.raises(ConfigurationError):
        accumulator.total()
    accumulator.fold(np.ones(3, dtype=np.uint64), slot=0)
    with pytest.raises(ConfigurationError):
        accumulator.fold(np.ones(5, dtype=np.uint64), slot=1)


# ---------------------------------------------------------- ring_accumulate


@pytest.mark.parametrize("chunk_rows", [1, 3, 1024])
def test_ring_accumulate_matches_full_matrix(chunk_rows):
    rng = HmacDrbg(b"accumulate")
    rows = [rng.uint64_vector(9) for _ in range(7)]
    chunked = kernels.ring_accumulate(rows, chunk_rows=chunk_rows)
    assert np.array_equal(chunked, kernels.ring_sum_rows(np.stack(rows)))


def test_ring_accumulate_narrow_ring_and_errors():
    rows = [[5, 6], [7, 9]]
    assert kernels.ring_accumulate(rows, modulus_bits=3).tolist() == [4, 7]
    with pytest.raises(ValueError):
        kernels.ring_accumulate([], chunk_rows=4)
    with pytest.raises(ValueError):
        kernels.ring_accumulate(rows, chunk_rows=0)
