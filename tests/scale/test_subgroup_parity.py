"""Flat-vs-hierarchical parity: subgroup aggregation must be bit-exact.

Per-subgroup sum-zero families each telescope to zero, and the ring sum
is associative, so for *any* subgroup size the hierarchical aggregate
must equal the flat one word for word — `np.array_equal`, no tolerance.
What the streaming path legitimately gives up is per-row hindsight: a
streamed round's service result carries no replayable accepted payloads,
so the payload-level assertions of ``tests/scale/test_parity.py`` are
replaced by aggregate/outcome/telemetry equality here.

Fallback tests assert *full* report equality — a round the hierarchy
gate rejects must run the flat serial path itself, not a lookalike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import Deployment
from repro.scale import ScaleConfig, plan_subgroups

_SEED = b"subgroup-parity"


def _build(subgroup_size=0, num_users=12, seed=_SEED, **kwargs):
    parallelism = (
        ScaleConfig(subgroup_size=subgroup_size) if subgroup_size else None
    )
    return Deployment.build(
        num_users=num_users, seed=seed, parallelism=parallelism, **kwargs
    )


def _run(deployment, round_id=1, **round_kwargs):
    users = [u.user_id for u in deployment.corpus.users]
    vectors = deployment.local_vectors()
    with deployment.engine as engine:
        return engine.run_round(
            round_id, users, vectors, deployment.features.bigrams, **round_kwargs
        )


def _assert_bit_exact(flat, hierarchical):
    assert np.array_equal(flat.aggregate, hierarchical.aggregate)
    assert flat.outcomes == hierarchical.outcomes
    assert flat.ecalls == hierarchical.ecalls
    # Cycle meters match bucket for bucket except boundary copies: the
    # hierarchical open carries the subgroup size through the enclave
    # boundary and the grouped families draw different (equally valid)
    # mask words whose serialized size differs.  Every compute bucket
    # (attestation, masking, aggregation, ...) must be identical.
    flat_cycles = dict(flat.enclave_cycles)
    hier_cycles = dict(hierarchical.enclave_cycles)
    flat_cycles.pop("boundary-copies", None)
    hier_cycles.pop("boundary-copies", None)
    assert flat_cycles == hier_cycles
    assert flat.masks_repaired == hierarchical.masks_repaired
    assert flat.num_contributions == hierarchical.num_contributions
    assert flat.rejected == hierarchical.rejected
    assert flat.quarantined == hierarchical.quarantined
    assert flat.violations == hierarchical.violations


def _assert_identical_reports(flat, hierarchical):
    """Fallback parity: the whole report, transport telemetry included."""
    _assert_bit_exact(flat, hierarchical)
    assert flat.enclave_cycles == hierarchical.enclave_cycles
    assert flat.messages_sent == hierarchical.messages_sent
    assert flat.bytes_on_wire == hierarchical.bytes_on_wire
    assert flat.latency_ms == hierarchical.latency_ms
    assert flat.retries == hierarchical.retries
    assert flat.phases == hierarchical.phases
    assert hierarchical.subgroup_size == 0
    assert hierarchical.subgroups_aggregated == 0
    assert hierarchical.submissions_streamed == 0


@pytest.mark.parametrize("subgroup_size", [1, 7, 12, 64])
def test_honest_round_parity(subgroup_size):
    flat = _run(_build())
    hierarchical = _run(_build(subgroup_size=subgroup_size))
    _assert_bit_exact(flat, hierarchical)
    # The hierarchical path actually engaged and streamed every payload.
    clamped = min(subgroup_size, 12)
    assert hierarchical.subgroup_size == clamped
    assert hierarchical.subgroups_aggregated == -(-12 // clamped)
    assert hierarchical.submissions_streamed == 12
    assert flat.subgroup_size == 0
    assert flat.submissions_streamed == 0


def _dropout_users(pattern, users, subgroup_size, round_id=1):
    """Deterministic dropout sets that stress subgroup structure."""
    plan = plan_subgroups(round_id, len(users), subgroup_size)
    if pattern == "whole_subgroup":
        # Every slot of one subgroup: its folded repairs telescope to the
        # group's full mask sum, i.e. exactly zero.
        return tuple(users[slot] for slot in plan.slots_in(0))
    if pattern == "boundary":
        # Last slot of one group and first of the next: repairs land in
        # two different families.
        slots = [plan.slots_in(0)[-1]]
        if plan.num_groups > 1:
            slots.append(plan.slots_in(1)[0])
        return tuple(users[slot] for slot in slots)
    if pattern == "scattered":
        return tuple(users[::3])
    raise AssertionError(pattern)


@pytest.mark.parametrize(
    ("subgroup_size", "pattern"),
    [
        (1, "scattered"),  # size-1 groups: every repair is a zero mask
        (5, "whole_subgroup"),  # one group drops out entirely
        (7, "boundary"),  # uneven split (7 + 5), repairs straddle it
        (12, "scattered"),  # g == n: single group, the flat mask graph
    ],
)
def test_dropout_parity(subgroup_size, pattern):
    users = [u.user_id for u in _build().corpus.users]
    dropped = _dropout_users(pattern, users, subgroup_size)
    kwargs = dict(collect_dropouts=dropped)
    flat = _run(_build(), **kwargs)
    hierarchical = _run(_build(subgroup_size=subgroup_size), **kwargs)
    _assert_bit_exact(flat, hierarchical)
    assert hierarchical.masks_repaired == len(dropped)
    plan = plan_subgroups(1, len(users), subgroup_size)
    touched = {plan.group_of(users.index(u)) for u in dropped}
    assert hierarchical.subgroup_dropout_repairs == len(touched)


@pytest.mark.parametrize("subgroup_size", [1, 7])
def test_provision_dropout_parity(subgroup_size):
    users = [u.user_id for u in _build().corpus.users]
    kwargs = dict(dropouts=(users[2],), collect_dropouts=(users[5], users[9]))
    flat = _run(_build(), **kwargs)
    hierarchical = _run(_build(subgroup_size=subgroup_size), **kwargs)
    _assert_bit_exact(flat, hierarchical)
    assert hierarchical.masks_repaired == 3


def test_streamed_round_releases_payloads():
    """The service keeps no replayable accepted set for a streamed round."""
    hierarchical = _run(_build(subgroup_size=4))
    assert hierarchical.submissions_streamed == 12
    assert tuple(hierarchical.service_result.accepted) == ()
    # The aggregate still decodes: streaming lost the rows, not the sum.
    assert hierarchical.aggregate is not None
    assert hierarchical.num_contributions == 12


def test_byzantine_round_falls_back_to_flat():
    """A malicious client disqualifies the round; blame is identical."""

    def build_with_attacker(subgroup_size=0):
        parallelism = (
            ScaleConfig(subgroup_size=subgroup_size) if subgroup_size else None
        )
        deployment = Deployment.build(
            num_users=8,
            seed=_SEED,
            parallelism=parallelism,
            provision_clients=False,
        )
        attacker = deployment.corpus.users[2].user_id
        for user in deployment.corpus.users:
            deployment.make_client(
                user.user_id, malicious=user.user_id == attacker
            )
        return deployment

    flat = _run(build_with_attacker())
    hierarchical = _run(build_with_attacker(subgroup_size=4))
    _assert_identical_reports(flat, hierarchical)


def test_quarantined_participant_falls_back_identically():
    """Quarantine history (possible eviction) routes the round flat."""
    from repro.runtime.messages import client_endpoint
    from repro.runtime.protocol import VIOLATION_FLOODING

    def run_with_quarantine(deployment):
        target = deployment.corpus.users[3].user_id
        deployment.engine.monitor.record(
            0, client_endpoint(target), VIOLATION_FLOODING, "test"
        )
        for violation in deployment.engine.monitor.violations_for(0):
            deployment.engine.quarantine.block(violation)
        return _run(deployment)

    flat = run_with_quarantine(_build(num_users=8))
    hierarchical = run_with_quarantine(_build(subgroup_size=4, num_users=8))
    # Quarantine trims participants before the gate, and the survivors
    # are stock clients — the hierarchical path may lawfully engage; the
    # aggregate and the quarantine verdicts must be identical either way.
    _assert_bit_exact(flat, hierarchical)
    quarantined_user = flat.participants[3]
    assert flat.outcomes[quarantined_user] == "quarantined"
    assert (
        hierarchical.outcomes[quarantined_user] == flat.outcomes[quarantined_user]
    )


def test_deadline_round_falls_back_to_flat():
    """Deadline enforcement may evict; the gate must route the round flat."""
    flat = _run(_build(num_users=8), deadline_ms=10_000.0)
    hierarchical = _run(
        _build(subgroup_size=4, num_users=8), deadline_ms=10_000.0
    )
    _assert_identical_reports(flat, hierarchical)


def test_plaintext_round_falls_back_to_flat():
    flat = _run(_build(num_users=8), blind=False)
    hierarchical = _run(_build(subgroup_size=4, num_users=8), blind=False)
    _assert_identical_reports(flat, hierarchical)
