"""Unit coverage for the scale layer's deterministic building blocks.

Sharding must be a pure topology choice: every partial-then-merge
reducer here is checked bit-for-bit against its flat serial twin, the
hash partition against stability and coverage, and the config/admission
plumbing against its documented refusals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.perf import kernels
from repro.scale import ScaleConfig, ShardedRingReducer, plan_shards, shard_of
from repro.scale.shard import (
    merge_limb_partials,
    merge_point_partials,
    merge_ring_partials,
    partial_limb_column_sums,
    partial_point_products,
    partial_ring_sums,
)


def _matrix(rows: int, length: int, seed: bytes = b"shard-matrix") -> np.ndarray:
    rng = HmacDrbg(seed)
    return np.stack([rng.uint64_vector(length) for _ in range(rows)])


# -------------------------------------------------------------- partitioning


def test_shard_of_is_stable_and_in_range():
    assignments = [shard_of(7, f"user-{i}", 5) for i in range(64)]
    assert assignments == [shard_of(7, f"user-{i}", 5) for i in range(64)]
    assert all(0 <= s < 5 for s in assignments)
    assert len(set(assignments)) > 1  # actually spreads


def test_shard_of_rotates_with_round():
    users = [f"user-{i}" for i in range(64)]
    round_a = [shard_of(1, u, 4) for u in users]
    round_b = [shard_of(2, u, 4) for u in users]
    assert round_a != round_b


def test_shard_of_single_shard_and_invalid():
    assert shard_of(3, "anyone", 1) == 0
    with pytest.raises(ValueError):
        shard_of(3, "anyone", 0)


def test_plan_shards_covers_every_slot_exactly_once():
    users = [f"user-{i}" for i in range(23)]
    plan = plan_shards(11, users, 4)
    assert len(plan) == 4
    flat = sorted(slot for group in plan for slot in group)
    assert flat == list(range(23))
    for group in plan:  # slot order preserved within a shard
        assert list(group) == sorted(group)


def test_plan_shards_allows_more_shards_than_participants():
    plan = plan_shards(1, ["a", "b", "c"], 16)
    assert len(plan) == 16
    assert sorted(s for g in plan for s in g) == [0, 1, 2]
    assert sum(1 for g in plan if not g) >= 13  # most shards are empty


# ----------------------------------------------------------- ring reducers


@pytest.mark.parametrize("num_shards", [1, 3, 8])
@pytest.mark.parametrize("rows", [1, 2, 7, 20])
def test_sharded_ring_reducer_matches_flat_sum(num_shards, rows):
    matrix = _matrix(rows, 33)
    reducer = ShardedRingReducer(num_shards)
    assert np.array_equal(reducer(matrix, 64), kernels.ring_sum_rows(matrix, 64))


def test_sharded_ring_reducer_matches_flat_sum_small_modulus():
    matrix = _matrix(6, 17)
    reducer = ShardedRingReducer(4)
    assert np.array_equal(reducer(matrix, 32), kernels.ring_sum_rows(matrix, 32))


def test_sharded_ring_reducer_rejects_zero_shards():
    with pytest.raises(ValueError):
        ShardedRingReducer(0)


def test_partial_ring_sums_merge_matches_flat_for_any_partition():
    matrix = _matrix(9, 21)
    groups = [(0, 4, 8), (2,), (), (1, 3, 5, 6, 7)]
    partials = partial_ring_sums(matrix, groups, 64)
    assert partials.shape == (4, 21)
    assert np.array_equal(partials[2], np.zeros(21, dtype=kernels.U64))
    merged = merge_ring_partials(partials, 64)
    assert np.array_equal(merged, kernels.ring_sum_rows(matrix, 64))


# ----------------------------------------------------- limb-column partials


def test_limb_column_sums_kernel_matches_manual():
    matrix = _matrix(5, 9)
    sums = kernels.limb_column_sums(matrix, 4, 16)
    assert sums.shape == (4, 9)
    for limb in range(4):
        expected = ((matrix >> np.uint64(16 * limb)) & np.uint64(0xFFFF)).sum(
            axis=0, dtype=np.uint64
        )
        assert np.array_equal(sums[limb], expected)


def test_partial_limb_sums_merge_matches_flat():
    matrix = _matrix(8, 13)
    groups = [(1, 2, 3), (0, 7), (4, 5, 6), ()]
    partials = partial_limb_column_sums(matrix, groups, 4, 16)
    merged = merge_limb_partials(partials)
    assert np.array_equal(merged, kernels.limb_column_sums(matrix, 4, 16))


# ------------------------------------------------------- sum-zero partials


def test_partial_point_products_merge_matches_flat():
    prime = 2_147_483_647
    rng = HmacDrbg(b"points")
    points = [int.from_bytes(rng.generate(8), "big") % prime for _ in range(12)]
    groups = [(0, 3, 6, 9), (1, 4, 7, 10), (2, 5, 8, 11), ()]
    partials = partial_point_products(points, groups, prime)
    merged = merge_point_partials(partials, prime)
    flat = 1
    for point in points:
        flat = (flat * point) % prime
    assert merged == flat


# ------------------------------------------------------------------ config


def test_scale_config_defaults_and_enabled():
    assert not ScaleConfig().enabled
    assert ScaleConfig(workers=2).enabled
    assert ScaleConfig(workers=2).shards == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": -1},
        {"shards": 0},
        {"workers": 1, "chunk_size": 0},
    ],
)
def test_scale_config_rejects_invalid(kwargs):
    with pytest.raises(ConfigurationError):
        ScaleConfig(**kwargs)
