"""Serial-vs-parallel parity: the scale path must be bit-exact.

Every comparison here is zero-tolerance: aggregates compared with
``np.array_equal`` (no tolerance), outcome maps, ecall counts, enclave
cycle meters, rejection ledgers, and the accepted contributions' actual
ring payloads and nonces.  Fallback tests assert *full* report equality
— including transport telemetry — because an ineligible round must take
the serial path itself, not a lookalike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import RoundAbortedError
from repro.experiments.common import Deployment
from repro.faults import FaultInjector, FaultPlan
from repro.scale import ScaleConfig


def _build(workers=0, shards=1, chunk_size=32, num_users=8, seed=b"scale-parity"):
    parallelism = (
        ScaleConfig(workers=workers, shards=shards, chunk_size=chunk_size)
        if workers
        else None
    )
    return Deployment.build(num_users=num_users, seed=seed, parallelism=parallelism)


def _run(deployment, round_id=1, **round_kwargs):
    users = [u.user_id for u in deployment.corpus.users]
    vectors = deployment.local_vectors()
    with deployment.engine as engine:
        return engine.run_round(
            round_id, users, vectors, deployment.features.bigrams, **round_kwargs
        )


def _assert_bit_exact(serial, parallel):
    assert np.array_equal(serial.aggregate, parallel.aggregate)
    assert serial.outcomes == parallel.outcomes
    assert serial.ecalls == parallel.ecalls
    assert serial.enclave_cycles == parallel.enclave_cycles
    assert serial.masks_repaired == parallel.masks_repaired
    assert serial.num_contributions == parallel.num_contributions
    assert serial.rejected == parallel.rejected
    assert serial.quarantined == parallel.quarantined
    assert serial.violations == parallel.violations
    s_accepted = serial.service_result.accepted
    p_accepted = parallel.service_result.accepted
    assert [c.nonce for c in s_accepted] == [c.nonce for c in p_accepted]
    assert [c.ring_payload for c in s_accepted] == [
        c.ring_payload for c in p_accepted
    ]
    assert [c.signature for c in s_accepted] == [c.signature for c in p_accepted]


def _assert_identical_reports(serial, parallel):
    """Fallback parity: the whole report, transport telemetry included."""
    _assert_bit_exact(serial, parallel)
    assert serial.messages_sent == parallel.messages_sent
    assert serial.messages_dropped == parallel.messages_dropped
    assert serial.bytes_on_wire == parallel.bytes_on_wire
    assert serial.latency_ms == parallel.latency_ms
    assert serial.retries == parallel.retries
    assert serial.phases == parallel.phases
    assert serial.faults_injected == parallel.faults_injected


def test_honest_round_parity():
    serial = _run(_build())
    parallel = _run(_build(workers=2, shards=3))
    _assert_bit_exact(serial, parallel)
    # The parallel path actually engaged: client traffic left the bus.
    assert parallel.messages_sent < serial.messages_sent


def test_dropout_parity():
    users = [u.user_id for u in _build().corpus.users]
    kwargs = dict(dropouts=(users[1],), collect_dropouts=(users[4], users[6]))
    serial = _run(_build(), **kwargs)
    parallel = _run(_build(workers=2, shards=3), **kwargs)
    _assert_bit_exact(serial, parallel)
    assert parallel.masks_repaired == 3


@pytest.mark.parametrize(
    ("workers", "shards", "chunk_size"),
    [
        (2, 1, 32),  # every collect-dropout lands in the single shard
        (2, 32, 4),  # far more shards than participants (most shards empty)
        (1, 4, 1),  # one-task chunks: every shard splits into size-1 chunks
        (2, 8, 1),  # both boundaries at once
    ],
)
def test_shard_boundary_dropout_repair(workers, shards, chunk_size):
    users = [u.user_id for u in _build().corpus.users]
    half_out = tuple(users[::2])  # heavy repair load across shard boundaries
    serial = _run(_build(), collect_dropouts=half_out)
    parallel = _run(
        _build(workers=workers, shards=shards, chunk_size=chunk_size),
        collect_dropouts=half_out,
    )
    _assert_bit_exact(serial, parallel)
    assert parallel.masks_repaired == len(half_out)


def test_abort_parity_when_no_survivors():
    users = [u.user_id for u in _build().corpus.users]
    everyone = tuple(users)
    with pytest.raises(RoundAbortedError) as serial_err:
        _run(_build(), collect_dropouts=everyone)
    with pytest.raises(RoundAbortedError) as parallel_err:
        _run(_build(workers=2, shards=3), collect_dropouts=everyone)
    assert str(serial_err.value) == str(parallel_err.value)
    assert (
        serial_err.value.report.abort_reason
        == parallel_err.value.report.abort_reason
    )
    assert serial_err.value.report.outcomes == parallel_err.value.report.outcomes


def test_byzantine_round_falls_back_to_serial():
    """A malicious participant disqualifies the round; reports are identical."""

    def build_with_attacker(workers=0, shards=1):
        parallelism = (
            ScaleConfig(workers=workers, shards=shards) if workers else None
        )
        deployment = Deployment.build(
            num_users=8,
            seed=b"scale-parity",
            parallelism=parallelism,
            provision_clients=False,
        )
        attacker_id = deployment.corpus.users[2].user_id
        for user in deployment.corpus.users:
            deployment.make_client(user.user_id, malicious=user.user_id == attacker_id)
        return deployment

    serial = _run(build_with_attacker())
    parallel = _run(build_with_attacker(workers=2, shards=3))
    _assert_identical_reports(serial, parallel)


def test_chaos_round_falls_back_to_serial():
    """Any fault injector disqualifies the round; reports are identical."""

    def run_with_faults(deployment):
        users = [u.user_id for u in deployment.corpus.users]
        plan = FaultPlan.sample(
            HmacDrbg(b"scale-chaos", personalization="plan"),
            0.1,
            clients=users,
            rounds=(1,),
            label="scale-chaos",
        )
        deployment.enable_faults(FaultInjector(plan, seed=b"scale-chaos"))
        try:
            return _run(deployment, recovery_threshold=0.25)
        except RoundAbortedError as err:
            return err.report

    serial = run_with_faults(_build())
    parallel = run_with_faults(_build(workers=2, shards=3))
    if serial.aggregate is None:
        assert parallel.aggregate is None
        assert serial.abort_reason == parallel.abort_reason
        assert serial.outcomes == parallel.outcomes
    else:
        _assert_identical_reports(serial, parallel)


def test_quarantined_participant_parity():
    """A quarantined offender sits out identically on both paths."""

    def run_with_quarantine(deployment):
        from repro.runtime.messages import client_endpoint
        from repro.runtime.protocol import VIOLATION_FLOODING

        target = deployment.corpus.users[3].user_id
        deployment.engine.monitor.record(0, client_endpoint(target), VIOLATION_FLOODING, "test")
        for violation in deployment.engine.monitor.violations_for(0):
            deployment.engine.quarantine.block(violation)
        return _run(deployment)

    serial = run_with_quarantine(_build())
    parallel = run_with_quarantine(_build(workers=2, shards=2))
    _assert_bit_exact(serial, parallel)
    quarantined_user = serial.participants[3]
    assert serial.outcomes[quarantined_user] == "quarantined"
