"""Tests for geo, botnet, and review workload generators."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.workloads.botnet import BotnetWorkload, DetectorWeights
from repro.workloads.geo import GeoWorkload, distance
from repro.workloads.reviews import ReviewWorkload


def rng():
    return HmacDrbg(b"workload-tests-2")


# ----------------------------------------------------------------------- geo

def test_geo_shape():
    workload = GeoWorkload.generate(5, rng(), photos_per_user=3)
    assert len(workload.contexts) == 5
    assert len(workload.submissions) == 15


def test_geo_honest_photos_near_track():
    workload = GeoWorkload.generate(6, rng())
    for photo in workload.submissions:
        if photo.is_spoofed:
            continue
        context = workload.contexts[photo.user_id]
        fix = context.position_at(photo.taken_at_ms)
        assert distance(fix.x, fix.y, photo.claimed_x, photo.claimed_y) < 20.0


def test_geo_spoofed_photos_inconsistent():
    workload = GeoWorkload.generate(8, rng(), spoof_fraction=0.5)
    spoofed = [p for p in workload.submissions if p.is_spoofed]
    assert spoofed
    for photo in spoofed:
        context = workload.contexts[photo.user_id]
        fix = context.position_at(photo.taken_at_ms)
        far = distance(fix.x, fix.y, photo.claimed_x, photo.claimed_y) > 100.0
        wrong_camera = photo.camera_fingerprint != context.camera_fingerprint
        assert far or wrong_camera


def test_geo_track_timestamps_monotonic():
    workload = GeoWorkload.generate(3, rng())
    for context in workload.contexts.values():
        times = [p.timestamp_ms for p in context.track]
        assert times == sorted(times)


def test_geo_labels():
    workload = GeoWorkload.generate(4, rng())
    labels = workload.labels()
    assert len(labels) == len(workload.submissions)


def test_geo_validations():
    with pytest.raises(ConfigurationError):
        GeoWorkload.generate(0, rng())
    with pytest.raises(ConfigurationError):
        GeoWorkload.generate(2, rng(), spoof_fraction=1.5)


def test_position_at_nearest():
    workload = GeoWorkload.generate(1, rng())
    context = next(iter(workload.contexts.values()))
    first = context.track[0]
    assert context.position_at(first.timestamp_ms) == first


# -------------------------------------------------------------------- botnet

def test_botnet_shape_and_labels():
    workload = BotnetWorkload.generate(40, rng(), bot_fraction=0.25)
    assert len(workload.sessions) == 40
    assert sum(workload.labels().values()) == 10


def test_botnet_naive_bots_detectable():
    workload = BotnetWorkload.generate(100, rng(), bot_sophistication=0.0)
    assert DetectorWeights().accuracy(workload) >= 0.95


def test_botnet_sophistication_degrades_detection():
    naive = BotnetWorkload.generate(100, rng().fork("a"), bot_sophistication=0.0)
    sophisticated = BotnetWorkload.generate(
        100, rng().fork("b"), bot_sophistication=0.95
    )
    detector = DetectorWeights()
    assert detector.accuracy(sophisticated) < detector.accuracy(naive)


def test_botnet_sessions_carry_private_context():
    workload = BotnetWorkload.generate(5, rng())
    for session in workload.sessions:
        assert session.browsing_history
        assert session.cookie_ids
        assert session.interest_profile


def test_botnet_feature_vector_length_matches_detector():
    workload = BotnetWorkload.generate(2, rng())
    detector = DetectorWeights()
    assert len(workload.sessions[0].feature_vector()) == len(detector.weights)


def test_botnet_validations():
    with pytest.raises(ConfigurationError):
        BotnetWorkload.generate(0, rng())
    with pytest.raises(ConfigurationError):
        BotnetWorkload.generate(5, rng(), bot_fraction=2.0)
    with pytest.raises(ConfigurationError):
        BotnetWorkload.generate(5, rng(), bot_sophistication=-0.5)


def test_detector_accuracy_empty_rejected():
    with pytest.raises(ConfigurationError):
        DetectorWeights().accuracy(BotnetWorkload(sessions=[]))


# ------------------------------------------------------------------- reviews

def test_reviews_shape():
    workload = ReviewWorkload.generate(5, rng(), reviews_per_user=4)
    assert len(workload.contexts) == 5
    assert len(workload.reviews) == 20


def test_honest_reviews_have_prior_purchase():
    workload = ReviewWorkload.generate(10, rng())
    for review in workload.reviews:
        context = workload.contexts[review.user_id]
        if not review.is_spurious:
            purchase_time = context.purchase_time(review.product_id)
            assert purchase_time is not None
            assert review.posted_at_ms >= purchase_time


def test_spurious_reviews_lack_purchase():
    workload = ReviewWorkload.generate(10, rng(), spurious_fraction=0.5)
    spurious = [r for r in workload.reviews if r.is_spurious]
    assert spurious
    for review in spurious:
        assert not workload.contexts[review.user_id].purchased(review.product_id)


def test_ratings_in_range():
    workload = ReviewWorkload.generate(10, rng())
    assert all(1 <= r.rating <= 5 for r in workload.reviews)


def test_reviews_validations():
    with pytest.raises(ConfigurationError):
        ReviewWorkload.generate(0, rng())
    with pytest.raises(ConfigurationError):
        ReviewWorkload.generate(2, rng(), spurious_fraction=-0.1)
