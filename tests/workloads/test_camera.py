"""Tests for the in-home camera workload and the silhouette predicate."""

import pytest

from repro.core.predicates import SilhouetteCorroborationPredicate
from repro.core.validation import PrivateContext, default_registry
from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.workloads.camera import (
    ACTIVITY_ACTIVE,
    ACTIVITY_IDLE,
    MOTION_BINS,
    CameraWorkload,
    motion_histogram,
)


def rng():
    return HmacDrbg(b"camera-tests")


def test_workload_shape():
    workload = CameraWorkload.generate(6, rng(), frames_per_stream=50)
    assert len(workload.streams) == 6
    assert len(workload.contributions) == 6
    assert all(len(s.frames) == 50 for s in workload.streams.values())


def test_activity_split():
    workload = CameraWorkload.generate(10, rng(), active_fraction=0.3)
    active = [s for s in workload.streams.values() if s.activity == ACTIVITY_ACTIVE]
    assert len(active) == 3


def test_histogram_is_probability_vector():
    workload = CameraWorkload.generate(4, rng())
    for stream in workload.streams.values():
        histogram = motion_histogram(stream.frames)
        assert len(histogram) == MOTION_BINS
        assert sum(histogram) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in histogram)


def test_histogram_short_stream():
    assert motion_histogram([]) == [0.0] * MOTION_BINS


def test_active_homes_move_more():
    workload = CameraWorkload.generate(20, rng(), forged_fraction=0.0)
    def nonzero_motion(stream):
        return sum(motion_histogram(stream.frames)[1:])
    active = [
        nonzero_motion(s) for s in workload.streams.values()
        if s.activity == ACTIVITY_ACTIVE
    ]
    idle = [
        nonzero_motion(s) for s in workload.streams.values()
        if s.activity == ACTIVITY_IDLE
    ]
    assert min(active) > max(idle)


def test_forged_contributions_labeled():
    workload = CameraWorkload.generate(20, rng(), forged_fraction=0.5)
    labels = workload.labels()
    assert any(labels.values())
    assert not all(labels.values())


def test_generate_validations():
    with pytest.raises(ConfigurationError):
        CameraWorkload.generate(0, rng())
    with pytest.raises(ConfigurationError):
        CameraWorkload.generate(2, rng(), active_fraction=1.5)
    with pytest.raises(ConfigurationError):
        CameraWorkload.generate(2, rng(), forged_fraction=-0.1)
    with pytest.raises(ConfigurationError):
        CameraWorkload.generate(2, rng(), frames_per_stream=1)


# --------------------------------------------------------- predicate tests

def test_silhouette_accepts_honest():
    workload = CameraWorkload.generate(6, rng(), forged_fraction=0.0)
    predicate = SilhouetteCorroborationPredicate(0.02)
    for contribution in workload.contributions:
        stream = workload.streams[contribution.user_id]
        outcome = predicate.evaluate(
            list(contribution.values), PrivateContext(video_stream=stream)
        )
        assert outcome.passed, outcome.reason


def test_silhouette_rejects_forged():
    workload = CameraWorkload.generate(12, rng(), forged_fraction=1.0)
    predicate = SilhouetteCorroborationPredicate(0.05)
    for contribution in workload.contributions:
        stream = workload.streams[contribution.user_id]
        outcome = predicate.evaluate(
            list(contribution.values), PrivateContext(video_stream=stream)
        )
        assert not outcome.passed


def test_silhouette_rejects_missing_video():
    predicate = SilhouetteCorroborationPredicate()
    outcome = predicate.evaluate([0.1] * MOTION_BINS, PrivateContext())
    assert not outcome.passed
    assert "unavailable" in outcome.reason


def test_silhouette_rejects_wrong_bin_count():
    workload = CameraWorkload.generate(1, rng(), forged_fraction=0.0)
    stream = next(iter(workload.streams.values()))
    predicate = SilhouetteCorroborationPredicate()
    outcome = predicate.evaluate([0.5], PrivateContext(video_stream=stream))
    assert not outcome.passed


def test_silhouette_cycles_scale_with_frames():
    predicate = SilhouetteCorroborationPredicate()
    short = CameraWorkload.generate(1, rng().fork("s"), frames_per_stream=10)
    long = CameraWorkload.generate(1, rng().fork("l"), frames_per_stream=200)
    short_stream = next(iter(short.streams.values()))
    long_stream = next(iter(long.streams.values()))
    short_cycles = predicate.evaluate(
        motion_histogram(short_stream.frames),
        PrivateContext(video_stream=short_stream),
    ).cycles
    long_cycles = predicate.evaluate(
        motion_histogram(long_stream.frames),
        PrivateContext(video_stream=long_stream),
    ).cycles
    assert long_cycles > short_cycles


def test_silhouette_in_registry():
    predicate = default_registry().build("silhouette:0.1")
    assert predicate.tolerance == 0.1
    assert predicate.required_context() == ("video_stream",)


def test_silhouette_invalid_tolerance():
    with pytest.raises(ConfigurationError):
        SilhouetteCorroborationPredicate(-0.1)
