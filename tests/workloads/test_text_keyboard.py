"""Tests for the keyboard corpus and keystroke trace generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.workloads.keyboard import (
    HUMAN_MEAN_INTERVAL_MS,
    empty_trace,
    robotic_trace_for_sentences,
    trace_for_sentences,
)
from repro.workloads.text import (
    KeyboardCorpus,
    OPPOSE_SENTENCES,
    STANCE_OPPOSE,
    STANCE_SUPPORT,
    SUPPORT_SENTENCES,
    stance_evidence,
)


def rng():
    return HmacDrbg(b"workload-tests")


def test_corpus_shape():
    corpus = KeyboardCorpus.generate(10, rng(), sentences_per_user=15)
    assert len(corpus.users) == 10
    assert all(len(corpus.streams[u.user_id]) == 15 for u in corpus.users)


def test_corpus_deterministic_per_seed():
    a = KeyboardCorpus.generate(4, HmacDrbg(b"same"))
    b = KeyboardCorpus.generate(4, HmacDrbg(b"same"))
    assert a.streams == b.streams


def test_corpus_support_fraction():
    corpus = KeyboardCorpus.generate(10, rng(), support_fraction=0.3)
    supporters = [u for u in corpus.users if u.stance == STANCE_SUPPORT]
    assert len(supporters) == 3


def test_every_user_expresses_stance():
    corpus = KeyboardCorpus.generate(20, rng(), stance_rate=0.0)
    stance_pools = {
        STANCE_SUPPORT: {tuple(s) for s in SUPPORT_SENTENCES},
        STANCE_OPPOSE: {tuple(s) for s in OPPOSE_SENTENCES},
    }
    for user in corpus.users:
        stream = corpus.streams[user.user_id]
        assert any(tuple(s) in stance_pools[user.stance] for s in stream)


def test_users_never_type_other_stance():
    corpus = KeyboardCorpus.generate(20, rng())
    oppose_pool = {tuple(s) for s in OPPOSE_SENTENCES}
    support_pool = {tuple(s) for s in SUPPORT_SENTENCES}
    for user in corpus.users:
        stream = {tuple(s) for s in corpus.streams[user.user_id]}
        if user.stance == STANCE_SUPPORT:
            assert not stream & oppose_pool
        else:
            assert not stream & support_pool


def test_corpus_validations():
    with pytest.raises(ConfigurationError):
        KeyboardCorpus.generate(0, rng())
    with pytest.raises(ConfigurationError):
        KeyboardCorpus.generate(2, rng(), stance_rate=1.5)
    with pytest.raises(ConfigurationError):
        KeyboardCorpus.generate(2, rng(), support_fraction=-0.1)
    with pytest.raises(ConfigurationError):
        KeyboardCorpus.generate(2, rng(), sentences_per_user=0)


def test_labels_and_all_sentences():
    corpus = KeyboardCorpus.generate(5, rng(), sentences_per_user=8)
    labels = corpus.labels()
    assert set(labels) == {u.user_id for u in corpus.users}
    assert len(corpus.all_sentences()) == 5 * 8


def test_holdout_fresh_sentences():
    corpus = KeyboardCorpus.generate(3, rng())
    holdout = corpus.holdout(rng().fork("h"), num_sentences=50)
    assert len(holdout) == 50


def test_stance_evidence_markers_exist_in_corpus():
    corpus = KeyboardCorpus.generate(10, rng())
    evidence = stance_evidence()
    bigrams = {
        pair
        for stream in corpus.streams.values()
        for sentence in stream
        for pair in zip(sentence, sentence[1:])
    }
    assert any(marker in bigrams for marker in evidence.positive_markers)
    assert any(marker in bigrams for marker in evidence.negative_markers)


# ----------------------------------------------------------------- keyboard

SENTENCES = [["hello", "world"], ["the", "quick", "brown", "fox"]]


def test_trace_types_exact_text():
    trace = trace_for_sentences(SENTENCES, rng())
    assert trace.typed_sentences() == SENTENCES


def test_robotic_trace_types_exact_text():
    trace = robotic_trace_for_sentences(SENTENCES)
    assert trace.typed_sentences() == SENTENCES


def test_human_trace_has_variance():
    trace = trace_for_sentences(SENTENCES, rng())
    assert trace.timing_variance() > 500.0


def test_robotic_trace_is_flat():
    trace = robotic_trace_for_sentences(SENTENCES)
    assert trace.timing_variance() < 1.0


def test_human_intervals_plausible():
    trace = trace_for_sentences(SENTENCES, rng())
    intervals = trace.inter_key_intervals()
    mean = sum(intervals) / len(intervals)
    assert 0.3 * HUMAN_MEAN_INTERVAL_MS < mean < 8 * HUMAN_MEAN_INTERVAL_MS


def test_timestamps_monotonic():
    trace = trace_for_sentences(SENTENCES, rng())
    times = [e.timestamp_ms for e in trace.events]
    assert times == sorted(times)


def test_empty_trace():
    trace = empty_trace()
    assert trace.events == []
    assert trace.duration_ms() == 0.0
    assert trace.timing_variance() == 0.0
    assert trace.typed_sentences() == []


def test_duration_positive():
    trace = trace_for_sentences(SENTENCES, rng())
    assert trace.duration_ms() > 0


@settings(max_examples=20)
@given(
    st.lists(
        st.lists(
            st.sampled_from(["aa", "bb", "cc"]), min_size=1, max_size=4
        ),
        min_size=1,
        max_size=4,
    )
)
def test_trace_roundtrip_property(sentences):
    trace = trace_for_sentences(sentences, HmacDrbg(b"prop"))
    assert trace.typed_sentences() == sentences
