"""Soak test: a multi-round deployment lifecycle with churn.

One scenario, several rounds, everything at once: clients dropping out and
being repaired, a poisoner probing every round, an enclave restart with
sealed-key restoration mid-deployment, and nonce bookkeeping across rounds.
Each round's aggregate must stay exact over exactly the accepted cohort.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.experiments.common import Deployment


@pytest.fixture(scope="module")
def deployment():
    return Deployment.build(num_users=6, seed=b"soak", sentences_per_user=15)


def run_round(deployment, round_id, participants, dropouts=(), poisoners=()):
    """One round; returns (aggregate, accepted user ids)."""
    features = deployment.features
    vectors = deployment.local_vectors()
    deployment.open_round(round_id, participants)
    accepted = []
    for index, user_id in enumerate(participants):
        if user_id in dropouts:
            continue
        values = list(vectors[user_id])
        if user_id in poisoners:
            values[0] = 538.0
        try:
            signed = deployment.clients[user_id].contribute(
                round_id, values, features.bigrams
            )
        except ValidationError:
            continue
        assert deployment.service.submit(round_id, signed)
        accepted.append(user_id)
    repairs = [
        deployment.blinder_provisioner.reveal_dropout_mask(round_id, index)
        for index, user_id in enumerate(participants)
        if user_id not in accepted
    ]
    result = deployment.service.finalize_blinded_round(round_id, repairs)
    return result.aggregate, accepted


def expected_mean(deployment, accepted):
    vectors = deployment.local_vectors()
    return np.mean(np.stack([vectors[u] for u in accepted]), axis=0)


def test_three_rounds_with_churn(deployment):
    user_ids = [u.user_id for u in deployment.corpus.users]

    # Round 1: everyone participates, one poisoner probes.
    aggregate, accepted = run_round(
        deployment, 1, user_ids, poisoners={user_ids[0]}
    )
    assert user_ids[0] not in accepted
    assert np.allclose(aggregate, expected_mean(deployment, accepted), atol=1e-3)

    # Round 2: two clients drop after mask provisioning.
    aggregate, accepted = run_round(
        deployment, 2, user_ids, dropouts={user_ids[1], user_ids[4]}
    )
    assert len(accepted) == len(user_ids) - 2
    assert np.allclose(aggregate, expected_mean(deployment, accepted), atol=1e-3)

    # Mid-deployment: client 2's enclave restarts and restores its key.
    victim = deployment.clients[user_ids[2]]
    sealed = victim.provision_signing_key(deployment.service_provisioner)
    victim.glimmer.destroy()
    victim.glimmer = victim.platform.load_enclave(
        deployment.image,
        ocall_handlers={"collect_private_data": victim._serve_private_data},
    )
    victim.glimmer.ecall("restore_signing_key", sealed)

    # Round 3: only a subset participates (including the restarted client).
    subset = user_ids[1:5]
    aggregate, accepted = run_round(deployment, 3, subset)
    assert accepted == subset
    assert np.allclose(aggregate, expected_mean(deployment, accepted), atol=1e-3)


def test_rounds_do_not_interfere(deployment):
    """Contributions signed for round 10 cannot enter round 11."""
    user_ids = [u.user_id for u in deployment.corpus.users]
    vectors = deployment.local_vectors()
    deployment.open_round(10, user_ids[:2])
    deployment.open_round(11, user_ids[:2])
    signed = deployment.clients[user_ids[0]].contribute(
        10, list(vectors[user_ids[0]]), deployment.features.bigrams
    )
    assert not deployment.service.submit(11, signed)
    assert deployment.service.submit(10, signed)
