"""Tests for every validation predicate and the registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.predicates import (
    AcceptAllPredicate,
    ChainPredicate,
    ExecutionTracePredicate,
    GeoCorroborationPredicate,
    KeystrokeCorroborationPredicate,
    NormBoundPredicate,
    PurchaseCorroborationPredicate,
    RangeCheckPredicate,
    RateLimitPredicate,
    trace_commitment,
)
from repro.core.validation import PrivateContext, default_registry
from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError
from repro.sgx.counters import MonotonicCounter
from repro.workloads.geo import GeoWorkload
from repro.workloads.keyboard import (
    empty_trace,
    robotic_trace_for_sentences,
    trace_for_sentences,
)
from repro.workloads.reviews import ReviewWorkload

FEATURES = (("donald", "trump"), ("voting", "for"), ("don't", "like"))


def ctx(**kwargs):
    extra = kwargs.pop("extra", {})
    extra.setdefault("features", FEATURES)
    return PrivateContext(extra=extra, **kwargs)


# ------------------------------------------------------------------ accept-all

def test_accept_all_passes_anything():
    outcome = AcceptAllPredicate().evaluate([538.0, -1e9], ctx())
    assert outcome.passed
    assert outcome.confidence == 0.0


# ----------------------------------------------------------------------- range

def test_range_accepts_legal():
    outcome = RangeCheckPredicate(0.0, 1.0).evaluate([0.0, 0.5, 1.0], ctx())
    assert outcome.passed


def test_range_rejects_538():
    outcome = RangeCheckPredicate(0.0, 1.0).evaluate([538.0, 0.5], ctx())
    assert not outcome.passed
    assert "538" in outcome.reason


def test_range_rejects_negative():
    assert not RangeCheckPredicate(0.0, 1.0).evaluate([-0.01], ctx()).passed


def test_range_boundaries_inclusive():
    assert RangeCheckPredicate(0.0, 1.0).evaluate([0.0, 1.0], ctx()).passed


def test_range_invalid_bounds():
    with pytest.raises(ConfigurationError):
        RangeCheckPredicate(1.0, 0.0)


def test_range_cycles_scale_with_length():
    short = RangeCheckPredicate().evaluate([0.5] * 2, ctx())
    long = RangeCheckPredicate().evaluate([0.5] * 200, ctx())
    assert long.cycles > short.cycles


def test_range_empty_vector_passes():
    assert RangeCheckPredicate().evaluate([], ctx()).passed


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=16))
def test_range_property_legal_always_passes(values):
    assert RangeCheckPredicate(0.0, 1.0).evaluate(values, ctx()).passed


@settings(max_examples=50)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), max_size=8),
    st.floats(min_value=1.001, max_value=1e6, allow_nan=False),
)
def test_range_property_any_violation_fails(values, bad):
    assert not RangeCheckPredicate(0.0, 1.0).evaluate(values + [bad], ctx()).passed


# ------------------------------------------------------------------------ norm

def test_norm_accepts_within_bound():
    assert NormBoundPredicate(2.0).evaluate([1.0, 1.0], ctx()).passed


def test_norm_rejects_beyond_bound():
    assert not NormBoundPredicate(1.0).evaluate([1.0, 1.0], ctx()).passed


def test_norm_invalid_bound():
    with pytest.raises(ConfigurationError):
        NormBoundPredicate(0.0)


# ------------------------------------------------------------------------ rate

def test_rate_limit_allows_up_to_max():
    predicate = RateLimitPredicate(max_per_round=2)
    context = ctx(extra={"round_id": 1})
    assert predicate.evaluate([0.5], context).passed
    assert predicate.evaluate([0.5], context).passed
    assert not predicate.evaluate([0.5], context).passed


def test_rate_limit_per_round_isolation():
    predicate = RateLimitPredicate(max_per_round=1)
    assert predicate.evaluate([0.5], ctx(extra={"round_id": 1})).passed
    assert predicate.evaluate([0.5], ctx(extra={"round_id": 2})).passed


def test_rate_limit_uses_monotonic_counter():
    predicate = RateLimitPredicate(max_per_round=1)
    counter = MonotonicCounter(b"m" * 32, "contribs")
    context = ctx(extra={"round_id": 1, "counter": counter})
    assert predicate.evaluate([0.5], context).passed
    # Even a fresh predicate instance (enclave restart) sees the counter.
    restarted = RateLimitPredicate(max_per_round=1)
    context2 = ctx(extra={"round_id": 1, "counter": counter})
    assert not restarted.evaluate([0.5], context2).passed


def test_rate_limit_invalid():
    with pytest.raises(ConfigurationError):
        RateLimitPredicate(0)


# ------------------------------------------------------------------ keystrokes

def make_sentences():
    return [["voting", "for", "donald", "trump"], ["donald", "trump"]]


def weights_for(sentences):
    from repro.core.predicates import _weights_from_sentences

    return _weights_from_sentences(sentences, FEATURES)


def test_keystrokes_accepts_honest():
    sentences = make_sentences()
    trace = trace_for_sentences(sentences, HmacDrbg(b"kp"))
    values = weights_for(sentences)
    outcome = KeystrokeCorroborationPredicate(0.1).evaluate(
        values, ctx(keystroke_trace=trace)
    )
    assert outcome.passed


def test_keystrokes_rejects_missing_trace():
    assert not KeystrokeCorroborationPredicate().evaluate(
        [0.5] * 3, ctx(keystroke_trace=None)
    ).passed


def test_keystrokes_rejects_empty_trace():
    assert not KeystrokeCorroborationPredicate().evaluate(
        [1.0] * 3, ctx(keystroke_trace=empty_trace())
    ).passed


def test_keystrokes_rejects_robotic_timing():
    sentences = make_sentences()
    trace = robotic_trace_for_sentences(sentences)
    values = weights_for(sentences)
    outcome = KeystrokeCorroborationPredicate(0.1).evaluate(
        values, ctx(keystroke_trace=trace)
    )
    assert not outcome.passed
    assert "machine-like" in outcome.reason


def test_keystrokes_rejects_mismatched_weights():
    sentences = make_sentences()
    trace = trace_for_sentences(sentences, HmacDrbg(b"kp"))
    outcome = KeystrokeCorroborationPredicate(0.1).evaluate(
        [1.0, 1.0, 1.0], ctx(keystroke_trace=trace)
    )
    # honest trace has no "don't like", so weight 1.0 there cannot corroborate
    assert not outcome.passed


def test_keystrokes_tolerance_loosens():
    sentences = make_sentences()
    trace = trace_for_sentences(sentences, HmacDrbg(b"kp"))
    values = [min(1.0, w + 0.3) for w in weights_for(sentences)]
    strict = KeystrokeCorroborationPredicate(0.05).evaluate(
        values, ctx(keystroke_trace=trace)
    )
    loose = KeystrokeCorroborationPredicate(0.9).evaluate(
        values, ctx(keystroke_trace=trace)
    )
    assert not strict.passed
    assert loose.passed


# ------------------------------------------------------------------ exec-trace

def test_exec_trace_accepts_honest():
    sentences = make_sentences()
    values = weights_for(sentences)
    claims = {"trace_commitment": trace_commitment(sentences, values)}
    outcome = ExecutionTracePredicate(0.01).evaluate(
        values, ctx(sentences=sentences, extra={"features": FEATURES, **claims})
    )
    assert outcome.passed


def test_exec_trace_rejects_wrong_commitment():
    sentences = make_sentences()
    values = weights_for(sentences)
    outcome = ExecutionTracePredicate(0.01).evaluate(
        values,
        ctx(
            sentences=sentences,
            extra={"features": FEATURES, "trace_commitment": b"bogus"},
        ),
    )
    assert not outcome.passed


def test_exec_trace_rejects_inconsistent_weights():
    sentences = make_sentences()
    honest_values = weights_for(sentences)
    claims = {"trace_commitment": trace_commitment(sentences, honest_values)}
    lied_values = [1.0] * len(FEATURES)
    outcome = ExecutionTracePredicate(0.01).evaluate(
        lied_values, ctx(sentences=sentences, extra={"features": FEATURES, **claims})
    )
    assert not outcome.passed


def test_exec_trace_rejects_missing_context():
    outcome = ExecutionTracePredicate().evaluate([0.5] * 3, ctx(sentences=None))
    assert not outcome.passed


def test_trace_commitment_sensitive_to_inputs():
    sentences = make_sentences()
    values = weights_for(sentences)
    base = trace_commitment(sentences, values)
    assert trace_commitment(sentences, values) == base
    assert trace_commitment(sentences[:1], values) != base
    assert trace_commitment(sentences, [v + 0.001 for v in values]) != base


# ------------------------------------------------------------------------- geo

@pytest.fixture(scope="module")
def geo_workload():
    return GeoWorkload.generate(4, HmacDrbg(b"geo-pred"), photos_per_user=6)


def test_geo_accepts_honest_rejects_spoofed(geo_workload):
    predicate = GeoCorroborationPredicate(radius=25.0)
    for photo in geo_workload.submissions:
        context = ctx(
            geo_context=geo_workload.contexts[photo.user_id],
            extra={"submission": photo},
        )
        outcome = predicate.evaluate([], context)
        assert outcome.passed != photo.is_spoofed, (photo.photo_id, outcome.reason)


def test_geo_rejects_missing_context(geo_workload):
    predicate = GeoCorroborationPredicate()
    photo = geo_workload.submissions[0]
    assert not predicate.evaluate([], ctx(extra={"submission": photo})).passed
    assert not predicate.evaluate(
        [], ctx(geo_context=geo_workload.contexts[photo.user_id])
    ).passed


def test_geo_invalid_radius():
    with pytest.raises(ConfigurationError):
        GeoCorroborationPredicate(radius=0.0)


# -------------------------------------------------------------------- purchase

@pytest.fixture(scope="module")
def review_workload():
    return ReviewWorkload.generate(6, HmacDrbg(b"review-pred"))


def test_purchase_corroboration(review_workload):
    predicate = PurchaseCorroborationPredicate()
    for review in review_workload.reviews:
        context = ctx(
            shopping_context=review_workload.contexts[review.user_id],
            extra={"review": review},
        )
        outcome = predicate.evaluate([], context)
        assert outcome.passed != review.is_spurious, review.review_id


def test_purchase_missing_context(review_workload):
    predicate = PurchaseCorroborationPredicate()
    review = review_workload.reviews[0]
    assert not predicate.evaluate([], ctx(extra={"review": review})).passed


# ----------------------------------------------------------------------- chain

def test_chain_all_pass():
    chain = ChainPredicate([RangeCheckPredicate(), NormBoundPredicate(10.0)])
    outcome = chain.evaluate([0.5, 0.5], ctx())
    assert outcome.passed
    assert outcome.cycles > 0


def test_chain_short_circuits_on_failure():
    chain = ChainPredicate([RangeCheckPredicate(), NormBoundPredicate(10.0)])
    outcome = chain.evaluate([538.0], ctx())
    assert not outcome.passed
    assert "range" in outcome.reason


def test_chain_confidence_is_minimum():
    chain = ChainPredicate([AcceptAllPredicate(), RangeCheckPredicate()])
    assert chain.evaluate([0.5], ctx()).confidence == 0.0


def test_chain_requires_members():
    with pytest.raises(ConfigurationError):
        ChainPredicate([])


def test_chain_required_context_union():
    chain = ChainPredicate(
        [RangeCheckPredicate(), KeystrokeCorroborationPredicate()]
    )
    assert chain.required_context() == ("keystroke_trace",)


# -------------------------------------------------------------------- registry

def test_registry_builds_every_known_spec():
    registry = default_registry()
    for spec in (
        "accept-all",
        "range:0.0:1.0",
        "norm:4.0",
        "rate:2",
        "keystrokes:0.2",
        "exec-trace:0.05",
        "geo:30.0",
        "purchase",
        "chain:range,0.0,1.0+norm,5.0",
    ):
        predicate = registry.build(spec)
        assert hasattr(predicate, "evaluate")


def test_registry_unknown_spec():
    with pytest.raises(ConfigurationError):
        default_registry().build("nonexistent:1:2")


def test_registry_duplicate_registration():
    registry = default_registry()
    with pytest.raises(ConfigurationError):
        registry.register("range", lambda: None)


def test_registry_chain_spec_behaves():
    chain = default_registry().build("chain:range,0.0,1.0+norm,0.5")
    assert chain.evaluate([0.1], ctx()).passed
    assert not chain.evaluate([0.9, 0.9], ctx()).passed  # norm violated
    assert not chain.evaluate([5.0], ctx()).passed  # range violated
