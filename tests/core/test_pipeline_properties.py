"""Property-based tests on the full Glimmer pipeline.

The end-to-end invariant: for any in-range contribution vectors, a blinded
round recovers their exact mean, and the signed payloads on the wire are
uncorrelated with the plaintext values.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import Deployment

# One module-level deployment; each hypothesis example uses a fresh round id.
_DEPLOYMENT = Deployment.build(
    num_users=3, seed=b"pipeline-properties", sentences_per_user=10
)
_ROUND = {"next": 100}


def _fresh_round():
    _ROUND["next"] += 1
    return _ROUND["next"]


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=1,
        ),
        min_size=3,
        max_size=3,
    )
)
def test_blinded_round_recovers_exact_mean(rows):
    deployment = _DEPLOYMENT
    features = deployment.features
    round_id = _fresh_round()
    user_ids = [user.user_id for user in deployment.corpus.users]
    # Pad each user's single sampled value across the whole feature vector.
    vectors = {
        user_id: [rows[i][0]] * len(features)
        for i, user_id in enumerate(user_ids)
    }
    deployment.open_round(round_id, user_ids)
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            round_id, vectors[user_id], features.bigrams
        )
        assert deployment.service.submit(round_id, signed)
    result = deployment.service.finalize_blinded_round(round_id)
    expected = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    assert np.allclose(result.aggregate, expected, atol=1e-3)


@settings(max_examples=10, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_wire_payload_independent_of_plaintext(value):
    """The same plaintext blinds to different ring values across rounds, and
    the ring payload never equals the plain encoding.

    Rounds are opened for two parties: with a single party the sum-zero
    constraint forces the mask to zero (an aggregate of one *is* the value —
    there is nothing blinding could hide), so the privacy property only
    exists for cohorts of at least two.
    """
    deployment = _DEPLOYMENT
    features = deployment.features
    user_id = deployment.corpus.users[0].user_id
    payloads = []
    for __ in range(2):
        round_id = _fresh_round()
        deployment.blinder_provisioner.open_round(round_id, 2, len(features))
        deployment.service.open_round(round_id, 2)
        deployment.clients[user_id].provision_mask(
            deployment.blinder_provisioner, round_id, 0
        )
        signed = deployment.clients[user_id].contribute(
            round_id, [value] * len(features), features.bigrams
        )
        payloads.append(signed.ring_payload)
    encoded = tuple(deployment.codec.encode([value] * len(features)))
    assert payloads[0] != payloads[1]
    assert payloads[0] != encoded
    assert payloads[1] != encoded


@settings(max_examples=10, deadline=None)
@given(
    bad_index=st.integers(min_value=0, max_value=4),
    magnitude=st.floats(min_value=1.01, max_value=1e6, allow_nan=False),
)
def test_any_out_of_range_value_rejected(bad_index, magnitude):
    from repro.errors import ValidationError

    deployment = _DEPLOYMENT
    features = deployment.features
    round_id = _fresh_round()
    user_id = deployment.corpus.users[0].user_id
    deployment.blinder_provisioner.open_round(round_id, 1, len(features))
    deployment.clients[user_id].provision_mask(
        deployment.blinder_provisioner, round_id, 0
    )
    values = [0.5] * len(features)
    values[bad_index % len(features)] = magnitude
    with pytest.raises(ValidationError):
        deployment.clients[user_id].contribute(round_id, values, features.bigrams)
