"""Regression: a long-lived Glimmer's mask table must stay bounded.

Before the purge hooks existed, every provisioned-but-unconsumed mask
(dropout rounds, aborted rounds) stayed in ``BlindingComponent._masks``
forever.  These tests pin the bound at three layers: the component, the
enclave ecall, and a full deployment running many rounds.
"""

from __future__ import annotations

import pytest

from repro.core.blinding import MASK_DIGEST_HISTORY, BlindingComponent
from repro.errors import CryptoError, MaskVerificationError
from repro.experiments.common import Deployment


def _mask(i: int) -> tuple[int, ...]:
    return (i + 1, 2 * i + 1)


def test_purge_round_drops_only_that_rounds_masks():
    component = BlindingComponent()
    for round_id in (1, 2):
        for party in range(3):
            component.install_mask(round_id, party, _mask(10 * round_id + party))
    assert component.open_round_count() == 6
    assert component.purge_round(1) == 3
    assert component.open_round_count() == 3
    assert not component.has_mask(1, 0)
    assert component.has_mask(2, 0)
    assert component.purge_round(1) == 0  # idempotent


def test_unconsumed_rounds_no_longer_grow_without_bound():
    component = BlindingComponent()
    for round_id in range(1, 201):
        component.install_mask(round_id, 0, _mask(round_id))
        component.purge_round(round_id)  # what the engine's close now does
    assert component.open_round_count() == 0


def test_reuse_detection_survives_a_purge():
    # Purging a round must not let the blinder replay that round's mask.
    component = BlindingComponent()
    component.install_mask(1, 0, _mask(1))
    component.purge_round(1)
    with pytest.raises(MaskVerificationError):
        component.install_mask(2, 0, _mask(1))


def test_seen_digest_history_is_fifo_capped():
    component = BlindingComponent()
    for round_id in range(1, MASK_DIGEST_HISTORY + 10):
        component.install_mask(round_id, 0, _mask(round_id))
        component.purge_round(round_id)
    assert len(component._seen_digests) <= MASK_DIGEST_HISTORY


def test_double_install_still_refused():
    component = BlindingComponent()
    component.install_mask(1, 0, _mask(1))
    with pytest.raises(CryptoError):
        component.install_mask(1, 0, _mask(2))


def test_engine_rounds_leave_no_mask_state_behind():
    deployment = Deployment.build(
        num_users=3, seed=b"purge-e2e", sentences_per_user=10
    )
    user_ids = [user.user_id for user in deployment.corpus.users]
    for round_id in range(1, 6):
        # A collect dropout is the leak that motivated the purge: its mask
        # is provisioned and charged to a slot but never consumed.
        deployment.engine.run_round(
            round_id,
            user_ids,
            deployment.local_vectors(),
            deployment.features.bigrams,
            collect_dropouts=(user_ids[round_id % len(user_ids)],),
            recovery_threshold=0.25,
        )
    for user_id in user_ids:
        client = deployment.clients[user_id]
        for round_id in range(1, 6):
            assert not client.glimmer.ecall("has_mask", round_id), (
                f"{user_id} still holds a mask for closed round {round_id}"
            )
