"""Tests for the §4.1 runtime auditor."""

import pytest

from repro.core.auditor import (
    CHALLENGE_BYTES,
    RESPONSE_BYTES,
    SIGNATURE_BYTES,
    RuntimeAuditor,
    VerdictMessage,
    expected_response,
)
from repro.errors import AuditError

CHALLENGE = b"c" * CHALLENGE_BYTES


def good_message(verdict=1, session="s1", challenge=CHALLENGE):
    return VerdictMessage(
        session_id=session,
        challenge=challenge,
        verdict_bit=verdict,
        challenge_response=expected_response(challenge, verdict),
        signature_bytes=b"\x00" * SIGNATURE_BYTES,
    )


def test_well_formed_message_passes():
    auditor = RuntimeAuditor()
    auditor.audit(good_message(), CHALLENGE)
    assert auditor.capacity_bound_bits("s1") == 1


def test_both_verdict_values_pass():
    auditor = RuntimeAuditor()
    auditor.audit(good_message(0), CHALLENGE)
    auditor.audit(good_message(1), CHALLENGE)
    assert auditor.capacity_bound_bits("s1") == 2


def test_non_bit_verdict_rejected():
    auditor = RuntimeAuditor()
    bad = VerdictMessage(
        session_id="s1", challenge=CHALLENGE, verdict_bit=2,
        challenge_response=expected_response(CHALLENGE, 0),
        signature_bytes=b"\x00" * SIGNATURE_BYTES,
    )
    with pytest.raises(AuditError):
        auditor.audit(bad, CHALLENGE)


def test_wrong_challenge_rejected():
    auditor = RuntimeAuditor()
    with pytest.raises(AuditError):
        auditor.audit(good_message(), b"d" * CHALLENGE_BYTES)


def test_bad_challenge_length_rejected():
    auditor = RuntimeAuditor()
    message = VerdictMessage(
        session_id="s1", challenge=b"short", verdict_bit=1,
        challenge_response=expected_response(b"short", 1),
        signature_bytes=b"\x00" * SIGNATURE_BYTES,
    )
    with pytest.raises(AuditError):
        auditor.audit(message, b"short")


def test_nondeterministic_response_rejected():
    """The response field cannot carry anything but H(challenge || bit)."""
    auditor = RuntimeAuditor()
    message = VerdictMessage(
        session_id="s1", challenge=CHALLENGE, verdict_bit=1,
        challenge_response=b"z" * RESPONSE_BYTES,  # smuggled data
        signature_bytes=b"\x00" * SIGNATURE_BYTES,
    )
    with pytest.raises(AuditError):
        auditor.audit(message, CHALLENGE)


def test_response_for_wrong_bit_rejected():
    auditor = RuntimeAuditor()
    message = VerdictMessage(
        session_id="s1", challenge=CHALLENGE, verdict_bit=1,
        challenge_response=expected_response(CHALLENGE, 0),
        signature_bytes=b"\x00" * SIGNATURE_BYTES,
    )
    with pytest.raises(AuditError):
        auditor.audit(message, CHALLENGE)


def test_oversized_signature_rejected():
    auditor = RuntimeAuditor()
    message = VerdictMessage(
        session_id="s1", challenge=CHALLENGE, verdict_bit=1,
        challenge_response=expected_response(CHALLENGE, 1),
        signature_bytes=b"\x00" * (SIGNATURE_BYTES + 8),  # widened channel
    )
    with pytest.raises(AuditError):
        auditor.audit(message, CHALLENGE)


def test_bit_budget_enforced():
    auditor = RuntimeAuditor(max_bits_per_session=2)
    auditor.audit(good_message(), CHALLENGE)
    auditor.audit(good_message(), CHALLENGE)
    with pytest.raises(AuditError):
        auditor.audit(good_message(), CHALLENGE)
    assert auditor.capacity_bound_bits("s1") == 2


def test_budget_is_per_session():
    auditor = RuntimeAuditor(max_bits_per_session=1)
    auditor.audit(good_message(session="a"), CHALLENGE)
    auditor.audit(good_message(session="b"), CHALLENGE)  # separate budget
    with pytest.raises(AuditError):
        auditor.audit(good_message(session="a"), CHALLENGE)


def test_rejected_messages_do_not_consume_budget():
    auditor = RuntimeAuditor(max_bits_per_session=1)
    with pytest.raises(AuditError):
        auditor.audit(good_message(), b"x" * CHALLENGE_BYTES)
    auditor.audit(good_message(), CHALLENGE)  # budget still available
    record = auditor.record_for("s1")
    assert record.messages_rejected == 1
    assert record.messages_passed == 1


def test_expected_response_deterministic_and_distinct():
    assert expected_response(CHALLENGE, 0) == expected_response(CHALLENGE, 0)
    assert expected_response(CHALLENGE, 0) != expected_response(CHALLENGE, 1)
    assert expected_response(CHALLENGE, 1) != expected_response(b"d" * 32, 1)
