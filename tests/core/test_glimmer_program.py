"""Tests for the Glimmer enclave program: provisioning, processing, properties."""

import pytest

from repro.core.glimmer import (
    GlimmerConfig,
    KeyDelivery,
    features_digest,
)
from repro.crypto.masking import remove_mask
from repro.crypto.schnorr import SchnorrKeyPair
from repro.crypto.drbg import HmacDrbg
from repro.crypto.dh import TEST_GROUP
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    ProtocolError,
    ValidationError,
)


@pytest.fixture
def round_setup(fresh_deployment):
    deployment = fresh_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    return deployment, user_ids


def test_config_roundtrip(deployment):
    config = GlimmerConfig.decode(deployment.image.config)
    assert config.predicate_spec == "range:0.0:1.0"
    assert config.service_identity.element == deployment.service_identity.public_key.element
    assert config.features_digest == features_digest(deployment.features.bigrams)


def test_config_decode_rejects_garbage():
    with pytest.raises(ConfigurationError):
        GlimmerConfig.decode(b"nonsense")
    with pytest.raises(ConfigurationError):
        GlimmerConfig.decode(b"")


def test_config_decode_rejects_trailing_bytes(deployment):
    with pytest.raises(ConfigurationError):
        GlimmerConfig.decode(deployment.image.config + b"\x00")


def test_predicate_spec_exposed(deployment):
    client = next(iter(deployment.clients.values()))
    assert client.glimmer.ecall("predicate_name") == "range:0.0:1.0"


def test_signing_key_provisioned(deployment):
    client = next(iter(deployment.clients.values()))
    assert client.glimmer.ecall("has_signing_key")


def test_process_without_signing_key_rejected(fresh_deployment):
    from repro.core.client import ClientDevice, LocalDataStore

    client = ClientDevice(
        "unprovisioned", fresh_deployment.image, fresh_deployment.attestation,
        seed=b"unprov", data=LocalDataStore(),
    )
    with pytest.raises(ProtocolError):
        client.contribute(
            1, [0.5] * len(fresh_deployment.features),
            fresh_deployment.features.bigrams, blind=False,
        )


def test_process_unblinded_contribution(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    values = [0.5] * len(deployment.features)
    signed = client.contribute(1, values, deployment.features.bigrams, blind=False)
    assert not signed.blinded
    assert signed.plain_payload == tuple(values)
    deployment.signing_keypair.public_key.verify(
        signed.signed_bytes(), signed.signature
    )


def test_process_blinded_contribution_hides_values(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    values = [0.5] * len(deployment.features)
    signed = client.contribute(1, values, deployment.features.bigrams)
    assert signed.blinded
    assert signed.plain_payload is None
    encoded = deployment.codec.encode(values)
    assert list(signed.ring_payload) != encoded
    # The mask provisioned for party 0 recovers the true values.
    mask = deployment.blinder_provisioner.reveal_dropout_mask(1, 0)
    recovered = deployment.codec.decode(
        remove_mask(list(signed.ring_payload), list(mask))
    )
    assert list(recovered) == pytest.approx(values)


def test_blind_without_mask_rejected(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    values = [0.5] * len(deployment.features)
    client.contribute(1, values, deployment.features.bigrams)  # consumes mask
    from repro.errors import CryptoError

    with pytest.raises(CryptoError):
        client.contribute(1, values, deployment.features.bigrams)


def test_wrong_feature_list_rejected(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    forged_features = tuple(deployment.features.bigrams[:-1]) + (("evil", "pair"),)
    with pytest.raises(ValidationError):
        client.contribute(
            1, [0.5] * len(forged_features), forged_features
        )


def test_out_of_range_rejected_and_not_signed(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    values = [538.0] + [0.0] * (len(deployment.features) - 1)
    with pytest.raises(ValidationError):
        client.contribute(1, values, deployment.features.bigrams)
    # the round mask must NOT have been consumed by a failed validation
    assert client.glimmer.ecall("has_mask", 1)


def test_session_id_reuse_rejected(deployment):
    client = next(iter(deployment.clients.values()))
    client.glimmer.ecall("begin_handshake", b"dup-session")
    with pytest.raises(ProtocolError):
        client.glimmer.ecall("begin_handshake", b"dup-session")


def test_delivery_without_handshake_rejected(deployment):
    client = next(iter(deployment.clients.values()))
    delivery = KeyDelivery(
        session_id=b"never-started",
        peer_dh_public=4,
        handshake_signature=deployment.service_identity.sign(b"x"),
        encrypted_payload=b"\x00" * 64,
    )
    with pytest.raises(ProtocolError):
        client.glimmer.ecall("install_signing_key", delivery)


def test_forged_handshake_signature_rejected(fresh_deployment):
    from repro.core.client import ClientDevice, LocalDataStore
    from repro.core.glimmer import handshake_digest

    deployment = fresh_deployment
    client = ClientDevice(
        "victim", deployment.image, deployment.attestation,
        seed=b"victim", data=LocalDataStore(),
    )
    session = b"mitm-session"
    glimmer_public = client.glimmer.ecall("begin_handshake", session)
    # A MITM with its own identity key tries to impersonate the service.
    mitm_identity = SchnorrKeyPair.generate(HmacDrbg(b"mitm"), TEST_GROUP)
    from repro.crypto.cipher import AuthenticatedCipher
    from repro.crypto.dh import DHKeyPair

    mitm_kp = DHKeyPair.generate(TEST_GROUP, HmacDrbg(b"mitm-dh"))
    digest = handshake_digest(
        "signing-key-provisioning", session, glimmer_public, mitm_kp.public
    )
    key = mitm_kp.derive_key(glimmer_public, "signing-key-provisioning")
    box = AuthenticatedCipher(key).encrypt(
        b"n" * 16, (123).to_bytes(256, "big"), associated_data=session
    )
    delivery = KeyDelivery(
        session_id=session,
        peer_dh_public=mitm_kp.public,
        handshake_signature=mitm_identity.sign(digest),
        encrypted_payload=box.to_bytes(),
    )
    with pytest.raises(AuthenticationError):
        client.glimmer.ecall("install_signing_key", delivery)


def test_sealed_signing_key_restores_after_restart(fresh_deployment):
    """The host persists the sealed blob; a restarted Glimmer reloads it."""
    from repro.core.client import ClientDevice, LocalDataStore

    deployment = fresh_deployment
    client = ClientDevice(
        "restarter", deployment.image, deployment.attestation,
        seed=b"restart", data=LocalDataStore(),
    )
    sealed = client.provision_signing_key(deployment.service_provisioner)
    # Simulate an enclave restart on the same platform.
    restarted = client.platform.load_enclave(
        deployment.image,
        ocall_handlers={"collect_private_data": client._serve_private_data},
    )
    assert not restarted.ecall("has_signing_key")
    restarted.ecall("restore_signing_key", sealed)
    assert restarted.ecall("has_signing_key")


def test_restore_rejects_foreign_blob(fresh_deployment):
    from repro.core.client import ClientDevice, LocalDataStore
    from repro.errors import SealingError

    deployment = fresh_deployment
    client = ClientDevice(
        "restorer", deployment.image, deployment.attestation,
        seed=b"restorer", data=LocalDataStore(),
    )
    with pytest.raises(SealingError):
        client.glimmer.ecall("restore_signing_key", b"\x00" * 80)


def test_validation_cycles_metered(round_setup):
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    before = client.glimmer.meter.buckets.get("validation", 0)
    client.contribute(
        1, [0.5] * len(deployment.features), deployment.features.bigrams
    )
    assert client.glimmer.meter.buckets.get("validation", 0) > before


def test_glimmer_keeps_no_raw_values_after_processing(round_setup):
    """Input Confidentiality: no raw contribution survives inside the enclave."""
    deployment, user_ids = round_setup
    client = deployment.clients[user_ids[0]]
    marker = 0.123456
    values = [marker] * len(deployment.features)
    client.contribute(1, values, deployment.features.bigrams)
    # Break isolation deliberately to inspect (test-only).
    client.platform.threat_model.memory_disclosure = True
    state = client.glimmer.peek_private_state()
    client.platform.threat_model.memory_disclosure = False

    def contains_marker(obj, depth=0):
        if depth > 6:
            return False
        if isinstance(obj, float):
            return obj == pytest.approx(marker)
        if isinstance(obj, dict):
            return any(contains_marker(v, depth + 1) for v in obj.values())
        if isinstance(obj, (list, tuple, set)):
            return any(contains_marker(v, depth + 1) for v in obj)
        if hasattr(obj, "__dict__"):
            return contains_marker(vars(obj), depth + 1)
        return False

    assert not contains_marker(state)
