"""Shared fixtures for core (Glimmer) tests: a small, fast deployment."""

import pytest

from repro.experiments.common import Deployment


@pytest.fixture(scope="module")
def deployment():
    """A 4-user deployment over the TEST_GROUP, fully provisioned."""
    return Deployment.build(num_users=4, seed=b"core-tests", sentences_per_user=20)


@pytest.fixture
def fresh_deployment():
    """A per-test deployment for tests that mutate round state."""
    return Deployment.build(num_users=3, seed=b"core-tests-fresh", sentences_per_user=15)
