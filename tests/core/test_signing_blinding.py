"""Tests for the Signing and Blinding components and the contribution format."""

import pytest

from repro.core.blinding import BlindingComponent
from repro.core.signing import SignedContribution, SigningComponent, contribution_digest
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import SumZeroMasks, remove_mask
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import CryptoError


@pytest.fixture
def signer():
    return SigningComponent(SchnorrKeyPair.generate(HmacDrbg(b"sign"), TEST_GROUP))


def test_endorse_ring_payload_verifies(signer):
    signed = signer.endorse(
        round_id=1, nonce=b"n" * 16, blinded=True,
        ring_payload=[1, 2, 3], plain_payload=None, confidence=1.0,
    )
    signer.public_key.verify(signed.signed_bytes(), signed.signature)


def test_endorse_plain_payload_verifies(signer):
    signed = signer.endorse(
        round_id=1, nonce=b"n" * 16, blinded=False,
        ring_payload=None, plain_payload=[0.5, 0.25], confidence=0.9,
    )
    signer.public_key.verify(signed.signed_bytes(), signed.signature)


def test_digest_requires_exactly_one_payload():
    with pytest.raises(CryptoError):
        contribution_digest(1, b"n", True, [1], [1.0], 1.0)
    with pytest.raises(CryptoError):
        contribution_digest(1, b"n", True, None, None, 1.0)


def test_digest_binds_every_field(signer):
    base = contribution_digest(1, b"n" * 16, True, [1, 2], None, 1.0)
    assert contribution_digest(2, b"n" * 16, True, [1, 2], None, 1.0) != base
    assert contribution_digest(1, b"m" * 16, True, [1, 2], None, 1.0) != base
    assert contribution_digest(1, b"n" * 16, False, [1, 2], None, 1.0) != base
    assert contribution_digest(1, b"n" * 16, True, [1, 3], None, 1.0) != base
    assert contribution_digest(1, b"n" * 16, True, [1, 2], None, 0.5) != base


def test_tampered_payload_fails_verification(signer):
    signed = signer.endorse(
        round_id=1, nonce=b"n" * 16, blinded=True,
        ring_payload=[1, 2, 3], plain_payload=None, confidence=1.0,
    )
    tampered = SignedContribution(
        round_id=signed.round_id,
        nonce=signed.nonce,
        blinded=signed.blinded,
        ring_payload=(9, 2, 3),
        plain_payload=None,
        confidence=signed.confidence,
        signature=signed.signature,
    )
    assert not signer.public_key.is_valid(tampered.signed_bytes(), tampered.signature)


def test_ring_and_plain_digests_never_collide(signer):
    """The payload-kind tag prevents a float payload masquerading as ring."""
    ring = contribution_digest(1, b"n" * 16, False, [0], None, 1.0)
    plain = contribution_digest(1, b"n" * 16, False, None, [0.0], 1.0)
    assert ring != plain


# ---------------------------------------------------------------- blinding

def test_blinding_component_roundtrip():
    codec = FixedPointCodec()
    component = BlindingComponent(codec)
    masks = SumZeroMasks.sample(2, 3, HmacDrbg(b"bl"))
    component.install_mask(7, 0, masks.mask_for(0))
    blinded = component.blind(7, 0, [0.5, -0.25, 1.0])
    unblinded = codec.decode(remove_mask(blinded, list(masks.mask_for(0))))
    assert list(unblinded) == pytest.approx([0.5, -0.25, 1.0])


def test_blinding_mask_single_use():
    component = BlindingComponent()
    masks = SumZeroMasks.sample(2, 2, HmacDrbg(b"bl"))
    component.install_mask(1, 0, masks.mask_for(0))
    component.blind(1, 0, [0.1, 0.2])
    with pytest.raises(CryptoError):
        component.blind(1, 0, [0.1, 0.2])


def test_blinding_double_install_rejected():
    component = BlindingComponent()
    masks = SumZeroMasks.sample(2, 2, HmacDrbg(b"bl"))
    component.install_mask(1, 0, masks.mask_for(0))
    with pytest.raises(CryptoError):
        component.install_mask(1, 0, masks.mask_for(1))
    # a different party slot in the same round is fine (shared remote Glimmer)
    component.install_mask(1, 1, masks.mask_for(1))


def test_blinding_missing_mask_rejected():
    with pytest.raises(CryptoError):
        BlindingComponent().blind(99, 0, [0.5])


def test_blinding_length_mismatch_rejected():
    component = BlindingComponent()
    masks = SumZeroMasks.sample(2, 2, HmacDrbg(b"bl"))
    component.install_mask(1, 0, masks.mask_for(0))
    with pytest.raises(CryptoError):
        component.blind(1, 0, [0.5, 0.5, 0.5])


def test_has_mask():
    component = BlindingComponent()
    assert not component.has_mask(1)
    masks = SumZeroMasks.sample(2, 2, HmacDrbg(b"bl"))
    component.install_mask(1, 0, masks.mask_for(0))
    assert component.has_mask(1)
    assert not component.has_mask(1, party_index=1)
    component.blind(1, 0, [0.1, 0.2])
    assert not component.has_mask(1)
