"""Tests for the measured differential-privacy extension (dp_sigma)."""

import numpy as np
import pytest

from repro.analysis.privacy import gaussian_epsilon
from repro.core.glimmer import GlimmerConfig
from repro.errors import ConfigurationError
from repro.experiments.common import Deployment


def test_dp_sigma_part_of_measurement():
    """DP parameters are vetted identity: changing sigma changes MRENCLAVE."""
    a = Deployment.build(num_users=1, seed=b"dp-a", dp_sigma=0.0)
    b = Deployment.build(num_users=1, seed=b"dp-a", dp_sigma=0.5)
    assert a.image.mrenclave != b.image.mrenclave


def test_dp_sigma_roundtrips_through_config():
    deployment = Deployment.build(num_users=1, seed=b"dp-rt", dp_sigma=0.25)
    config = GlimmerConfig.decode(deployment.image.config)
    assert config.dp_sigma == 0.25


def test_zero_sigma_is_noiseless():
    deployment = Deployment.build(num_users=3, seed=b"dp-zero", dp_sigma=0.0)
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        deployment.service.submit(
            1,
            deployment.clients[user_id].contribute(
                1, list(vectors[user_id]), deployment.features.bigrams
            ),
        )
    aggregate = deployment.service.finalize_blinded_round(1).aggregate
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    assert float(np.max(np.abs(aggregate - truth))) < 1e-3


def test_noise_perturbs_aggregate_proportionally():
    def aggregate_error(sigma):
        deployment = Deployment.build(
            num_users=4, seed=b"dp-noise", dp_sigma=sigma
        )
        user_ids = [u.user_id for u in deployment.corpus.users]
        deployment.open_round(1, user_ids)
        vectors = deployment.local_vectors()
        for user_id in user_ids:
            deployment.service.submit(
                1,
                deployment.clients[user_id].contribute(
                    1, list(vectors[user_id]), deployment.features.bigrams
                ),
            )
        aggregate = deployment.service.finalize_blinded_round(1).aggregate
        truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
        return float(np.mean(np.abs(aggregate - truth)))

    small = aggregate_error(0.05)
    large = aggregate_error(2.0)
    assert 0 < small < large


def test_noise_is_enclave_private():
    """The signed payload differs from blind(x): the host never learns the
    noise, so it cannot subtract it."""
    deployment = Deployment.build(num_users=1, seed=b"dp-priv", dp_sigma=1.0)
    user_id = deployment.corpus.users[0].user_id
    deployment.open_round(1, [user_id])
    vector = list(deployment.local_vectors()[user_id])
    signed = deployment.clients[user_id].contribute(
        1, vector, deployment.features.bigrams
    )
    from repro.crypto.masking import remove_mask

    mask = deployment.blinder_provisioner.reveal_dropout_mask(1, 0)
    unblinded = deployment.codec.decode(
        remove_mask(list(signed.ring_payload), list(mask))
    )
    # What comes out is x + noise, not x.
    assert float(np.max(np.abs(np.array(unblinded) - np.array(vector)))) > 0.01


def test_validation_runs_on_raw_values_not_noised():
    """The predicate judges the user's true values; noise must not mask a 538."""
    from repro.errors import ValidationError

    deployment = Deployment.build(num_users=1, seed=b"dp-val", dp_sigma=1.0)
    user_id = deployment.corpus.users[0].user_id
    deployment.open_round(1, [user_id])
    bad = [538.0] + [0.0] * (len(deployment.features) - 1)
    with pytest.raises(ValidationError):
        deployment.clients[user_id].contribute(1, bad, deployment.features.bigrams)


def test_gaussian_epsilon_calibration():
    assert gaussian_epsilon(1.0, 0.0) == float("inf")
    assert gaussian_epsilon(1.0, 1.0) == pytest.approx(4.8413, rel=1e-3)
    # epsilon scales linearly with sensitivity, inversely with sigma
    assert gaussian_epsilon(2.0, 1.0) == pytest.approx(
        2 * gaussian_epsilon(1.0, 1.0)
    )
    assert gaussian_epsilon(1.0, 2.0) == pytest.approx(
        gaussian_epsilon(1.0, 1.0) / 2
    )


def test_gaussian_epsilon_validations():
    with pytest.raises(ConfigurationError):
        gaussian_epsilon(-1.0, 1.0)
    with pytest.raises(ConfigurationError):
        gaussian_epsilon(1.0, -1.0)
    with pytest.raises(ConfigurationError):
        gaussian_epsilon(1.0, 1.0, delta=0.0)


def test_drbg_gauss_statistics():
    from repro.crypto.drbg import HmacDrbg

    rng = HmacDrbg(b"gauss")
    samples = [rng.gauss(0.0, 2.0) for __ in range(2000)]
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    assert abs(mean) < 0.2
    assert 3.0 < variance < 5.0
