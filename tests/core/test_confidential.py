"""Tests for §4.1 validation confidentiality end to end."""

import pytest

from repro.core.auditor import RuntimeAuditor
from repro.core.confidential import (
    BotDetectionService,
    ExfiltratingGlimmerProgram,
    MalformedOutputGlimmerProgram,
    build_confidential_image,
    decode_detector,
    encode_detector,
    raw_signal_leakage_bits,
)
from repro.core.provisioning import VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import (
    AttestationError,
    AuditError,
    AuthenticationError,
    CryptoError,
    ProtocolError,
)
from repro.sgx.attestation import AttestationService, report_data_for
from repro.sgx.measurement import VendorKey
from repro.sgx.platform import SgxPlatform
from repro.workloads.botnet import BotnetWorkload, DetectorWeights


@pytest.fixture(scope="module")
def setup():
    rng = HmacDrbg(b"confidential-tests")
    ias = AttestationService(b"conf-ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    identity = SchnorrKeyPair.generate(rng.fork("identity"), TEST_GROUP)
    image = build_confidential_image(vendor, identity.public_key)
    registry = VettingRegistry()
    registry.publish("bot-glimmer", image.mrenclave)
    workload = BotnetWorkload.generate(30, rng.fork("workload"))
    return rng, ias, vendor, identity, image, registry, workload


def provisioned(setup, seed=b"conf-plat", program_image=None, name="bot-glimmer"):
    rng, ias, vendor, identity, image, registry, workload = setup
    image = program_image or image
    service = BotDetectionService(
        identity, DetectorWeights(), ias, registry, name, rng.fork(seed.decode())
    )
    platform = SgxPlatform(seed, attestation_service=ias)
    store = {}
    enclave = platform.load_enclave(
        image, ocall_handlers={"collect_session_signals": lambda sid: store[sid]}
    )
    session = seed + b":prov"
    public = enclave.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        enclave, report_data_for(public.to_bytes(256, "big"))
    )
    enclave.ecall(
        "install_detector", service.provision_detector(session, public, quote)
    )
    return enclave, service, store, platform


def test_detector_codec_roundtrip():
    detector = DetectorWeights(weights=(1.0, -2.5, 3.25), bias=0.5, threshold=-1.0)
    decoded, secret = decode_detector(encode_detector(detector, 987654321))
    assert decoded == detector
    assert secret == 987654321


def test_detector_codec_rejects_malformed():
    with pytest.raises(CryptoError):
        decode_detector(b"")
    blob = encode_detector(DetectorWeights(), 1)
    with pytest.raises(CryptoError):
        decode_detector(blob[:-1])


def test_end_to_end_detection_accuracy(setup):
    __, __, __, __, __, __, workload = setup
    enclave, service, store, __ = provisioned(setup, b"conf-e2e")
    auditor = RuntimeAuditor()
    correct = 0
    for signals in workload.sessions:
        store[signals.session_id] = signals
        challenge = service.new_challenge(signals.session_id)
        message = enclave.ecall("evaluate_session", signals.session_id, challenge)
        auditor.audit(message, challenge)
        if service.verify_verdict(message) != signals.is_bot:
            correct += 1
    assert correct / len(workload.sessions) >= 0.95


def test_detector_never_visible_to_host(setup):
    """Validation confidentiality: the host cannot read the detector weights."""
    enclave, __, __, platform = provisioned(setup, b"conf-secrecy")
    from repro.errors import EnclaveError

    with pytest.raises(EnclaveError):
        enclave.peek_private_state()


def test_detector_visible_only_under_memory_disclosure(setup):
    enclave, __, __, platform = provisioned(setup, b"conf-breach")
    platform.threat_model.memory_disclosure = True
    state = enclave.peek_private_state()
    assert state["_detector"] is not None  # the breach model works as designed


def test_evaluate_before_provisioning_rejected(setup):
    rng, ias, vendor, identity, image, registry, workload = setup
    platform = SgxPlatform(b"conf-unprov", attestation_service=ias)
    enclave = platform.load_enclave(image)
    with pytest.raises(ProtocolError):
        enclave.ecall("evaluate_session", "s", b"c" * 32)


def test_provisioning_requires_vetted_measurement(setup):
    rng, ias, vendor, identity, image, registry, workload = setup
    rogue_image = build_confidential_image(
        vendor, identity.public_key, program_class=ExfiltratingGlimmerProgram,
        name="unvetted",
    )
    service = BotDetectionService(
        identity, DetectorWeights(), ias, registry, "bot-glimmer", rng.fork("rx")
    )
    platform = SgxPlatform(b"conf-rogue", attestation_service=ias)
    enclave = platform.load_enclave(rogue_image)
    session = b"rogue-session"
    public = enclave.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        enclave, report_data_for(public.to_bytes(256, "big"))
    )
    with pytest.raises(AttestationError):
        service.provision_detector(session, public, quote)


def test_verdict_replay_rejected(setup):
    __, __, __, __, __, __, workload = setup
    enclave, service, store, __ = provisioned(setup, b"conf-replay")
    signals = workload.sessions[0]
    store[signals.session_id] = signals
    challenge = service.new_challenge(signals.session_id)
    message = enclave.ecall("evaluate_session", signals.session_id, challenge)
    service.verify_verdict(message)  # consumes the challenge
    with pytest.raises(ProtocolError):
        service.verify_verdict(message)


def test_forged_verdict_signature_rejected(setup):
    __, __, __, __, __, __, workload = setup
    enclave, service, store, __ = provisioned(setup, b"conf-forge")
    signals = workload.sessions[0]
    store[signals.session_id] = signals
    challenge = service.new_challenge(signals.session_id)
    message = enclave.ecall("evaluate_session", signals.session_id, challenge)
    from repro.core.auditor import VerdictMessage, expected_response

    flipped = VerdictMessage(
        session_id=message.session_id,
        challenge=message.challenge,
        verdict_bit=1 - message.verdict_bit,
        challenge_response=expected_response(
            message.challenge, 1 - message.verdict_bit
        ),
        signature_bytes=message.signature_bytes,
    )
    with pytest.raises(AuthenticationError):
        service.verify_verdict(flipped)


def test_exfiltrator_passes_auditor_but_is_counted(setup):
    rng, ias, vendor, identity, image, registry, workload = setup
    exfil_image = build_confidential_image(
        vendor, identity.public_key, program_class=ExfiltratingGlimmerProgram,
        name="exfil-glimmer",
    )
    registry.publish("exfil-glimmer", exfil_image.mrenclave)
    enclave, service, store, __ = provisioned(
        setup, b"conf-exfil", program_image=exfil_image, name="exfil-glimmer"
    )
    auditor = RuntimeAuditor(max_bits_per_session=4)
    signals = workload.sessions[0]
    store[signals.session_id] = signals
    passed = 0
    for __ in range(10):
        challenge = service.new_challenge(signals.session_id)
        message = enclave.ecall("evaluate_session", signals.session_id, challenge)
        try:
            auditor.audit(message, challenge)
            passed += 1
        except AuditError:
            pass
    assert passed == 4
    assert auditor.capacity_bound_bits(signals.session_id) == 4


def test_malformed_stuffer_always_rejected(setup):
    rng, ias, vendor, identity, image, registry, workload = setup
    stuffer_image = build_confidential_image(
        vendor, identity.public_key, program_class=MalformedOutputGlimmerProgram,
        name="stuffer-glimmer",
    )
    registry.publish("stuffer-glimmer", stuffer_image.mrenclave)
    enclave, service, store, __ = provisioned(
        setup, b"conf-stuffer", program_image=stuffer_image, name="stuffer-glimmer"
    )
    auditor = RuntimeAuditor()
    signals = workload.sessions[0]
    store[signals.session_id] = signals
    for __ in range(3):
        challenge = service.new_challenge(signals.session_id)
        message = enclave.ecall("evaluate_session", signals.session_id, challenge)
        with pytest.raises(AuditError):
            auditor.audit(message, challenge)
    assert auditor.capacity_bound_bits(signals.session_id) == 0


def test_raw_leakage_positive_for_all_sessions(setup):
    __, __, __, __, __, __, workload = setup
    for signals in workload.sessions:
        assert raw_signal_leakage_bits(signals) > 100
