"""Tests for the vetting registry, provisioners, and the cloud service."""

import numpy as np
import pytest

from repro.core.provisioning import VettingRegistry
from repro.core.signing import SignedContribution
from repro.errors import AttestationError, ConfigurationError, ProtocolError
from repro.sgx.attestation import report_data_for
from repro.sgx.threats import forge_quote


# ----------------------------------------------------------------- registry

def test_registry_publish_and_lookup():
    registry = VettingRegistry()
    registry.publish("g", b"\x01" * 32)
    assert registry.approved_measurement("g") == b"\x01" * 32
    assert registry.is_approved(b"\x01" * 32)
    assert not registry.is_approved(b"\x02" * 32)


def test_registry_idempotent_same_hash():
    registry = VettingRegistry()
    registry.publish("g", b"\x01" * 32)
    registry.publish("g", b"\x01" * 32)  # no error


def test_registry_conflicting_hash_rejected():
    registry = VettingRegistry()
    registry.publish("g", b"\x01" * 32)
    with pytest.raises(ConfigurationError):
        registry.publish("g", b"\x02" * 32)


def test_registry_unknown_name():
    with pytest.raises(ConfigurationError):
        VettingRegistry().approved_measurement("ghost")


# -------------------------------------------------------------- provisioner

def test_provision_rejects_forged_quote(deployment):
    quote = forge_quote(
        deployment.image.mrenclave,
        deployment.image.mrsigner,
        report_data_for((4).to_bytes(256, "big")),
    )
    with pytest.raises(AttestationError):
        deployment.service_provisioner.provision_signing_key(b"s", 4, quote)


def test_provision_rejects_unbound_dh_value(deployment):
    client = next(iter(deployment.clients.values()))
    session, dh_public, quote = client._attested_handshake()
    with pytest.raises(AttestationError):
        deployment.service_provisioner.provision_signing_key(
            session, dh_public + 1, quote
        )


def test_mask_provisioning_requires_open_round(fresh_deployment):
    deployment = fresh_deployment
    client = deployment.clients[deployment.corpus.users[0].user_id]
    from repro.errors import CryptoError

    with pytest.raises(CryptoError):
        client.provision_mask(deployment.blinder_provisioner, 42, 0)


def test_blinder_round_masks_sum_zero(fresh_deployment):
    deployment = fresh_deployment
    deployment.blinder_provisioner.open_round(3, 4, len(deployment.features))
    modulus = deployment.codec.modulus()
    masks = [
        deployment.blinder_provisioner.blinding.mask_for(3, i) for i in range(4)
    ]
    for column in zip(*masks):
        assert sum(column) % modulus == 0


# ------------------------------------------------------------------ service

def test_service_round_lifecycle(fresh_deployment):
    service = fresh_deployment.service
    service.open_round(1, 3)
    with pytest.raises(ProtocolError):
        service.open_round(1, 3)
    with pytest.raises(ProtocolError):
        service.open_round(2, 0)
    with pytest.raises(ProtocolError):
        service.round_state(99)


def test_service_rejects_non_contribution(fresh_deployment):
    service = fresh_deployment.service
    service.open_round(1, 3)
    assert not service.submit(1, "not a contribution")
    assert service.round_state(1).rejected == {"not-a-signed-contribution": 1}


def test_service_rejects_wrong_payload_kind(fresh_deployment):
    deployment = fresh_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    client = deployment.clients[user_ids[0]]
    values = [0.5] * len(deployment.features)
    plain = client.contribute(1, values, deployment.features.bigrams, blind=False)
    assert not deployment.service.submit(1, plain)  # round is blinded
    assert deployment.service.round_state(1).rejected == {"wrong-payload-kind": 1}


def test_service_finalize_requires_contributions(fresh_deployment):
    service = fresh_deployment.service
    service.open_round(1, 2)
    with pytest.raises(ProtocolError):
        service.finalize_blinded_round(1)


def test_service_finalize_kind_mismatch(fresh_deployment):
    service = fresh_deployment.service
    service.open_round(1, 2, blinded=True)
    with pytest.raises(ProtocolError):
        service.finalize_plain_round(1)
    service.open_round(2, 2, blinded=False)
    with pytest.raises(ProtocolError):
        service.finalize_blinded_round(2)


def test_plain_round_end_to_end(fresh_deployment):
    deployment = fresh_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.service.open_round(1, len(user_ids), blinded=False)
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), deployment.features.bigrams, blind=False
        )
        assert deployment.service.submit(1, signed)
    result = deployment.service.finalize_plain_round(1)
    expected = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    assert np.allclose(result.aggregate, expected)


def test_blinded_round_with_dropout_repair(fresh_deployment):
    """§3 dropout repair end to end through the service."""
    deployment = fresh_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    vectors = deployment.local_vectors()
    submitted = user_ids[:-1]  # the last client drops after mask provisioning
    for user_id in submitted:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), deployment.features.bigrams
        )
        deployment.service.submit(1, signed)
    dropout_mask = deployment.blinder_provisioner.reveal_dropout_mask(
        1, len(user_ids) - 1
    )
    result = deployment.service.finalize_blinded_round(1, [dropout_mask])
    expected = np.mean(np.stack([vectors[u] for u in submitted]), axis=0)
    assert np.allclose(result.aggregate, expected, atol=1e-3)
    assert result.num_dropouts_repaired == 1


def test_service_counts_multiple_rejection_reasons(fresh_deployment):
    deployment = fresh_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    vectors = deployment.local_vectors()
    signed = deployment.clients[user_ids[0]].contribute(
        1, list(vectors[user_ids[0]]), deployment.features.bigrams
    )
    assert deployment.service.submit(1, signed)
    assert not deployment.service.submit(1, signed)  # replay
    wrong_round = SignedContribution(
        round_id=2,
        nonce=signed.nonce,
        blinded=True,
        ring_payload=signed.ring_payload,
        plain_payload=None,
        confidence=signed.confidence,
        signature=signed.signature,
    )
    assert not deployment.service.submit(1, wrong_round)
    rejected = deployment.service.round_state(1).rejected
    assert rejected["replayed-nonce"] == 1
    assert rejected["wrong-round"] == 1
