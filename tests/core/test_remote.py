"""Tests for §4.2 Glimmer-as-a-service."""

import pytest

from repro.core.remote import AttestedOffer, IoTClient, RemoteGlimmerHost
from repro.core.validation import PrivateContext
from repro.errors import AttestationError, AuthenticationError
from repro.experiments.common import Deployment, GLIMMER_NAME
from repro.network.clock import LAN_LATENCY
from repro.network.transport import Network
from repro.network.adversary import EavesdropAdversary


@pytest.fixture
def gaas():
    deployment = Deployment.build(
        num_users=2, seed=b"remote-tests", provision_clients=False
    )
    network = Network(seed=b"remote-net", latency=LAN_LATENCY)
    host = RemoteGlimmerHost(
        "host", deployment.image, deployment.attestation, network, b"host-seed"
    )
    host.provision_signing_key(deployment.service_provisioner)
    return deployment, network, host


def make_iot(deployment, network, name="iot-1"):
    return IoTClient(
        name, network, deployment.attestation, deployment.registry,
        GLIMMER_NAME, name.encode(), group=deployment.group,
    )


def test_remote_contribution_end_to_end(gaas):
    deployment, network, host = gaas
    deployment.blinder_provisioner.open_round(1, 1, len(deployment.features))
    deployment.service.open_round(1, 1)
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    client = make_iot(deployment, network)
    values = [0.5] * len(deployment.features)
    signed = client.contribute_via(
        "host", 1, values, deployment.features.bigrams, PrivateContext()
    )
    assert deployment.service.submit(1, signed)


def test_remote_contribution_is_blinded_on_the_wire(gaas):
    deployment, network, host = gaas
    deployment.blinder_provisioner.open_round(1, 1, len(deployment.features))
    deployment.service.open_round(1, 1)
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    spy = EavesdropAdversary()
    network.interpose(spy)
    client = make_iot(deployment, network)
    values = [0.25] * len(deployment.features)
    signed = client.contribute_via(
        "host", 1, values, deployment.features.bigrams, PrivateContext()
    )
    assert signed.blinded
    # Everything the host/network saw for the contribution is ciphertext.
    for payload in spy.captured_payloads("remote-contribution"):
        __, __, ciphertext = payload
        assert isinstance(ciphertext, bytes)
        encoded = bytes(deployment.codec.encode(values)[0].to_bytes(8, "big"))
        assert encoded not in ciphertext


def test_malicious_host_fails_attestation(gaas):
    deployment, network, host = gaas
    # The host swaps in an offer whose quote does not bind the DH value.
    genuine_offer = host._attested_offer("victim")

    def bad_attest(message):
        return AttestedOffer(
            session_id=genuine_offer.session_id,
            dh_public=genuine_offer.dh_public + 1,  # substituted key
            quote=genuine_offer.quote,
        )

    network.add_handler("host", "attest-glimmer", bad_attest)
    client = make_iot(deployment, network, "iot-victim")
    with pytest.raises(AttestationError):
        client.contribute_via(
            "host", 1, [0.5] * len(deployment.features),
            deployment.features.bigrams, PrivateContext(),
        )


def test_manually_tampered_payload_rejected(gaas):
    deployment, network, host = gaas
    deployment.blinder_provisioner.open_round(1, 1, len(deployment.features))
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    offer = host._attested_offer("tamper-victim")
    # Build the encrypted request by hand, flip a byte, deliver.
    from repro.crypto.cipher import AuthenticatedCipher
    from repro.crypto.dh import DHKeyPair
    from repro.crypto.drbg import HmacDrbg
    from repro.core.glimmer import ProcessRequest, _encode_remote_payload

    rng = HmacDrbg(b"tamper-iot")
    keypair = DHKeyPair.generate(deployment.group, rng)
    key = keypair.derive_key(offer.dh_public, "glimmer-as-a-service")
    cipher = AuthenticatedCipher(key)
    request = ProcessRequest(
        round_id=1,
        values=tuple([0.5] * len(deployment.features)),
        features=deployment.features.bigrams,
    )
    payload = _encode_remote_payload(request, PrivateContext())
    box = cipher.encrypt(rng.generate(16), payload, associated_data=offer.session_id)
    wire = bytearray(box.to_bytes())
    wire[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        host.glimmer.ecall(
            "process_remote", offer.session_id, keypair.public, bytes(wire)
        )


def test_session_cannot_be_reused(gaas):
    deployment, network, host = gaas
    deployment.blinder_provisioner.open_round(1, 2, len(deployment.features))
    deployment.service.open_round(1, 2)
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    host.provision_mask(deployment.blinder_provisioner, 1, 1)
    client = make_iot(deployment, network, "iot-reuse")
    values = [0.5] * len(deployment.features)
    client.contribute_via(
        "host", 1, values, deployment.features.bigrams, PrivateContext(),
        party_index=0,
    )
    # A second contribution opens a fresh session automatically and succeeds
    # (consuming the second party's mask on the shared remote Glimmer).
    signed = client.contribute_via(
        "host", 1, values, deployment.features.bigrams, PrivateContext(),
        party_index=1,
    )
    assert signed.blinded


def test_remote_validation_still_enforced(gaas):
    """The remote path runs the same predicate: 538 is rejected remotely too."""
    from repro.errors import ValidationError

    deployment, network, host = gaas
    deployment.blinder_provisioner.open_round(1, 1, len(deployment.features))
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    client = make_iot(deployment, network, "iot-evil")
    bad = [538.0] + [0.0] * (len(deployment.features) - 1)
    with pytest.raises(ValidationError):
        client.contribute_via(
            "host", 1, bad, deployment.features.bigrams, PrivateContext()
        )
