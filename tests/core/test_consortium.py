"""Tests for the consortium (non-TEE) Glimmer alternative."""

import numpy as np
import pytest

from repro.core.consortium import (
    ConsortiumService,
    MemberEndorsement,
    build_consortium,
    values_digest,
)
from repro.core.validation import PrivateContext
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.errors import ConfigurationError, ProtocolError, ValidationError

LENGTH = 3


@pytest.fixture
def ensemble():
    rng = HmacDrbg(b"consortium-tests")
    codec = FixedPointCodec()
    members = build_consortium(4, "range:0.0:1.0", rng, codec)
    service = ConsortiumService(
        {m.name: m.identity.public_key for m in members}, quorum=3, codec=codec
    )
    return members, service, codec


def open_round(members, service, round_id, num_clients):
    for member in members:
        member.open_round(round_id, num_clients, LENGTH)
    service.open_round(round_id, num_clients)


def endorse_all(members, round_id, client_index, values):
    return [
        m.endorse(round_id, client_index, values, PrivateContext()) for m in members
    ]


def test_exact_aggregate(ensemble):
    members, service, codec = ensemble
    vectors = [[0.1, 0.5, 1.0], [0.9, 0.0, 0.25], [0.3, 0.3, 0.3]]
    open_round(members, service, 1, 3)
    for index, values in enumerate(vectors):
        assert service.submit(1, index, endorse_all(members, 1, index, values))
    aggregate = service.finalize_round(1)
    assert np.allclose(aggregate, np.mean(vectors, axis=0), atol=1e-3)


def test_every_member_validates(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    endorse_all(members, 1, 0, [0.5, 0.5, 0.5])
    assert all(m.validations_run == 1 for m in members)


def test_out_of_range_rejected_by_each_member(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    for member in members:
        with pytest.raises(ValidationError):
            member.endorse(1, 0, [538.0, 0.0, 0.0], PrivateContext())


def test_single_share_hides_contribution(ensemble):
    """No single member's share decodes to the raw values (one honest member
    suffices for privacy against the service)."""
    members, service, codec = ensemble
    open_round(members, service, 1, 2)
    values = [0.9, 0.1, 0.5]
    endorsements = endorse_all(members, 1, 0, values)
    encoded = codec.encode(values)
    for endorsement in endorsements:
        assert list(endorsement.share) != encoded


def test_missing_member_share_rejected(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    endorsements = endorse_all(members, 1, 0, [0.5, 0.5, 0.5])
    assert not service.submit(1, 0, endorsements[:-1])
    assert service.round_state(1).rejected == {"missing-member-shares": 1}


def test_quorum_enforced(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    endorsements = endorse_all(members, 1, 0, [0.5, 0.5, 0.5])
    # Forging members 1 and 2 with member 0's signature leaves only
    # 2 valid signatures < quorum 3.
    forged = [
        MemberEndorsement(
            member_name=e.member_name,
            round_id=e.round_id,
            client_index=e.client_index,
            values_digest=e.values_digest,
            share=e.share,
            signature=endorsements[0].signature,  # wrong key's signature
        )
        if i in (1, 2)
        else e
        for i, e in enumerate(endorsements)
    ]
    assert not service.submit(1, 0, forged)
    assert service.round_state(1).rejected == {"quorum-not-met": 1}


def test_digest_disagreement_rejected(ensemble):
    """Members must have validated the same raw contribution."""
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    endorsements = endorse_all(members[:-1], 1, 0, [0.5, 0.5, 0.5])
    endorsements.append(members[-1].endorse(1, 0, [0.4, 0.5, 0.5], PrivateContext()))
    assert not service.submit(1, 0, endorsements)
    assert service.round_state(1).rejected == {"digest-disagreement": 1}


def test_duplicate_client_rejected(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 2)
    endorsements = endorse_all(members, 1, 0, [0.5, 0.5, 0.5])
    assert service.submit(1, 0, endorsements)
    assert not service.submit(1, 0, endorsements)
    assert service.round_state(1).rejected == {"duplicate-client": 1}


def test_unavailable_member_stalls(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    members[2].available = False
    with pytest.raises(ProtocolError):
        members[2].endorse(1, 0, [0.5, 0.5, 0.5], PrivateContext())


def test_dropout_repair(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 2)
    values = [0.5, 0.25, 0.75]
    assert service.submit(1, 0, endorse_all(members, 1, 0, values))
    # Client 1 never shows up; members disclose its mask shares.
    repairs = [list(m.reveal_dropout_share(1, 1)) for m in members]
    aggregate = service.finalize_round(1, repairs)
    assert np.allclose(aggregate, values, atol=1e-3)


def test_round_lifecycle_validations(ensemble):
    members, service, codec = ensemble
    open_round(members, service, 1, 1)
    with pytest.raises(ProtocolError):
        service.open_round(1, 1)
    with pytest.raises(ProtocolError):
        members[0].open_round(1, 1, LENGTH)
    with pytest.raises(ProtocolError):
        members[0].endorse(9, 0, [0.5] * LENGTH, PrivateContext())
    with pytest.raises(ProtocolError):
        service.finalize_round(1)


def test_constructor_validations():
    rng = HmacDrbg(b"ctor")
    with pytest.raises(ConfigurationError):
        build_consortium(1, "range:0.0:1.0", rng)
    members = build_consortium(3, "range:0.0:1.0", rng)
    keys = {m.name: m.identity.public_key for m in members}
    with pytest.raises(ConfigurationError):
        ConsortiumService(keys, quorum=1)
    with pytest.raises(ConfigurationError):
        ConsortiumService(keys, quorum=4)


def test_values_digest_sensitive():
    assert values_digest([0.5, 0.5]) == values_digest([0.5, 0.5])
    assert values_digest([0.5, 0.5]) != values_digest([0.5, 0.50001])
