"""Tests for the decomposed (three-enclave) Glimmer."""

import pytest

from repro.core.glimmer import GlimmerConfig, ProcessRequest, features_digest
from repro.core.provisioning import BlinderProvisioner, ServiceProvisioner
from repro.core.split import SplitGlimmer, build_split_images
from repro.core.validation import PrivateContext
from repro.crypto.masking import BlindingService, remove_mask
from repro.errors import AttestationError, AuthenticationError, ValidationError
from repro.experiments.common import Deployment
from repro.sgx.attestation import report_data_for
from repro.sgx.platform import SgxPlatform

FEATURES = (("a", "b"), ("c", "d"), ("e", "f"))


@pytest.fixture
def split_setup():
    deployment = Deployment.build(
        num_users=1, seed=b"split-tests", provision_clients=False
    )
    config = GlimmerConfig(
        predicate_spec="range:0.0:1.0",
        service_identity=deployment.service_identity.public_key,
        blinder_identity=deployment.blinder_identity.public_key,
        features_digest=features_digest(FEATURES),
    )
    images = build_split_images(deployment.vendor, config)
    platform = SgxPlatform(b"split-platform", attestation_service=deployment.attestation)
    split = SplitGlimmer(
        platform, images,
        ocall_handlers={"collect_private_data": lambda fields: PrivateContext()},
    )
    deployment.registry.publish("glimmer-signing", images.signing.mrenclave)
    deployment.registry.publish("glimmer-blinding", images.blinding.mrenclave)
    service_prov = ServiceProvisioner(
        deployment.service_identity, deployment.signing_keypair,
        deployment.attestation, deployment.registry, "glimmer-signing",
        deployment.rng.fork("split-sp"),
    )
    blinding_service = BlindingService(deployment.rng.fork("split-bs"), deployment.codec)
    blinder_prov = BlinderProvisioner(
        deployment.blinder_identity, blinding_service,
        deployment.attestation, deployment.registry, "glimmer-blinding",
        deployment.rng.fork("split-bp"),
    )
    # Provision the signing key.
    session = b"split-sign"
    public = split.signing.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        split.signing, report_data_for(public.to_bytes(256, "big"))
    )
    split.signing.ecall(
        "install_signing_key",
        service_prov.provision_signing_key(session, public, quote),
    )
    return deployment, platform, split, blinder_prov


def provision_mask(deployment, platform, split, blinder_prov, round_id):
    blinder_prov.open_round(round_id, 1, len(FEATURES))
    session = f"split-mask-{round_id}".encode()
    public = split.blinding.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        split.blinding, report_data_for(public.to_bytes(256, "big"))
    )
    split.blinding.ecall(
        "install_blinding_mask",
        round_id,
        0,
        blinder_prov.provision_mask(session, public, quote, round_id, 0),
    )


def test_split_end_to_end(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    provision_mask(deployment, platform, split, blinder_prov, 1)
    request = ProcessRequest(round_id=1, values=(0.5, 0.25, 1.0), features=FEATURES)
    signed = split.process_contribution(request)
    deployment.signing_keypair.public_key.verify(signed.signed_bytes(), signed.signature)
    mask = blinder_prov.blinding.mask_for(1, 0)
    recovered = deployment.codec.decode(
        remove_mask(list(signed.ring_payload), list(mask))
    )
    assert list(recovered) == pytest.approx([0.5, 0.25, 1.0])


def test_split_validation_rejects_poison(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    provision_mask(deployment, platform, split, blinder_prov, 1)
    request = ProcessRequest(round_id=1, values=(538.0, 0.0, 0.0), features=FEATURES)
    with pytest.raises(ValidationError):
        split.process_contribution(request)


def test_host_cannot_skip_validation(split_setup):
    """The blinding enclave only accepts ciphertext from the validation enclave."""
    deployment, platform, split, blinder_prov = split_setup
    provision_mask(deployment, platform, split, blinder_prov, 1)
    import pickle

    from repro.errors import CryptoError

    forged = pickle.dumps(
        {"round_id": 1, "values": (538.0, 0.0, 0.0), "blind": True, "confidence": 1.0}
    )
    with pytest.raises((AuthenticationError, CryptoError)):
        split.blinding.ecall("blind", forged)


def test_host_cannot_replay_intermediate(split_setup):
    """Sequence numbers stop the host replaying a validated payload."""
    deployment, platform, split, blinder_prov = split_setup
    provision_mask(deployment, platform, split, blinder_prov, 1)
    request = ProcessRequest(round_id=1, values=(0.5, 0.25, 1.0), features=FEATURES)
    wire1 = split.validation.ecall("validate", request)
    split.blinding.ecall("blind", wire1)
    with pytest.raises(AuthenticationError):
        split.blinding.ecall("blind", wire1)


def test_pairing_rejects_wrong_measurement(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    offer = split.validation.ecall("offer_pairing", "rogue-link")
    with pytest.raises(AttestationError):
        split.signing.ecall(
            "accept_pairing", "rogue-link", offer, b"\x00" * 32
        )


def test_pairing_rejects_cross_platform_report(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    other_platform = SgxPlatform(
        b"other-split-platform", attestation_service=deployment.attestation
    )
    images = build_split_images(
        deployment.vendor,
        GlimmerConfig.decode(split.validation.image.config),
    )
    other = SplitGlimmer(
        other_platform, images,
        ocall_handlers={"collect_private_data": lambda fields: PrivateContext()},
    )
    offer = other.validation.ecall("offer_pairing", "cross-link")
    with pytest.raises(AttestationError):
        split.blinding.ecall(
            "accept_pairing", "cross-link", offer, other.validation.mrenclave
        )


def test_split_uses_three_transition_pairs(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    provision_mask(deployment, platform, split, blinder_prov, 1)
    for enclave in (split.validation, split.blinding, split.signing):
        enclave.meter.reset()
    request = ProcessRequest(round_id=1, values=(0.5, 0.25, 1.0), features=FEATURES)
    split.process_contribution(request)
    ecall_cost = platform.cost_model.ecall_cycles
    assert split.transition_cycles() == 3 * ecall_cost


def test_split_unblinded_path(split_setup):
    deployment, platform, split, blinder_prov = split_setup
    request = ProcessRequest(
        round_id=9, values=(0.5, 0.25, 1.0), features=FEATURES, blind=False
    )
    signed = split.process_contribution(request)
    assert not signed.blinded
    assert signed.plain_payload == (0.5, 0.25, 1.0)
    deployment.signing_keypair.public_key.verify(signed.signed_bytes(), signed.signature)


def test_split_rate_limit_uses_monotonic_counter(split_setup):
    """A rate-limited split Glimmer counts across validation-enclave restarts."""
    deployment, platform, split, blinder_prov = split_setup
    from repro.core.glimmer import GlimmerConfig, features_digest
    from repro.core.split import build_split_images
    from repro.core.validation import PrivateContext as PC

    config = GlimmerConfig(
        predicate_spec="chain:range,0.0,1.0+rate,1",
        service_identity=deployment.service_identity.public_key,
        blinder_identity=deployment.blinder_identity.public_key,
        features_digest=features_digest(FEATURES),
    )
    images = build_split_images(deployment.vendor, config)
    rate_platform = SgxPlatform(
        b"rate-split-platform", attestation_service=deployment.attestation
    )
    rated = SplitGlimmer(
        rate_platform, images,
        ocall_handlers={"collect_private_data": lambda fields: PC()},
    )
    request = ProcessRequest(
        round_id=1, values=(0.5, 0.25, 1.0), features=FEATURES, blind=False
    )
    # First validation passes the rate limit...
    rated.validation.ecall("validate", request)
    # ...a second attempt is rejected...
    with pytest.raises(ValidationError):
        rated.validation.ecall("validate", request)
    # ...and restarting the validation enclave does not reset the count.
    rated.validation.destroy()
    rated.validation = rate_platform.load_enclave(
        images.validation,
        ocall_handlers={"collect_private_data": lambda fields: PC()},
    )
    with pytest.raises(ValidationError):
        rated.validation.ecall("validate", request)
