"""Failure injection on the Glimmer-as-a-service path (§4.2).

The remote deployment adds a hostile network between the client and its
Glimmer; these tests verify each failure lands where the design says:
drops surface as transport errors, replays die inside the enclave (the
handshake session is single-use), and eavesdroppers hold only ciphertext.
"""

import pytest

from repro.core.remote import IoTClient, RemoteGlimmerHost
from repro.core.validation import PrivateContext
from repro.errors import NetworkError, ProtocolError
from repro.experiments.common import Deployment, GLIMMER_NAME
from repro.network.adversary import DropAdversary, EavesdropAdversary
from repro.network.clock import LAN_LATENCY
from repro.network.transport import Network


@pytest.fixture
def gaas():
    deployment = Deployment.build(
        num_users=2, seed=b"gaas-failure-tests", provision_clients=False
    )
    network = Network(seed=b"gaas-failure-net", latency=LAN_LATENCY)
    host = RemoteGlimmerHost(
        "host", deployment.image, deployment.attestation, network, b"host"
    )
    host.provision_signing_key(deployment.service_provisioner)
    deployment.blinder_provisioner.open_round(1, 2, len(deployment.features))
    deployment.service.open_round(1, 2)
    host.provision_mask(deployment.blinder_provisioner, 1, 0)
    host.provision_mask(deployment.blinder_provisioner, 1, 1)
    client = IoTClient(
        "iot", network, deployment.attestation, deployment.registry,
        GLIMMER_NAME, b"iot", group=deployment.group,
    )
    return deployment, network, host, client


def _contribute(deployment, client, party_index=0):
    return client.contribute_via(
        "host",
        1,
        [0.5] * len(deployment.features),
        deployment.features.bigrams,
        PrivateContext(),
        party_index=party_index,
    )


def test_dropped_attestation_request_surfaces(gaas):
    deployment, network, host, client = gaas
    network.interpose(DropAdversary(drop_kinds={"attest-glimmer"}))
    with pytest.raises(NetworkError):
        _contribute(deployment, client)


def test_dropped_contribution_surfaces(gaas):
    deployment, network, host, client = gaas
    network.interpose(DropAdversary(drop_kinds={"remote-contribution"}))
    with pytest.raises(NetworkError):
        _contribute(deployment, client)


def test_recovery_after_transient_drop(gaas):
    """After the network heals, a fresh attempt succeeds (new session)."""
    deployment, network, host, client = gaas
    drop = DropAdversary(drop_kinds={"remote-contribution"})
    network.interpose(drop)
    with pytest.raises(NetworkError):
        _contribute(deployment, client, party_index=0)
    network.clear_adversaries()
    signed = _contribute(deployment, client, party_index=1)
    assert deployment.service.submit(1, signed)


def test_replayed_ciphertext_rejected_by_enclave(gaas):
    """The handshake session is consumed on first use; a replay of the
    captured ciphertext cannot be decrypted under any session."""
    deployment, network, host, client = gaas
    spy = EavesdropAdversary()
    network.interpose(spy)
    _contribute(deployment, client, party_index=0)
    session_id, dh_public, ciphertext = spy.captured_payloads(
        "remote-contribution"
    )[0]
    with pytest.raises(ProtocolError):
        host.glimmer.ecall("process_remote", session_id, dh_public, ciphertext)


def test_eavesdropper_never_sees_plaintext_values(gaas):
    deployment, network, host, client = gaas
    spy = EavesdropAdversary()
    network.interpose(spy)
    value = 0.8125  # exactly representable; encoded form is predictable
    client.contribute_via(
        "host", 1, [value] * len(deployment.features),
        deployment.features.bigrams, PrivateContext(), party_index=0,
    )
    encoded_value = deployment.codec.encode([value])[0].to_bytes(8, "big")
    for message in spy.captured:
        payload = message.payload
        if isinstance(payload, tuple) and len(payload) == 3:
            assert encoded_value not in payload[2]


def test_session_ids_never_reused_by_host(gaas):
    deployment, network, host, client = gaas
    offers = {host._attested_offer("a").session_id for __ in range(10)}
    assert len(offers) == 10
