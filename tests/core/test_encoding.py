"""Tests for canonical encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    decode_float_vector,
    decode_public_key,
    decode_ring_vector,
    encode_float_vector,
    encode_public_key,
    encode_ring_vector,
    group_by_name,
)
from repro.crypto.dh import OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import ConfigurationError


def test_float_vector_roundtrip():
    values = [0.0, 1.5, -2.25, 1e10, -1e-10]
    assert decode_float_vector(encode_float_vector(values)) == values


def test_float_vector_empty():
    assert decode_float_vector(encode_float_vector([])) == []


def test_float_vector_truncated():
    blob = encode_float_vector([1.0, 2.0])
    with pytest.raises(ConfigurationError):
        decode_float_vector(blob[:-1])
    with pytest.raises(ConfigurationError):
        decode_float_vector(b"\x00\x00")


def test_ring_vector_roundtrip():
    values = [0, 1, (1 << 64) - 1, 12345678901234567890 % (1 << 64)]
    assert decode_ring_vector(encode_ring_vector(values)) == values


def test_ring_vector_wraps_modulo():
    assert decode_ring_vector(encode_ring_vector([1 << 64])) == [0]


def test_ring_vector_malformed():
    with pytest.raises(ConfigurationError):
        decode_ring_vector(b"\x00")
    blob = encode_ring_vector([1, 2])
    with pytest.raises(ConfigurationError):
        decode_ring_vector(blob + b"\x00")


def test_public_key_roundtrip():
    for group in (TEST_GROUP, OAKLEY_GROUP_1):
        key = SchnorrKeyPair.generate(HmacDrbg(b"enc"), group).public_key
        decoded = decode_public_key(encode_public_key(key))
        assert decoded.element == key.element
        assert decoded.group.name == key.group.name


def test_public_key_malformed():
    with pytest.raises(ConfigurationError):
        decode_public_key(b"\x00")
    key = SchnorrKeyPair.generate(HmacDrbg(b"enc"), TEST_GROUP).public_key
    blob = encode_public_key(key)
    with pytest.raises(ConfigurationError):
        decode_public_key(blob[:-1])


def test_public_key_unknown_group():
    key = SchnorrKeyPair.generate(HmacDrbg(b"enc"), TEST_GROUP).public_key
    blob = encode_public_key(key)
    name = b"nonexistent-group"
    forged = len(name).to_bytes(2, "big") + name + blob[-256:]
    with pytest.raises(ConfigurationError):
        decode_public_key(forged)


def test_group_by_name():
    assert group_by_name("test-64bit") is TEST_GROUP
    assert group_by_name("oakley-group-1") is OAKLEY_GROUP_1
    with pytest.raises(ConfigurationError):
        group_by_name("nope")


@settings(max_examples=50)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=32))
def test_float_vector_roundtrip_property(values):
    assert decode_float_vector(encode_float_vector(values)) == values


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=32))
def test_ring_vector_roundtrip_property(values):
    assert decode_ring_vector(encode_ring_vector(values)) == values
