"""FaultyStorageBackend: each write pathology, on schedule, composable."""

from __future__ import annotations

import pytest

from repro.errors import StorageFaultError
from repro.faults import (
    ACTION_CORRUPT,
    ACTION_IO_ERROR,
    ACTION_LOST_AFTER_ACK,
    ACTION_TORN_WRITE,
    SITE_AUDIT_APPEND,
    SITE_QUEUE_ADMIT,
    SITE_STORAGE_APPEND,
    SITE_STORAGE_PUT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyStorageBackend,
    corrupt_value,
    is_torn,
)
from repro.service.storage import MemoryBackend


def _faulty(*specs, rates=None):
    inner = MemoryBackend()
    plan = FaultPlan(specs=tuple(specs), rates=rates or {})
    return inner, FaultyStorageBackend(inner, FaultInjector(plan))


def test_io_error_raises_and_writes_nothing():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_IO_ERROR)
    )
    with pytest.raises(StorageFaultError):
        backend.put("s", "k", 1)
    assert inner.get("s", "k") is None
    backend.put("s", "k", 2)  # the spec is spent: next write lands
    assert backend.get("s", "k") == 2


def test_torn_write_raises_but_leaves_garbage():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_TORN_WRITE)
    )
    with pytest.raises(StorageFaultError):
        backend.put("s", "k", {"real": True})
    assert is_torn(inner.get("s", "k")), "torn marker persisted"
    backend.put("s", "k", {"real": True})  # a retry overwrites the wreck
    assert backend.get("s", "k") == {"real": True}


def test_lost_after_ack_acks_but_never_writes():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_LOST_AFTER_ACK)
    )
    backend.put("s", "k", 1)  # no exception: the storage lied
    assert inner.get("s", "k") is None


def test_corrupt_acks_a_doctored_record():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_CORRUPT)
    )
    backend.put("s", "k", {"digest": "abcd", "x": 1})
    stored = inner.get("s", "k")
    assert stored["x"] == 1
    assert stored["digest"] == "dcba", "digest flipped"
    assert corrupt_value({"digest": "abcd"})["digest"] == "dcba"


def test_append_lost_after_ack_returns_a_plausible_seq():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_APPEND, action=ACTION_LOST_AFTER_ACK)
    )
    backend.append("log", {"n": 0})  # lost
    assert backend.append("log", {"n": 1}) == 0
    assert [e["n"] for e in inner.read_log("log")] == [1]


def test_specific_sites_aim_at_one_subsystem():
    inner, backend = _faulty(
        FaultSpec(site=SITE_QUEUE_ADMIT, action=ACTION_LOST_AFTER_ACK),
        FaultSpec(site=SITE_AUDIT_APPEND, action=ACTION_CORRUPT),
    )
    backend.put("service", "config", {"fine": True})  # generic: untouched
    assert inner.get("service", "config") == {"fine": True}
    backend.put("queue/alpha", "s0", {"state": "pending"})  # admit: lost
    assert inner.get("queue/alpha", "s0") is None
    backend.append("round-journal", {"status": "opened"})  # journal: fine
    backend.append("audit", {"digest": "ff00"})  # audit: corrupted
    assert inner.read_log("round-journal") == [{"status": "opened"}]
    assert inner.read_log("audit")[0]["digest"] == "00ff"


def test_at_hit_counts_matching_visits():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_IO_ERROR, at_hit=3)
    )
    backend.put("s", "a", 1)
    backend.put("s", "b", 2)
    with pytest.raises(StorageFaultError):
        backend.put("s", "c", 3)
    assert inner.get("s", "c") is None
    assert backend.get("s", "a") == 1


def test_reads_and_deletes_pass_through():
    inner, backend = _faulty(
        FaultSpec(site=SITE_STORAGE_PUT, action=ACTION_IO_ERROR, at_hit=99)
    )
    inner.put("s", "k", 7)
    assert backend.get("s", "k") == 7
    assert backend.keys("s") == ["k"]
    assert backend.items("s") == [("k", 7)]
    assert backend.delete("s", "k") is True
    assert backend.kind == inner.kind
