"""Unit tests for repro.faults: specs, plans, injector determinism."""

from repro.crypto.drbg import HmacDrbg
from repro.faults import (
    ACTION_CRASH,
    ACTION_DROP,
    ACTION_KILL,
    DEFAULT_ACTIONS,
    PROBABILISTIC_SITES,
    SITE_BLINDER,
    SITE_CLIENT_POST_SIGN,
    SITE_ECALL,
    SITE_REQUEST,
    SITE_RESPONSE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


def test_spec_matches_on_all_filters():
    spec = FaultSpec(
        site=SITE_CLIENT_POST_SIGN,
        target="u3",
        round_id=7,
        phase="collect",
        kind="client/contribute",
    )
    context = {
        "client_id": "u3",
        "round_id": 7,
        "phase": "collect",
        "kind": "client/contribute",
    }
    assert spec.matches(context)
    for key, wrong in (
        ("client_id", "u4"),
        ("round_id", 8),
        ("phase", "provision"),
        ("kind", "other"),
    ):
        assert not spec.matches({**context, key: wrong})


def test_spec_default_action_comes_from_site():
    assert FaultSpec(site=SITE_ECALL).resolved_action() == ACTION_KILL
    assert FaultSpec(site=SITE_ECALL, action=ACTION_DROP).resolved_action() == (
        ACTION_DROP
    )


def test_scheduled_spec_fires_once_at_nth_hit():
    plan = FaultPlan(specs=(FaultSpec(site=SITE_BLINDER, at_hit=3),))
    injector = FaultInjector(plan)
    assert injector.fire(SITE_BLINDER) is None
    assert injector.fire(SITE_BLINDER) is None
    assert injector.fire(SITE_BLINDER) == ACTION_CRASH
    assert injector.fire(SITE_BLINDER) is None  # spent: never fires again
    assert len(injector.fired) == 1


def test_spec_filters_gate_hits():
    plan = FaultPlan(specs=(FaultSpec(site=SITE_CLIENT_POST_SIGN, target="u1"),))
    injector = FaultInjector(plan)
    assert injector.fire(SITE_CLIENT_POST_SIGN, client_id="u0") is None
    assert injector.fire(SITE_CLIENT_POST_SIGN, client_id="u1") == ACTION_CRASH


def test_rate_zero_site_never_draws_or_fires():
    plan = FaultPlan(rates={SITE_REQUEST: 1.0})
    injector = FaultInjector(plan, seed=b"x")
    # A visit to an unrated site consumes no randomness: the rated site's
    # outcome is identical with or without interleaved unrated visits.
    twin = FaultInjector(plan, seed=b"x")
    for _ in range(20):
        injector.fire(SITE_RESPONSE)  # rate 0.0 — no draw
    assert injector.fire(SITE_REQUEST) == ACTION_DROP
    assert twin.fire(SITE_REQUEST) == ACTION_DROP
    assert injector.fired_log() == twin.fired_log()


def test_same_seed_same_visits_identical_firings():
    plan = FaultPlan(
        specs=(FaultSpec(site=SITE_BLINDER, phase="collect"),),
        rates={SITE_REQUEST: 0.3, SITE_RESPONSE: 0.2},
    )
    logs = []
    for _ in range(2):
        injector = FaultInjector(plan, seed=b"replay-me")
        for i in range(50):
            injector.fire(SITE_REQUEST, kind=f"k{i % 3}")
            injector.fire(SITE_RESPONSE, kind=f"k{i % 3}")
            injector.fire(SITE_BLINDER, phase="provision" if i % 2 else "collect")
        logs.append(injector.fired_log())
    assert logs[0] == logs[1]
    assert len(logs[0]) > 1


def test_different_seeds_diverge():
    # Compare the per-visit firing pattern, not fired_log(): log entries
    # carry no visit index, so two logs compare equal whenever the same
    # *number* of faults fired — a coincidence different seeds can hit.
    plan = FaultPlan(rates={SITE_REQUEST: 0.5})
    a = FaultInjector(plan, seed=b"a")
    b = FaultInjector(plan, seed=b"b")
    pattern_a = [a.fire(SITE_REQUEST) is not None for _ in range(40)]
    pattern_b = [b.fire(SITE_REQUEST) is not None for _ in range(40)]
    assert pattern_a != pattern_b


def test_fired_fault_serializes():
    plan = FaultPlan(rates={SITE_REQUEST: 1.0})
    injector = FaultInjector(plan)
    injector.fire(SITE_REQUEST, kind="contribution/submit", sender="c")
    entry = injector.fired[0].as_dict()
    assert entry["site"] == SITE_REQUEST
    assert entry["action"] == ACTION_DROP
    assert entry["context"]["kind"] == "contribution/submit"


def test_sample_is_deterministic_per_rng_seed():
    plans = [
        FaultPlan.sample(
            HmacDrbg(b"plan-seed"), 0.1, clients=("u0", "u1"), rounds=(1, 2)
        )
        for _ in range(2)
    ]
    assert plans[0] == plans[1]


def test_sample_rates_scale_with_fault_rate():
    rng = HmacDrbg(b"scales")
    plan = FaultPlan.sample(rng, 0.1, clients=("u0",))
    for site, rate in plan.rates.items():
        assert site in PROBABILISTIC_SITES
        assert 0.05 <= rate <= 0.15
    zero = FaultPlan.sample(HmacDrbg(b"zero"), 0.0, clients=("u0",))
    assert all(rate == 0.0 for rate in zero.rates.values())
    assert zero.specs == ()


def test_sample_scheduled_specs_target_known_entities():
    found_client_spec = found_blinder_spec = False
    for i in range(30):
        plan = FaultPlan.sample(
            HmacDrbg(f"sweep-{i}".encode()), 0.2, clients=("u0", "u1"), rounds=(5,)
        )
        for spec in plan.specs:
            if spec.site == SITE_BLINDER:
                found_blinder_spec = True
                assert spec.phase in ("provision", "collect", "finalize")
            else:
                found_client_spec = True
                assert spec.target in ("u0", "u1")
                assert spec.round_id == 5
    assert found_client_spec and found_blinder_spec


def test_default_actions_cover_every_site():
    for site in PROBABILISTIC_SITES:
        assert site in DEFAULT_ACTIONS
