"""Crash-recovery semantics: checkpoints, failover, reconciliation, backoff."""

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import NetworkError, RoundAbortedError
from repro.experiments.common import Deployment
from repro.faults import (
    SITE_BLINDER,
    SITE_CLIENT_POST_SIGN,
    SITE_CLIENT_PRE_SIGN,
    SITE_RESPONSE,
    SITE_SEAL_LOSS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.network.adversary import DropAdversary
from repro.network.transport import Network
from repro.runtime.engine import RoundEngine, _RoundRecord
from repro.runtime.messages import KIND_QUERY_SUBMISSION, KIND_SUBMIT
from repro.runtime.telemetry import OUTCOME_ACCEPTED, OUTCOME_CRASHED


@pytest.fixture
def deployment():
    return Deployment.build(
        num_users=4, seed=b"recovery-tests", sentences_per_user=12
    )


def _cohort(deployment):
    user_ids = [user.user_id for user in deployment.corpus.users]
    return user_ids, deployment.local_vectors()


def _exact_mean(deployment, vectors, accepted):
    encoded = [deployment.codec.encode(list(vectors[u])) for u in accepted]
    return deployment.codec.decode(
        deployment.codec.sum_vectors(encoded)
    ) / len(encoded)


def _inject(deployment, *specs):
    injector = FaultInjector(
        FaultPlan(specs=tuple(specs)), seed=b"recovery-injector"
    )
    deployment.enable_faults(injector)
    return injector


# ------------------------------------------------------------ client crashes


def test_pre_sign_crash_recovers_from_checkpoint_and_contributes(deployment):
    user_ids, vectors = _cohort(deployment)
    victim = user_ids[1]
    _inject(
        deployment, FaultSpec(site=SITE_CLIENT_PRE_SIGN, target=victim, round_id=1)
    )
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams
    )
    # The enclave died before signing; a restart restored the sealed
    # round checkpoint (mask unused, counter unchanged) and the retried
    # contribution went through — everyone counts, nothing repaired.
    assert report.outcomes[victim] == OUTCOME_ACCEPTED
    assert report.client_restarts == 1
    assert report.masks_repaired == 0
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, user_ids)
    )


def test_post_sign_crash_cannot_double_submit(deployment):
    user_ids, vectors = _cohort(deployment)
    victim = user_ids[2]
    _inject(
        deployment, FaultSpec(site=SITE_CLIENT_POST_SIGN, target=victim, round_id=1)
    )
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams
    )
    # The Glimmer signed (advancing the per-round monotonic counter) and
    # the mask was consumed in-enclave, but nothing reached the service.
    # The restarted enclave must refuse the now-stale checkpoint —
    # restoring it would resurrect a consumed mask and allow a second
    # signed submission for the same slot.  The slot is repaired by
    # reveal instead, and the aggregate is exact over the others.
    survivors = [u for u in user_ids if u != victim]
    assert report.outcomes[victim] == OUTCOME_CRASHED
    assert report.masks_repaired == 1
    assert report.num_contributions == len(survivors)
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, survivors)
    )


def test_post_sign_crash_restart_refuses_stale_checkpoint(deployment):
    """The rollback check, observed directly at the client."""
    user_ids, vectors = _cohort(deployment)
    victim_id = user_ids[0]
    victim = deployment.clients[victim_id]
    deployment.engine.open_round(1, len(user_ids), len(deployment.features))
    for index, user_id in enumerate(user_ids):
        deployment.engine.provision_mask(user_id, 1, index)
    # Sign (consumes the mask, bumps the signing counter), then crash
    # before submitting anything.
    victim.contribute(1, list(vectors[victim_id]), deployment.features.bigrams)
    victim.crash()
    assert victim.crashed
    restored = victim.restart()
    assert restored == []  # stale checkpoint refused: counter moved on
    assert not victim.crashed


def test_seal_loss_degrades_to_reveal_repair(deployment):
    user_ids, vectors = _cohort(deployment)
    victim = user_ids[0]
    _inject(
        deployment,
        FaultSpec(site=SITE_CLIENT_PRE_SIGN, target=victim, round_id=1),
        FaultSpec(site=SITE_SEAL_LOSS, target=victim, round_id=1),
    )
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams
    )
    # The crash was recoverable in principle, but the host lost the
    # sealed checkpoint during restart: the client cannot rejoin the
    # round, and its slot is repaired by reveal.
    survivors = [u for u in user_ids if u != victim]
    assert report.outcomes[victim] == OUTCOME_CRASHED
    assert report.masks_repaired == 1
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, survivors)
    )


# ------------------------------------------------------------ blinder failover


def test_blinder_crash_and_restart_still_reveals_masks(deployment):
    user_ids, vectors = _cohort(deployment)
    provisioner = deployment.blinder_provisioner
    deployment.engine.open_round(1, len(user_ids), len(deployment.features))
    for index, user_id in enumerate(user_ids):
        deployment.engine.provision_mask(user_id, 1, index)
    provisioner.crash()
    assert not provisioner.has_round(1)
    recovered = provisioner.restart()
    assert 1 in recovered
    # Only some clients contribute; the restarted blinder must reveal the
    # silent parties' masks from its unsealed round state.
    contributors = user_ids[:2]
    for user_id in contributors:
        deployment.engine.contribute(
            user_id, 1, list(vectors[user_id]), deployment.features.bigrams
        )
    report = deployment.engine.finalize_round(1)
    assert report.masks_repaired == len(user_ids) - len(contributors)
    assert np.array_equal(
        np.asarray(report.aggregate),
        _exact_mean(deployment, vectors, contributors),
    )


def test_scheduled_blinder_crash_at_finalize_boundary(deployment):
    user_ids, vectors = _cohort(deployment)
    _inject(deployment, FaultSpec(site=SITE_BLINDER, phase="finalize"))
    report = deployment.engine.run_round(
        1,
        user_ids,
        vectors,
        deployment.features.bigrams,
        collect_dropouts=user_ids[:1],
    )
    assert deployment.blinder_provisioner.restarts == 1
    survivors = user_ids[1:]
    assert report.masks_repaired == 1
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, survivors)
    )


# -------------------------------------------------------------- reconciliation


def test_lost_submit_response_is_reconciled_not_double_counted(deployment):
    user_ids, vectors = _cohort(deployment)
    # Drop exactly the first submit response: the service accepted the
    # contribution but the client never learned it.
    _inject(deployment, FaultSpec(site=SITE_RESPONSE, kind=KIND_SUBMIT))
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams
    )
    assert report.retries >= 1
    assert report.masks_repaired == 0
    assert report.num_contributions == len(user_ids)
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, user_ids)
    )


def test_unreconcilable_submission_aborts_round(deployment):
    user_ids, vectors = _cohort(deployment)
    engine = deployment.engine
    # Every submit response AND every reconciliation-query response is
    # lost: the fate of the first user's submission is unknowable.
    specs = [
        FaultSpec(site=SITE_RESPONSE, kind=KIND_SUBMIT, at_hit=1)
        for _ in range(engine.max_attempts)
    ] + [
        FaultSpec(site=SITE_RESPONSE, kind=KIND_QUERY_SUBMISSION, at_hit=1)
        for _ in range(engine.max_attempts)
    ]
    _inject(deployment, *specs)
    with pytest.raises(RoundAbortedError, match="reconciled"):
        engine.run_round(1, user_ids[:1], vectors, deployment.features.bigrams)
    report = engine.reports[1]
    assert report.aborted
    assert report.aggregate is None
    assert report.phases  # window closed into the report
    engine.abandon_round(1)


def test_abort_keeps_partial_report_in_telemetry(deployment):
    user_ids, vectors = _cohort(deployment)
    deployment.network.interpose(DropAdversary(drop_kinds={KIND_SUBMIT}))
    with pytest.raises(RoundAbortedError) as excinfo:
        deployment.engine.run_round(
            1, user_ids, vectors, deployment.features.bigrams
        )
    report = excinfo.value.report
    assert report.aborted and report.abort_reason
    assert deployment.engine.reports[1] is report
    assert report.participants == tuple(user_ids)
    assert report.messages_sent > 0
    assert [p.name for p in report.phases] == ["open", "provision", "collect"]
    payload = report.as_dict()
    assert payload["aborted"] is True
    assert payload["aggregate"] is None


# ------------------------------------------------------------------- backoff


def test_backoff_is_capped_and_jittered():
    network = Network(seed=b"backoff-net")
    network.register("svc", {"echo": lambda m: m.payload})
    network.register("eng", {})
    network.interpose(DropAdversary(drop_rate=1.0))
    engine_net = network  # all attempts drop: 4 backoffs at 8,16,16,16
    engine = RoundEngine.__new__(RoundEngine)
    engine.network = engine_net
    engine.max_attempts = 5
    engine.backoff_ms = 8.0
    engine.max_backoff_ms = 16.0
    engine._retry_rng = HmacDrbg(b"jitter-seed", personalization="retry-jitter")
    record = _RoundRecord(network, 1, 0, True)
    start = network.clock.now_ms()
    with pytest.raises(NetworkError):
        engine.call_with_retry(record, "eng", "svc", "echo", b"x")
    waited = network.clock.now_ms() - start
    assert record.retries == 4
    # Deterministic bounds: each wait is delay + jitter in [0, delay).
    assert 56.0 <= waited < 112.0


def test_backoff_jitter_is_deterministic_per_seed():
    waits = []
    for _ in range(2):
        network = Network(seed=b"backoff-net")
        network.register("svc", {"echo": lambda m: m.payload})
        network.register("eng", {})
        network.interpose(DropAdversary(drop_rate=1.0))
        engine = RoundEngine.__new__(RoundEngine)
        engine.network = network
        engine.max_attempts = 4
        engine.backoff_ms = 8.0
        engine.max_backoff_ms = 64.0
        engine._retry_rng = HmacDrbg(b"jitter-seed", personalization="retry-jitter")
        record = _RoundRecord(network, 1, 0, True)
        with pytest.raises(NetworkError):
            engine.call_with_retry(record, "eng", "svc", "echo", b"x")
        waits.append(network.clock.now_ms())
    assert waits[0] == waits[1]
