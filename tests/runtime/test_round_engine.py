"""Unit tests for the RoundEngine: lifecycle, dropout, drops, telemetry."""

import json

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import NetworkError, ProtocolError, RoundAbortedError
from repro.experiments.common import Deployment
from repro.network.adversary import DropAdversary
from repro.runtime.messages import KIND_SUBMIT
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DROPOUT,
    OUTCOME_SUBMIT_FAILED,
)


@pytest.fixture
def deployment():
    return Deployment.build(num_users=5, seed=b"runtime-tests", sentences_per_user=15)


def _cohort(deployment):
    user_ids = [user.user_id for user in deployment.corpus.users]
    return user_ids, deployment.local_vectors()


def test_clean_round_is_exact_with_full_telemetry(deployment):
    user_ids, vectors = _cohort(deployment)
    before_delivered = deployment.network.messages_delivered
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams
    )
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    assert float(np.max(np.abs(report.aggregate - truth))) < 1e-3

    # Outcomes: everyone accepted, nothing repaired.
    assert set(report.outcomes.values()) == {OUTCOME_ACCEPTED}
    assert report.survivors == tuple(user_ids)
    assert report.masks_repaired == 0
    assert report.num_contributions == len(user_ids)

    # Transport counters match the network's own accounting.
    delivered = deployment.network.messages_delivered - before_delivered
    assert report.messages_sent == delivered
    assert report.messages_dropped == 0
    assert report.retries == 0
    assert report.bytes_on_wire > 0
    assert report.latency_ms > 0

    # Enclave counters: 2 ecalls to provision + 1 to contribute, per client.
    assert report.ecalls == 3 * len(user_ids)
    assert report.enclave_transition_cycles > 0

    # Phases cover the whole lifecycle.
    assert [phase.name for phase in report.phases] == [
        "open", "provision", "collect", "finalize",
    ]
    assert sum(phase.messages for phase in report.phases) == report.messages_sent


def test_dropout_below_threshold_repairs_and_stays_exact(deployment):
    user_ids, vectors = _cohort(deployment)
    dropouts = user_ids[:2]
    report = deployment.engine.run_round(
        1,
        user_ids,
        vectors,
        deployment.features.bigrams,
        dropouts=dropouts,
        recovery_threshold=0.5,
    )
    survivors = user_ids[2:]
    truth = np.mean(np.stack([vectors[u] for u in survivors]), axis=0)
    assert float(np.max(np.abs(report.aggregate - truth))) < 1e-3
    assert report.masks_repaired == len(dropouts)
    assert report.dropouts == tuple(dropouts)
    for user_id in dropouts:
        assert report.outcomes[user_id] == OUTCOME_DROPOUT


def test_dropout_above_threshold_aborts(deployment):
    user_ids, vectors = _cohort(deployment)
    with pytest.raises(RoundAbortedError):
        deployment.engine.run_round(
            1,
            user_ids,
            vectors,
            deployment.features.bigrams,
            dropouts=user_ids[:3],
            recovery_threshold=0.5,
        )


def test_transport_drops_are_retried_and_round_stays_exact(deployment):
    """The acceptance criterion: 10% drop rate + dropout, exact aggregate."""
    user_ids, vectors = _cohort(deployment)
    deployment.network.interpose(
        DropAdversary(drop_rate=0.1, rng=HmacDrbg(b"runtime-drops"))
    )
    dropouts = user_ids[:1]
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams, dropouts=dropouts
    )
    survivors = [u for u in user_ids if u not in dropouts]
    truth = np.mean(np.stack([vectors[u] for u in survivors]), axis=0)
    assert float(np.max(np.abs(report.aggregate - truth))) < 1e-3
    assert report.messages_dropped > 0
    # Dropped *retried* calls each show up as a retry; best-effort sends
    # (round-close notifications) are dropped without retry by design, so
    # no fixed ordering between the two counters is guaranteed.
    assert report.retries > 0
    assert report.survivors == tuple(survivors)


def test_retry_exhaustion_raises_network_error(deployment):
    deployment.network.interpose(DropAdversary(drop_rate=1.0))
    with pytest.raises(NetworkError):
        deployment.engine.open_round(1, 5, len(deployment.features))


def test_lost_submissions_abort_instead_of_publishing_nothing(deployment):
    user_ids, vectors = _cohort(deployment)
    deployment.network.interpose(DropAdversary(drop_kinds={KIND_SUBMIT}))
    with pytest.raises(RoundAbortedError):
        deployment.engine.run_round(
            1, user_ids, vectors, deployment.features.bigrams
        )
    record = deployment.engine.round_record(1)
    assert set(record.outcomes.values()) == {OUTCOME_SUBMIT_FAILED}
    deployment.engine.abandon_round(1)
    with pytest.raises(ProtocolError):
        deployment.engine.round_record(1)


def test_unknown_client_is_rejected(deployment):
    deployment.engine.open_round(1, 1, len(deployment.features))
    with pytest.raises(ProtocolError):
        deployment.engine.provision_mask("nobody", 1, 0)


def test_duplicate_round_is_rejected(deployment):
    deployment.engine.open_round(1, 2, len(deployment.features))
    with pytest.raises(ProtocolError):
        deployment.engine.open_round(1, 2, len(deployment.features))


def test_report_renders_and_serializes(deployment):
    user_ids, vectors = _cohort(deployment)
    report = deployment.engine.run_round(
        1, user_ids, vectors, deployment.features.bigrams, dropouts=user_ids[:1]
    )
    rendered = report.table().render()
    assert "messages sent" in rendered
    assert "enclave transition cycles" in rendered
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["round_id"] == 1
    assert payload["masks_repaired"] == 1
    assert payload["messages_sent"] == report.messages_sent
    assert len(payload["aggregate"]) == len(deployment.features)


def test_honest_round_stores_last_report(deployment):
    user_ids, vectors = _cohort(deployment)
    aggregate = deployment.honest_round(1)
    report = deployment.last_report
    assert report is not None
    assert report.round_id == 1
    assert np.array_equal(report.aggregate, aggregate)
    assert report.messages_sent > 0
    assert report.bytes_on_wire > 0
    assert report.latency_ms > 0
    assert report.enclave_transition_cycles > 0


def test_local_vectors_are_cached_and_participant_scoped(deployment):
    user_ids = [user.user_id for user in deployment.corpus.users]
    subset = deployment.local_vectors(user_ids[:2])
    assert set(subset) == set(user_ids[:2])
    # Only the requested users were trained and cached.
    assert set(deployment._vector_cache) == set(user_ids[:2])
    cached = deployment._vector_cache[user_ids[0]]
    everyone = deployment.local_vectors()
    assert everyone[user_ids[0]] is cached
    assert set(deployment._vector_cache) == set(user_ids)
