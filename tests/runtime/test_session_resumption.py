"""Cross-round DH session resumption: same outcomes, fewer handshakes.

The session cache is an opt-in transport optimization — with it on, every
round must produce the same accept/reject decisions and the same
aggregate as the uncached deployment, while the telemetry shows repeat
clients resuming instead of re-running full handshakes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto import group_ops
from repro.experiments.common import Deployment

NUM_USERS = 4
ROUNDS = (1, 2, 3)


@pytest.fixture(autouse=True)
def _clean_group_ops_state():
    group_ops.reset_tables()
    yield
    group_ops.reset_tables()


def _deployments():
    cached = Deployment.build(
        num_users=NUM_USERS, seed=b"session-resume", session_resumption=True
    )
    plain = Deployment.build(num_users=NUM_USERS, seed=b"session-resume")
    return cached, plain


def test_cached_rounds_match_uncached_and_resume():
    cached, plain = _deployments()
    for round_id in ROUNDS:
        aggregate_cached = cached.honest_round(round_id)
        aggregate_plain = plain.honest_round(round_id)
        np.testing.assert_array_equal(aggregate_cached, aggregate_plain)
        assert (
            cached.last_report.num_contributions
            == plain.last_report.num_contributions
        )
        assert cached.last_report.survivors == plain.last_report.survivors
        assert plain.last_report.handshakes_resumed == 0
        if round_id == 1:
            assert cached.last_report.handshakes_resumed == 0
        else:
            # every repeat client resumes its blinding-mask handshake
            assert cached.last_report.handshakes_resumed >= NUM_USERS
    counters = cached.blinder_provisioner.session_cache.counters()
    assert counters["stores"] == NUM_USERS
    assert counters["hits"] >= NUM_USERS * (len(ROUNDS) - 1)


def test_glimmer_restart_heals_by_full_handshake():
    """A restarted Glimmer lost its session keys; the resumed delivery
    fails to open, the client evicts the cache entry, and the retry runs
    the full handshake — the round still completes correctly."""
    cached, plain = _deployments()
    np.testing.assert_array_equal(
        cached.honest_round(1), plain.honest_round(1)
    )
    victim = cached.corpus.users[0].user_id
    cached.clients[victim].restart()
    cache = cached.blinder_provisioner.session_cache
    evictions_before = cache.counters()["evictions"]
    np.testing.assert_array_equal(
        cached.honest_round(2), plain.honest_round(2)
    )
    assert cache.counters()["evictions"] == evictions_before + 1
    # the victim re-established: round 3 resumes for everyone again
    np.testing.assert_array_equal(
        cached.honest_round(3), plain.honest_round(3)
    )
    assert cached.last_report.handshakes_resumed >= NUM_USERS


def test_parallel_path_disqualified_by_session_cache():
    from repro.scale.rounds import parallel_eligible

    cached, plain = _deployments()
    kwargs = dict(
        participants=[u.user_id for u in plain.corpus.users],
        blind=True,
        deadline_ms=None,
        phase_deadlines_ms=None,
        claims_by_user={},
        context_fields=(),
    )
    assert parallel_eligible(plain.engine, **kwargs)
    assert not parallel_eligible(cached.engine, **kwargs)
