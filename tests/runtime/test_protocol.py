"""The protocol monitor's state machine, violation policy, and quarantine."""

from __future__ import annotations

import json

import pytest

from repro.errors import ProtocolViolation
from repro.runtime.protocol import (
    CLOSED_ROUND_RETENTION,
    FLOOD_THRESHOLD,
    VIOLATION_EQUIVOCATION,
    VIOLATION_FLOODING,
    VIOLATION_OUT_OF_PHASE,
    VIOLATION_QUARANTINED,
    VIOLATION_REPLAY,
    ProtocolMonitor,
    Quarantine,
    ViolationRecord,
)

NONCE_A = b"a" * 16
NONCE_B = b"b" * 16


def _record(offender: str = "client:u0", kind: str = VIOLATION_REPLAY):
    return ViolationRecord(
        offender=offender, kind=kind, round_id=1, phase="collect", detail="x"
    )


# ------------------------------------------------------------------ phases


def test_phases_advance_monotonically_and_never_backward():
    monitor = ProtocolMonitor()
    assert monitor.phase(1) == "open"
    monitor.advance(1, "collect")
    assert monitor.phase(1) == "collect"
    monitor.advance(1, "provision")  # backward: ignored
    assert monitor.phase(1) == "collect"
    monitor.advance(1, "finalize")
    assert monitor.phase(1) == "finalize"
    with pytest.raises(ValueError):
        monitor.advance(1, "intermission")


def test_close_freezes_violations_and_caps_retention():
    monitor = ProtocolMonitor()
    monitor.record(1, "client:u0", VIOLATION_REPLAY, "replayed")
    violations = monitor.close(1)
    assert [v.kind for v in violations] == [VIOLATION_REPLAY]
    assert monitor.phase(1) == "closed"
    assert monitor.violations_for(1) == violations
    for round_id in range(2, CLOSED_ROUND_RETENTION + 3):
        monitor.close(round_id)
    assert monitor.violations_for(1) == ()  # aged out of retention


# ------------------------------------------------------------ submissions


def test_replay_is_recorded_but_not_rejected():
    monitor = ProtocolMonitor()
    monitor.note_accepted(1, "client:u0", 0, NONCE_A)
    monitor.check_submit(1, "client:u0", 0, NONCE_A)  # must not raise
    kinds = [v.kind for v in monitor.violations_for(1)]
    assert kinds == [VIOLATION_REPLAY]


def test_equivocation_is_rejected_with_a_typed_violation():
    monitor = ProtocolMonitor()
    monitor.note_accepted(1, "client:u0", 0, NONCE_A)
    with pytest.raises(ProtocolViolation) as exc_info:
        monitor.check_submit(1, "client:u0", 0, NONCE_B)
    assert exc_info.value.kind == VIOLATION_EQUIVOCATION
    assert exc_info.value.offender == "client:u0"
    assert VIOLATION_EQUIVOCATION in [v.kind for v in monitor.violations_for(1)]


def test_transport_retransmits_are_never_replay_evidence():
    monitor = ProtocolMonitor()
    monitor.note_accepted(1, "client:u0", 0, NONCE_A)
    monitor.check_submit(1, "client:u0", 0, NONCE_A, retransmit=True)
    monitor.check_submit(1, "client:u0", 0, NONCE_B, retransmit=True)
    assert monitor.violations_for(1) == ()


def test_fresh_nonce_after_rejection_is_not_equivocation():
    # Only *accepted* nonces count: a sender whose first try was refused
    # may retry with a new nonce without being branded a cheater.
    monitor = ProtocolMonitor()
    monitor.check_submit(1, "client:u0", 0, NONCE_A)
    monitor.check_submit(1, "client:u0", 0, NONCE_B)
    assert monitor.violations_for(1) == ()


def test_forget_slot_reopens_it_for_a_repairing_sender():
    monitor = ProtocolMonitor()
    monitor.note_accepted(1, "client:u0", 0, NONCE_A)
    monitor.forget_slot(1, 0)
    monitor.check_submit(1, "client:u1", 0, NONCE_B)  # must not raise
    assert monitor.violations_for(1) == ()


def test_submission_into_a_finalized_round_is_out_of_phase():
    monitor = ProtocolMonitor()
    monitor.advance(1, "finalize")
    with pytest.raises(ProtocolViolation) as exc_info:
        monitor.check_submit(1, "client:u0", 0, NONCE_A)
    assert exc_info.value.kind == VIOLATION_OUT_OF_PHASE


def test_flooding_threshold_records_exactly_one_violation():
    monitor = ProtocolMonitor()
    for _ in range(FLOOD_THRESHOLD + 3):
        monitor.note_rejected(1, "client:u0", "bad signature")
    flooding = [
        v for v in monitor.violations_for(1) if v.kind == VIOLATION_FLOODING
    ]
    assert len(flooding) == 1
    assert flooding[0].offender == "client:u0"


def test_quarantined_sender_is_rejected_outright():
    monitor = ProtocolMonitor()
    monitor.quarantine.block(_record(offender="client:u0"))
    with pytest.raises(ProtocolViolation) as exc_info:
        monitor.check_sender(1, "client:u0")
    assert exc_info.value.kind == VIOLATION_QUARANTINED
    monitor.check_sender(1, "client:u1")  # others unaffected


# ------------------------------------------------------------- quarantine


def test_quarantine_first_violation_wins_and_pardon_lifts():
    quarantine = Quarantine()
    first = _record(kind=VIOLATION_EQUIVOCATION)
    quarantine.block(first)
    quarantine.block(_record(kind=VIOLATION_FLOODING))
    assert quarantine.is_blocked("client:u0")
    assert quarantine.reason("client:u0") is first
    assert quarantine.blocked() == ("client:u0",)
    assert quarantine.pardon("client:u0")
    assert not quarantine.is_blocked("client:u0")
    assert not quarantine.pardon("client:u0")  # already lifted


def test_quarantine_round_trips_through_json():
    quarantine = Quarantine()
    quarantine.block(_record(offender="client:u0"))
    quarantine.block(_record(offender="blinder", kind=VIOLATION_FLOODING))
    restored = Quarantine.from_dict(
        json.loads(json.dumps(quarantine.to_dict()))
    )
    assert restored.blocked() == quarantine.blocked()
    for name in quarantine.blocked():
        assert restored.reason(name) == quarantine.reason(name)


def test_violation_record_round_trips_and_defaults():
    record = _record()
    assert ViolationRecord.from_dict(record.as_dict()) == record
    sparse = ViolationRecord.from_dict(
        {"offender": "s", "kind": "k", "round_id": 3}
    )
    assert sparse.phase == "" and sparse.detail == ""
