"""Bus/direct parity: routing E5 through the RoundEngine changes nothing.

The pipeline experiment can drive the protocol either through direct
method calls (the pre-engine path) or as messages over the transport.
The attack verdicts and the recovered aggregate must be identical.
"""

from repro.experiments.e5_pipeline import run


def test_e5_bus_matches_direct_calls():
    bus = run(num_users=6, seed=b"parity", transport="bus")
    direct = run(num_users=6, seed=b"parity", transport="direct")

    bus_rows = bus.table().raw_rows
    direct_rows = direct.table().raw_rows
    assert bus_rows == direct_rows

    assert bus.aggregate_error == direct.aggregate_error
    assert bus.aggregate_error < 1e-3
    assert bus.inversion_on_wire == direct.inversion_on_wire
    assert bus.inversion_on_plain == direct.inversion_on_plain

    # Only the bus run has wire telemetry to report.
    assert bus.report is not None
    assert bus.report.messages_sent > 0
    assert direct.report is None
