"""§3 dropout repair is bit-for-bit exact, across seeds and dropout timing.

Two timings matter and they exercise different machinery:

* ``provision`` dropouts never fetch a mask — their slots are unconsumed
  and never held a delivered mask, so repair reveals a mask nobody saw;
* ``collect`` dropouts complete provisioning (their Glimmer holds a live
  mask) and then go silent — the canonical §3 case where the blinding
  service "can disclose the sums of the blinding values from
  non-submitting parties".

In both cases the finalized aggregate must equal the fixed-point mean
over exactly the submitting cohort — not approximately: the ring
arithmetic in :mod:`repro.crypto.fixedpoint` cancels masks exactly, so
the test uses ``np.array_equal``, no tolerance.
"""

import numpy as np
import pytest

from repro.experiments.common import Deployment
from repro.runtime.telemetry import OUTCOME_ACCEPTED, OUTCOME_DROPOUT

SEEDS = (b"repair-seed-1", b"repair-seed-2", b"repair-seed-3")

# (pattern name, dropout slot indices)
PATTERNS = (
    ("provision-single", (0,)),
    ("provision-pair", (1, 3)),
    ("collect-single", (2,)),
    ("collect-pair", (0, 4)),
    ("mixed", (1, 2)),
)


def _exact_mean(deployment, vectors, cohort):
    encoded = [deployment.codec.encode(list(vectors[u])) for u in cohort]
    return deployment.codec.decode(
        deployment.codec.sum_vectors(encoded)
    ) / len(encoded)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("pattern,indices", PATTERNS, ids=[p[0] for p in PATTERNS])
def test_dropout_repair_is_bit_exact(seed, pattern, indices):
    deployment = Deployment.build(
        num_users=5, seed=seed, sentences_per_user=12
    )
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    dropped = [user_ids[i] for i in indices]
    if pattern.startswith("provision"):
        provision_dropouts, collect_dropouts = dropped, []
    elif pattern.startswith("collect"):
        provision_dropouts, collect_dropouts = [], dropped
    else:
        provision_dropouts, collect_dropouts = dropped[:1], dropped[1:]
    report = deployment.engine.run_round(
        1,
        user_ids,
        vectors,
        deployment.features.bigrams,
        dropouts=provision_dropouts,
        collect_dropouts=collect_dropouts,
        recovery_threshold=0.5,
    )
    survivors = [u for u in user_ids if u not in dropped]
    assert report.masks_repaired == len(dropped)
    assert [u for u in user_ids if report.outcomes[u] == OUTCOME_DROPOUT] == dropped
    assert report.survivors == tuple(survivors)
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, survivors)
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_collect_dropout_consumed_a_provisioned_mask(seed):
    """Collect-time dropouts really did provision: the §3 reveal case."""
    deployment = Deployment.build(num_users=4, seed=seed, sentences_per_user=12)
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    silent = user_ids[1]
    report = deployment.engine.run_round(
        1,
        user_ids,
        vectors,
        deployment.features.bigrams,
        collect_dropouts=[silent],
    )
    # The silent party holds a live mask for the round (it provisioned),
    # yet the aggregate is exact over the others: its mask was revealed
    # and cancelled, not left to poison the sum.
    assert deployment.clients[silent].party_index_for(1) == 1
    survivors = [u for u in user_ids if u != silent]
    assert set(report.outcomes[u] for u in survivors) == {OUTCOME_ACCEPTED}
    assert np.array_equal(
        np.asarray(report.aggregate), _exact_mean(deployment, vectors, survivors)
    )
