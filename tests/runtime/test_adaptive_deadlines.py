"""Adaptive deadlines, hedged re-delivery, partition trimming, late replies.

The controller unit tests pin the cutoff arithmetic; the engine tests
pin the three fleet defenses end to end on real deployments — including
the satellite bugfix: a reply that lands *after* the phase deadline must
be discarded (slot evicted, repaired by reveal), never double-counted
against the deadline bookkeeping.
"""

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.experiments.common import Deployment
from repro.network.adversary import NetworkAdversary
from repro.network.conditions import (
    Episode,
    FleetPlan,
    LinkConditions,
    LinkSchedule,
)
from repro.network.transport import REPLY_SUFFIX
from repro.runtime import messages as m
from repro.runtime.deadlines import AdaptiveDeadlines, PhaseDeadlineController
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_PARTITIONED,
)


POLICY = AdaptiveDeadlines(
    percentile=90.0, multiplier=5.0, min_budget_ms=1000.0, warmup=2
)


# ------------------------------------------------------------- controller


def test_no_cutoff_until_warmup():
    controller = PhaseDeadlineController(POLICY, 0.0, expected_ops=4)
    assert controller.straggler_threshold_ms() is None
    assert controller.cutoff_ms() is None
    assert controller.observe(100.0) is False  # still warming up
    assert controller.cutoff_ms() is None


def test_cutoff_scales_with_expected_ops():
    controller = PhaseDeadlineController(POLICY, 500.0, expected_ops=4)
    controller.observe(100.0)
    controller.observe(100.0)
    assert controller.straggler_threshold_ms() == pytest.approx(500.0)
    # budget = max(min_budget, threshold * ops) = max(1000, 500 * 4)
    assert controller.cutoff_ms() == pytest.approx(500.0 + 2000.0)


def test_min_budget_floors_small_phases():
    controller = PhaseDeadlineController(POLICY, 0.0, expected_ops=1)
    controller.observe(100.0)
    controller.observe(100.0)
    assert controller.cutoff_ms() == pytest.approx(1000.0)


def test_straggler_judged_against_prior_samples():
    controller = PhaseDeadlineController(POLICY, 0.0, expected_ops=4)
    controller.observe(100.0)
    controller.observe(100.0)
    # 600 > 500 (the threshold *before* this sample joins the pool).
    assert controller.observe(600.0) is True
    assert controller.stragglers == 1
    # The slow sample now stretches the tolerance — adaptive, not fixed.
    assert controller.straggler_threshold_ms() > 500.0


def test_slow_start_earns_longer_budget():
    fast = PhaseDeadlineController(POLICY, 0.0, expected_ops=4)
    slow = PhaseDeadlineController(POLICY, 0.0, expected_ops=4)
    for _ in range(3):
        fast.observe(50.0)
        slow.observe(800.0)
    assert slow.cutoff_ms() > fast.cutoff_ms()


# ------------------------------------------------------------ test doubles


class _DropFirstReply(NetworkAdversary):
    """Drop the first reply of one kind; the handler has already run."""

    def __init__(self, kind: str) -> None:
        self.kind = kind + REPLY_SUFFIX
        self.dropped = 0

    def process(self, message):
        if message.kind == self.kind and not self.dropped:
            self.dropped += 1
            return None
        return message


class _DelayNthReply(NetworkAdversary):
    """Advance the clock while the n-th reply of a kind is in flight."""

    def __init__(self, clock, kind: str, n: int, delay_ms: float) -> None:
        self.clock = clock
        self.kind = kind + REPLY_SUFFIX
        self.n = n
        self.delay_ms = delay_ms
        self.seen = 0

    def process(self, message):
        if message.kind == self.kind:
            self.seen += 1
            if self.seen == self.n:
                self.clock.advance(self.delay_ms)
        return message


def _deployment(seed: bytes, num_users: int = 4) -> Deployment:
    return Deployment.build(
        num_users=num_users,
        seed=seed,
        sentences_per_user=3,
        max_features=8,
    )


def _round_inputs(deployment: Deployment):
    users = sorted(deployment.clients)
    return users, deployment.local_vectors(users), deployment.features.bigrams


def _exact_mean(codec, vectors, accepted) -> np.ndarray:
    encoded = [codec.encode(list(vectors[u])) for u in sorted(accepted)]
    return codec.decode(codec.sum_vectors(encoded)) / len(encoded)


# ------------------------------------------------------- engine integration


def test_adaptive_round_matches_fixed_round_on_a_clean_network():
    """On a healthy wire the adaptive machinery must be pure telemetry."""
    baseline = _deployment(b"adaptive-equiv")
    users, vectors, features = _round_inputs(baseline)
    fixed = baseline.engine.run_round(1, users, vectors, features)

    adaptive_dep = _deployment(b"adaptive-equiv")
    report = adaptive_dep.engine.run_round(
        1, users, vectors, features, adaptive=AdaptiveDeadlines()
    )
    assert report.outcomes == fixed.outcomes
    assert np.array_equal(
        np.asarray(report.aggregate), np.asarray(fixed.aggregate)
    )
    assert report.late_replies_discarded == 0
    assert report.hedged_deliveries == 0
    assert report.partition_trimmed == 0


def test_hedged_redelivery_recovers_a_dropped_reply():
    """A lost reply costs one hedged re-delivery, not the participant.

    ``max_attempts=1`` removes ordinary retries, so the hedge is the only
    path back: it re-sends with a retransmission attempt number, the
    client answers from its idempotency cache, and nothing re-executes.
    """
    deployment = _deployment(b"hedge")
    deployment.engine.max_attempts = 1
    deployment.network.interpose(_DropFirstReply(m.KIND_CONTRIBUTE))
    users, vectors, features = _round_inputs(deployment)
    report = deployment.engine.run_round(
        1, users, vectors, features, adaptive=AdaptiveDeadlines()
    )
    assert report.hedged_deliveries == 1
    assert all(
        report.outcomes[user] == OUTCOME_ACCEPTED for user in users
    )
    assert np.array_equal(
        np.asarray(report.aggregate),
        _exact_mean(deployment.codec, vectors, users),
    )


def test_partitioned_client_is_trimmed_not_timed_out():
    deployment = _deployment(b"partition-trim")
    users, vectors, features = _round_inputs(deployment)
    victim = users[0]
    plan = FleetPlan(
        profile="test",
        label="test",
        horizon_ms=1e9,
        links={
            victim: LinkSchedule(
                client_id=victim,
                extra_latency_ms=0.0,
                jitter_ms=0.0,
                spike_rate=0.0,
                spike_ms=(0.0, 0.0),
                burst_start_rate=0.0,
                burst_length=(1, 1),
                duplicate_rate=0.0,
                partitions=(Episode(start_ms=0.0, end_ms=1e9),),
                disconnects=(),
                clock_skew_ms=0.0,
                firmware_skew=False,
                firmware_perturb_rate=0.0,
            )
        },
        epoch_bumps=(),
    )
    conditions = LinkConditions(
        plan, deployment.network.clock, HmacDrbg(b"trim")
    )
    conditions.attach(deployment.network)
    deployment.network.interpose(conditions)
    deployment.engine.attach_conditions(conditions)
    report = deployment.engine.run_round(1, users, vectors, features)
    assert report.outcomes[victim] == OUTCOME_PARTITIONED
    assert report.partition_trimmed == 1
    survivors = [u for u in users if u != victim]
    assert all(report.outcomes[u] == OUTCOME_ACCEPTED for u in survivors)
    assert np.array_equal(
        np.asarray(report.aggregate),
        _exact_mean(deployment.codec, vectors, survivors),
    )
    # No traffic was wasted probing the dead link.
    assert conditions.offline_drops == 0


def test_late_reply_is_discarded_not_double_counted():
    """Satellite bugfix pin: a reply landing after the phase deadline.

    The contribution *was* accepted by the service (the handler ran);
    the engine must notice the deadline passed while the reply was in
    flight, evict the submission, revert the slot, and let §3 reveal
    repair cover it — the participant is deadline-missed, the aggregate
    excludes it, and the books still balance.
    """
    deployment = _deployment(b"late-reply")
    users, vectors, features = _round_inputs(deployment)
    delayer = _DelayNthReply(
        deployment.network.clock,
        m.KIND_CONTRIBUTE,
        n=len(users),  # only the last reply is late: the phase cutoff
        delay_ms=10_000.0,  # has passed for nobody else
    )
    deployment.network.interpose(delayer)
    report = deployment.engine.run_round(
        1,
        users,
        vectors,
        features,
        phase_deadlines_ms={"collect": 5_000.0},
    )
    victim = users[-1]
    assert delayer.seen == len(users)
    assert report.late_replies_discarded == 1
    assert report.outcomes[victim] == OUTCOME_DEADLINE_MISSED
    assert report.masks_repaired >= 1  # the evicted slot healed by reveal
    survivors = [u for u in users if u != victim]
    assert all(report.outcomes[u] == OUTCOME_ACCEPTED for u in survivors)
    assert np.array_equal(
        np.asarray(report.aggregate),
        _exact_mean(deployment.codec, vectors, survivors),
    )
    # The reply leg accounting is untouched by the discard: the late
    # reply was *delivered* (then discarded above the transport), and
    # replies still never count as request traffic.
    assert deployment.network.replies_delivered > len(users)


def test_late_discard_survives_replay_of_the_evicted_nonce():
    """After eviction the slot repairs by reveal; a replay of the evicted
    submission must not resurrect it."""
    deployment = _deployment(b"late-replay")
    users, vectors, features = _round_inputs(deployment)
    delayer = _DelayNthReply(
        deployment.network.clock, m.KIND_CONTRIBUTE, n=len(users),
        delay_ms=10_000.0,
    )
    deployment.network.interpose(delayer)
    report = deployment.engine.run_round(
        1, users, vectors, features,
        phase_deadlines_ms={"collect": 5_000.0},
    )
    assert report.late_replies_discarded == 1
    survivors = [u for u in users if report.outcomes[u] == OUTCOME_ACCEPTED]
    # A second, clean round over the same deployment still finalizes
    # exactly: the eviction left no wedged state behind.
    deployment.network.clear_adversaries()
    second = deployment.engine.run_round(2, users, vectors, features)
    assert all(second.outcomes[u] == OUTCOME_ACCEPTED for u in users)
    assert len(survivors) == len(users) - 1
