"""Engine lifecycle edge cases: scoping, abandonment, restart boundaries."""

from __future__ import annotations

import gc

import pytest

from repro.errors import ProtocolError, RoundAbortedError
from repro.experiments.common import Deployment
from repro.runtime.messages import client_endpoint
from repro.runtime.protocol import ViolationRecord
from repro.runtime.telemetry import OUTCOME_ACCEPTED, OUTCOME_QUARANTINED
from repro.scale import ScaleConfig
from repro.scale.pool import WorkerPool


@pytest.fixture
def deployment():
    return Deployment.build(
        num_users=4, seed=b"lifecycle-tests", sentences_per_user=8
    )


def _cohort(deployment):
    return [u.user_id for u in deployment.corpus.users], deployment.local_vectors()


# ------------------------------------------------------- pool scoping


def test_context_manager_closes_the_scale_pool():
    deployment = Deployment.build(
        num_users=4,
        seed=b"lifecycle-pool",
        parallelism=ScaleConfig(workers=2, shards=1, chunk_size=8),
    )
    users, vectors = _cohort(deployment)
    with deployment.engine as engine:
        engine.run_round(1, users, vectors, deployment.features.bigrams)
        assert engine._scale_pool is not None
    assert deployment.engine._scale_pool is None
    # Exit is idempotent alongside an explicit close.
    deployment.engine.close_scale_pool()


def test_worker_pool_finalizer_fires_on_collection():
    pool = WorkerPool(1)
    finalizer = pool._finalizer
    assert finalizer.alive
    del pool
    gc.collect()
    assert not finalizer.alive, "dropped pools must shut their workers down"


def test_worker_pool_close_is_idempotent():
    pool = WorkerPool(1)
    pool.close()
    pool.close()
    assert not pool._finalizer.alive


# ------------------------------------------------------- abandonment


def test_abandon_mid_phase_closes_the_window(deployment):
    users, vectors = _cohort(deployment)
    engine = deployment.engine
    stages = engine.round_stages(1, users, vectors, deployment.features.bigrams)
    next(stages)  # "open"
    next(stages)  # "provision" — a phase window is live right now
    record = engine.round_record(1)
    assert record.window is not None or record.phases
    engine.abandon_round(1)
    with pytest.raises(ProtocolError):
        engine.round_record(1)
    # Idempotent: abandoning again (or a never-tracked id) is a no-op.
    engine.abandon_round(1)
    engine.abandon_round(99)
    # The engine is fully reusable after abandonment.
    report = engine.run_round(2, users, vectors, deployment.features.bigrams)
    assert report.num_contributions == len(users)


def test_abandon_after_abort_preserves_recorded_violations(deployment):
    users, vectors = _cohort(deployment)
    engine = deployment.engine
    with pytest.raises(RoundAbortedError):
        engine.run_round(
            1, users, vectors, deployment.features.bigrams, dropouts=tuple(users)
        )
    aborted = engine.reports[1]
    assert aborted.aborted
    engine.abandon_round(1)  # double monitor close must not raise
    assert engine.reports[1] is aborted, "the partial report survives"


# ------------------------------------------------------- client restarts


def test_restart_client_recovers_crashed_client(deployment):
    users, vectors = _cohort(deployment)
    engine = deployment.engine
    stages = engine.round_stages(1, users, vectors, deployment.features.bigrams)
    next(stages)
    record = engine.round_record(1)
    client = deployment.clients[users[0]]
    client.crash()
    assert client.crashed
    assert engine._restart_client(record, client) is True
    assert not client.crashed
    assert record.recoveries == 1
    engine.abandon_round(1)


def test_restart_client_without_restart_support_fails_closed(deployment):
    users, vectors = _cohort(deployment)
    engine = deployment.engine
    stages = engine.round_stages(1, users, vectors, deployment.features.bigrams)
    next(stages)
    record = engine.round_record(1)

    class Opaque:
        pass

    assert engine._restart_client(record, Opaque()) is False

    class Exploding:
        def restart(self):
            raise RuntimeError("sealed state corrupt")

    assert engine._restart_client(record, Exploding()) is False
    assert record.recoveries == 0
    engine.abandon_round(1)


def test_quarantined_client_sits_out_the_next_round(deployment):
    users, vectors = _cohort(deployment)
    engine = deployment.engine
    offender = users[1]
    engine.quarantine.block(
        ViolationRecord(
            offender=client_endpoint(offender),
            kind="equivocation",
            round_id=0,
        )
    )
    report = engine.run_round(1, users, vectors, deployment.features.bigrams)
    assert report.outcomes[offender] == OUTCOME_QUARANTINED
    others = [u for u in users if u != offender]
    assert all(report.outcomes[u] == OUTCOME_ACCEPTED for u in others)
    assert report.num_contributions == len(others)
    # A pardon restores full participation.
    assert engine.quarantine.pardon(client_endpoint(offender)) is True
    report2 = engine.run_round(2, users, vectors, deployment.features.bigrams)
    assert report2.outcomes[offender] == OUTCOME_ACCEPTED
