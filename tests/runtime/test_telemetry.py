"""RoundReport serialization: every field survives to_dict → JSON → from_dict."""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.runtime.protocol import (
    VIOLATION_EQUIVOCATION,
    VIOLATION_FLOODING,
    ViolationRecord,
)
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DROPOUT,
    OUTCOME_EVICTED,
    PhaseStats,
    RoundReport,
)


def _full_report() -> RoundReport:
    """A report with every serializable field populated and non-default."""
    return RoundReport(
        round_id=7,
        blinded=True,
        participants=("user-0000", "user-0001", "user-0002"),
        outcomes={
            "user-0000": OUTCOME_ACCEPTED,
            "user-0001": OUTCOME_DROPOUT,
            "user-0002": OUTCOME_EVICTED,
        },
        num_slots=3,
        masks_repaired=2,
        num_contributions=1,
        rejected={"client:user-0002": 6},
        messages_sent=42,
        messages_dropped=3,
        retries=5,
        bytes_on_wire=9001,
        latency_ms=12.5,
        ecalls=17,
        enclave_cycles={"transitions": 1000, "blinding": 2500},
        phases=(
            PhaseStats("open", 4, 0, 512, 1.25),
            PhaseStats("collect", 12, 1, 4096, 6.5),
        ),
        aggregate=np.array([1.5, -2.25, 0.0]),
        aborted=True,
        abort_reason="aggregate failed its audit",
        client_restarts=1,
        faults_injected=4,
        violations=(
            ViolationRecord(
                offender="client:user-0002",
                kind=VIOLATION_EQUIVOCATION,
                round_id=7,
                phase="collect",
                detail="second contribution for slot 2",
            ),
            ViolationRecord(
                offender="client:user-0001",
                kind=VIOLATION_FLOODING,
                round_id=7,
                phase="collect",
            ),
        ),
        quarantined=("client:user-0002",),
    )


def test_to_dict_is_json_serializable_and_complete():
    report = _full_report()
    payload = json.loads(json.dumps(report.to_dict()))
    # Every dataclass field except the live service handle and the
    # private survivors cache must appear in the serialized form.
    field_names = {
        f.name
        for f in dataclasses.fields(RoundReport)
        if f.name not in ("service_result", "_survivors")
    }
    assert field_names <= set(payload)
    assert payload["violations"][0]["kind"] == VIOLATION_EQUIVOCATION
    assert payload["quarantined"] == ["client:user-0002"]
    assert payload["aggregate"] == [1.5, -2.25, 0.0]


def test_round_trip_preserves_every_field():
    report = _full_report()
    restored = RoundReport.from_dict(json.loads(json.dumps(report.to_dict())))
    for f in dataclasses.fields(RoundReport):
        if f.name in ("service_result", "_survivors", "aggregate"):
            continue
        assert getattr(restored, f.name) == getattr(report, f.name), f.name
    assert np.array_equal(restored.aggregate, report.aggregate)
    # Derived views recompute identically.
    assert restored.survivors == report.survivors
    assert restored.dropouts == report.dropouts
    assert restored.enclave_total_cycles == report.enclave_total_cycles
    # And a second trip is a fixed point.
    assert restored.to_dict() == RoundReport.from_dict(restored.to_dict()).to_dict()


def test_round_trip_with_minimal_optional_fields():
    report = dataclasses.replace(
        _full_report(),
        aggregate=None,
        abort_reason=None,
        aborted=False,
        violations=(),
        quarantined=(),
        phases=(),
    )
    restored = RoundReport.from_dict(json.loads(json.dumps(report.to_dict())))
    assert restored.aggregate is None
    assert restored.violations == () and restored.quarantined == ()
    assert restored.to_dict() == report.to_dict()
