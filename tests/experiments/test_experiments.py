"""Integration tests: every experiment runs and its headline claim holds.

These are the paper's assertions turned into assertions.  Sizes are kept
small; the benchmark suite runs the full-size versions.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS, run_experiment


def test_registry_lists_all_experiments():
    assert set(EXPERIMENTS) == {f"e{i}" for i in range(1, 21)}


def test_registry_unknown_id():
    with pytest.raises(ConfigurationError):
        run_experiment("e99")


def test_e1_raw_sharing_claims():
    result = run_experiment("e1", cohort_sizes=(8,))
    (users, utility, trending, attacker_acc, advantage, bits), = result.rows
    assert trending  # the aggregate benefit is real
    assert attacker_acc >= 0.95  # and so is the total privacy loss
    assert bits > 1000
    assert utility > 0.5


def test_e2_federated_claims():
    result = run_experiment("e2", cohort_sizes=(8,))
    (users, utility, trending, per_user, aggregate_only, bits), = result.rows
    assert trending
    assert per_user >= 0.9  # inversion breaks per-user privacy (Fig 1b)
    assert aggregate_only <= 0.65  # the aggregate alone is far less revealing


def test_e3_secure_agg_claims():
    # 12 users (the experiment default): per-user inversion guesses on
    # uniformly blinded vectors are coin flips, and smaller cohorts leave
    # the accuracy threshold one lucky streak away from flaking.
    result = run_experiment("e3", num_users=12, dropout_rates=(0.0, 0.25))
    for scheme, users, rate, error, blinded_acc, plain_acc in result.rows:
        assert error < 1e-3  # exact sums, even under dropout
        assert blinded_acc <= 0.75  # inversion collapses toward chance
        assert plain_acc >= 0.9  # while plaintext vectors fully leak


def test_e4_poisoning_claims():
    result = run_experiment("e4", num_users=6, magnitudes=(538.0,))
    by_condition = {row[0]: row for row in result.rows}
    no_glimmer = by_condition["blinding, no glimmer"]
    glimmer = by_condition["glimmer (range check)"]
    assert no_glimmer[3] > 10  # catastrophic skew (538 / N)
    assert no_glimmer[4]  # prediction flipped
    assert glimmer[3] < 1e-3  # defended aggregate is clean
    assert not glimmer[4]
    assert glimmer[5]  # attack blocked


def test_e5_pipeline_claims():
    # 10 users: same rationale as E3 — wire-capture inversion guesses are
    # coin flips, and tiny cohorts make the threshold a dice roll.
    result = run_experiment("e5", num_users=10)
    assert all(blocked for __, blocked, __ in result.attack_rows)
    assert result.aggregate_error < 1e-3
    assert result.inversion_on_wire <= 0.75
    assert result.inversion_on_plain >= 0.9


def test_e6_predicate_ladder_claims():
    result = run_experiment("e6")
    rows = {(r[0], r[1]): r for r in result.rows}

    def detected(predicate, attack):
        return rows[(predicate, attack)][2]

    def cycles(predicate, attack):
        return rows[(predicate, attack)][3]

    # No false positives on the honest control, at any rung.
    for predicate in ("range", "range+keystrokes", "range+exec-trace"):
        assert not detected(predicate, "honest client (control)")
    # Every rung catches the 538.
    for predicate in ("range", "range+keystrokes", "range+exec-trace"):
        assert detected(predicate, "magnitude 538 (no evidence)")
    # Range alone misses the in-range boost; corroboration catches it.
    assert not detected("range", "in-range boost (no evidence)")
    assert detected("range+keystrokes", "in-range boost (no evidence)")
    assert detected("range+keystrokes", "in-range boost (robotic trace)")
    # The fully fabricated execution evades even the top rung...
    assert not detected("range+exec-trace", "fabricated consistent execution")
    # ...but costs the adversary real effort, and the Glimmer pays more
    # cycles as rungs rise (the §2 trade-off).
    fabricated_effort = rows[("range", "fabricated consistent execution")][4]
    assert fabricated_effort > 1000
    assert cycles("range+keystrokes", "honest client (control)") > cycles(
        "range", "honest client (control)"
    )


def test_e7_split_claims():
    result = run_experiment("e7", vector_sizes=(16,))
    single = next(r for r in result.rows if r[1] == "single enclave")
    split = next(r for r in result.rows if r[1] == "three enclaves")
    assert split[2] == 3 * single[2]  # 3x transition cycles
    assert split[4] > single[4]  # strictly more total cycles
    assert split[5] > 1.0


def test_e8_bot_detection_claims():
    result = run_experiment("e8", num_sessions=30, sophistication_levels=(0.0,))
    by_channel = {row[0]: row for row in result.rows}
    glimmer = by_channel["glimmer (1 audited bit)"]
    raw = by_channel["raw signal upload"]
    assert glimmer[2] == raw[2]  # same detector, same accuracy
    assert glimmer[3] == 1.0  # one bit per session
    assert raw[3] > 500  # vs hundreds of private bits
    assert by_channel["captcha"][4] == 1.0  # humans pay the annoyance


def test_e9_covert_channel_claims():
    result = run_experiment("e9", budgets=(4,))
    for predicate, budget, passed, exfiltrated, bound, held in result.rows:
        assert held
        if predicate.startswith("bit-modulating"):
            assert passed == budget  # attacker saturates the budget...
            assert exfiltrated == bound  # ...and gets exactly the bound
        else:
            assert passed == 0  # format stuffing never passes


def test_e10_gaas_claims():
    result = run_experiment("e10", num_clients=2)
    assert result.malicious_host_blocked
    latencies = [row[2] for row in result.rows]
    assert latencies == sorted(latencies)  # local < LAN < WAN
    assert all(row[4] for row in result.rows)  # all placements work


def test_e11_photo_maps_claims():
    result = run_experiment("e11", num_users=5, radii=(25.0,))
    (radius, photos, spoof_rejection, honest_acceptance, private_points), = result.rows
    assert spoof_rejection >= 0.9
    assert honest_acceptance >= 0.9
    assert private_points > 0


def test_e12_attestation_claims():
    result = run_experiment("e12")
    control = result.rows[0]
    assert not control[1]  # the genuine Glimmer is NOT blocked
    for attack, blocked, mechanism in result.rows[1:]:
        assert blocked, attack


def test_tables_render_for_every_experiment():
    small_kwargs = {
        "e1": dict(cohort_sizes=(4,)),
        "e2": dict(cohort_sizes=(4,)),
        "e3": dict(num_users=5, dropout_rates=(0.0,)),
        "e4": dict(num_users=5, magnitudes=(538.0,)),
        "e5": dict(num_users=4),
        "e6": dict(num_users=2),
        "e7": dict(vector_sizes=(8,)),
        "e8": dict(num_sessions=10, sophistication_levels=(0.0,)),
        "e9": dict(budgets=(2,)),
        "e10": dict(num_clients=1),
        "e11": dict(num_users=3, radii=(25.0,)),
        "e12": dict(),
        "e13": dict(num_users=3, failure_rates=(0.0,)),
        "e14": dict(num_users=3, sigmas=(0.0, 0.5)),
        "e15": dict(num_users=3, flood_sizes=(2,)),
        "e16": dict(num_users=3, epoch_intensities=(0.0, 0.4)),
        "e17": dict(num_users=3, tolerances=(0.05,), frames_per_stream=40),
        "e18": dict(num_users=3, rounds_per_rate=2, fault_rates=(0.0, 0.1)),
        "e19": dict(num_users=3, rounds_per_mix=1),
        "e20": dict(num_schedules=1, num_users=4, rounds=2),
    }
    for experiment_id, kwargs in small_kwargs.items():
        result = run_experiment(experiment_id, **kwargs)
        rendered = result.table().render()
        assert rendered.splitlines()[0].startswith(f"E{experiment_id[1:]}")


def test_e13_consortium_claims():
    result = run_experiment("e13", num_users=4, failure_rates=(0.0, 0.5))
    sgx = result.rows[0]
    reliable, flaky = result.rows[1], result.rows[2]
    assert sgx[2] < reliable[2]  # consortium costs more messages
    assert sgx[3] < reliable[3]  # and more validations
    assert reliable[5] == "4/4"  # works when everyone is up
    done, total = flaky[5].split("/")
    assert int(done) < int(total)  # but member failures stall contributions
    assert result.aggregate_agreement < 1e-3  # both agree on the aggregate


def test_e14_dp_release_claims():
    result = run_experiment("e14", num_users=6, sigmas=(0.0, 0.2, 8.0))
    noiseless, mild, heavy = result.rows
    assert noiseless[1] == float("inf") and noiseless[2] < 1e-3
    assert mild[1] < float("inf")
    assert heavy[1] < mild[1]  # more noise, stronger privacy
    assert heavy[2] > mild[2] > noiseless[2]  # and growing error
    assert noiseless[4]  # trending works without noise


def test_e15_flooding_claims():
    result = run_experiment("e15", num_users=4, flood_sizes=(1, 6))
    rows = {(r[0], r[1]): r for r in result.rows}
    undefended_small = rows[("range only", 1)]
    undefended_large = rows[("range only", 6)]
    defended = rows[("range + rate(1)", 6)]
    evasion = rows[("range + rate(1), restart evasion", 6)]
    assert undefended_large[2] == 6          # the whole flood signs
    assert undefended_large[3] > undefended_small[3]  # and skew grows with k
    assert defended[2] == 1                  # rate limit: one per round
    assert evasion[2] == 1                   # restarts don't reset the counter
    # Under the rate limit, flooding harder buys the attacker nothing: the
    # skew at k=6 equals the single-contribution skew (same deployment).
    assert defended[3] == pytest.approx(rows[("range + rate(1)", 1)][3], abs=1e-6)


def test_e16_trending_claims():
    result = run_experiment(
        "e16", num_users=6, epoch_intensities=(0.0, 0.0, 0.3, 0.5)
    )
    quiet = [r for r in result.rows if r[1] == 0.0]
    loud = [r for r in result.rows if r[1] > 0.0]
    assert all(not r[3] for r in quiet)    # no suggestion before the trend
    assert any(r[3] for r in loud)         # the suggestion switches on
    assert all(r[4] < 1e-3 for r in result.rows)  # every aggregate exact
    assert result.epochs_to_trend is not None
    # utility jumps once the topic is learnable
    assert max(r[5] for r in loud) > max(r[5] for r in quiet)


def test_e17_activity_claims():
    result = run_experiment(
        "e17", num_users=8, tolerances=(0.05,), frames_per_stream=80
    )
    (tolerance, total, forged_rejection, honest_acceptance, frames, separation), = result.rows
    assert forged_rejection >= 0.9    # no-video fabrications rejected
    assert honest_acceptance >= 0.9   # real footage corroborates
    assert frames > 0                 # and it all stayed on-device
    assert separation > 0.3           # the service can still learn activity


def test_e18_availability_claims():
    result = run_experiment(
        "e18", num_users=4, rounds_per_rate=4, fault_rates=(0.0, 0.1)
    )
    clean, faulted = result.rows
    # No faults: every round finalizes exactly, nothing fires or repairs.
    assert clean[2] == clean[1] and clean[3] == 0
    assert clean[6] == clean[7] == clean[9] == 0
    assert clean[5] == 100.0
    # Under faults: every round is exact-or-abort — the "inexact" column
    # is the forbidden outcome and must be zero in both conditions.
    assert faulted[4] == clean[4] == 0
    assert faulted[2] + faulted[3] == faulted[1]
    assert faulted[9] > 0  # faults actually fired


def test_e19_byzantine_claims():
    result = run_experiment("e19", num_users=4, rounds_per_mix=2)
    # The headline claim: no attacker mix ever corrupts a finalized round.
    assert result.undetected_total == 0
    rows = {r[0]: r for r in result.rows}
    honest = rows["honest baseline"]
    assert honest[2] == honest[1]  # every honest round finalizes exactly
    assert honest[6] == 0 and honest[7] == "—"
    # A cheating blinder or aggregator can only end in a blamed abort.
    for label in (
        "lying blinder: non-sum-zero",
        "tampering aggregator: corrupt",
    ):
        row = rows[label]
        assert row[3] == row[1], label  # all rounds: detected aborts
        assert row[5] == 0, label       # none finalized corrupt
        assert row[7] != "—", label     # with an offender named
    # A misbehaving client is named, evicted, and the rounds stay exact.
    for label in ("equivocating client", "flooding client"):
        row = rows[label]
        assert row[2] == row[1], label
        assert row[6] > 0 and "user-" in row[7], label
