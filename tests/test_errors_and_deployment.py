"""Tests for the error hierarchy, the LocalDataStore, and Deployment glue."""

import pytest

from repro import __version__
from repro.core.client import LocalDataStore
from repro.errors import (
    AttestationError,
    AuditError,
    AuthenticationError,
    ConfigurationError,
    CryptoError,
    EnclaveError,
    NetworkError,
    ProtocolError,
    ReproError,
    SealingError,
    ValidationError,
)
from repro.experiments.common import Deployment


def test_version_string():
    assert __version__.count(".") == 2


def test_every_error_derives_from_repro_error():
    for error_class in (
        CryptoError, AuthenticationError, ProtocolError, EnclaveError,
        AttestationError, SealingError, ValidationError, AuditError,
        NetworkError, ConfigurationError,
    ):
        assert issubclass(error_class, ReproError)


def test_error_specializations():
    assert issubclass(AuthenticationError, CryptoError)
    assert issubclass(AttestationError, EnclaveError)
    assert issubclass(SealingError, EnclaveError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise AttestationError("boom")


# ----------------------------------------------------------- LocalDataStore

def test_datastore_serves_only_requested_fields():
    store = LocalDataStore(
        sentences=[["a", "b"]],
        geo_context="GEO",
        shopping_context="SHOP",
    )
    context = store.context_for(("sentences",))
    assert context.sentences == [["a", "b"]]
    assert context.geo_context is None  # not requested, not served
    assert context.shopping_context is None


def test_datastore_extra_always_copied():
    store = LocalDataStore(extra={"submission": "photo"})
    context = store.context_for(())
    assert context.extra == {"submission": "photo"}
    context.extra["submission"] = "mutated"
    assert store.extra["submission"] == "photo"


def test_datastore_ignores_unknown_fields():
    store = LocalDataStore()
    context = store.context_for(("no_such_field",))
    assert context.sentences is None


# --------------------------------------------------------------- Deployment

@pytest.fixture(scope="module")
def deployment():
    return Deployment.build(num_users=3, seed=b"deployment-glue", sentences_per_user=10)


def test_deployment_provisions_all_clients(deployment):
    assert set(deployment.clients) == {u.user_id for u in deployment.corpus.users}
    for client in deployment.clients.values():
        assert client.glimmer.ecall("has_signing_key")


def test_deployment_vetting_matches_image(deployment):
    from repro.experiments.common import GLIMMER_NAME

    assert (
        deployment.registry.approved_measurement(GLIMMER_NAME)
        == deployment.image.mrenclave
    )


def test_deployment_honest_round_matches_local_mean(deployment):
    import numpy as np

    aggregate = deployment.honest_round(7)
    vectors = deployment.local_vectors()
    expected = np.mean(np.stack(list(vectors.values())), axis=0)
    assert np.allclose(aggregate, expected, atol=1e-3)


def test_deployment_deterministic():
    a = Deployment.build(num_users=2, seed=b"same-seed", sentences_per_user=8)
    b = Deployment.build(num_users=2, seed=b"same-seed", sentences_per_user=8)
    assert a.image.mrenclave == b.image.mrenclave
    assert a.corpus.streams == b.corpus.streams


def test_deployment_different_seeds_differ():
    a = Deployment.build(num_users=2, seed=b"seed-a", sentences_per_user=8)
    b = Deployment.build(num_users=2, seed=b"seed-b", sentences_per_user=8)
    assert a.corpus.streams != b.corpus.streams
