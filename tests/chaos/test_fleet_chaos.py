"""Fleet chaos: degraded-link weather against the full defense stack.

``test_service_chaos.py`` proves exact-or-recovered across *process*
lifetimes; this suite proves it across *fleet* pathologies: per-client
loss bursts, latency spikes, partitions, disconnect-and-rejoin churn,
duplicate deliveries, clock skew, and firmware-version skew — each
schedule drawn deterministically by :func:`repro.network.conditions.
sample_fleet_plan` and executed by :func:`repro.service.fleet.
run_fleet_schedule` against adaptive deadlines, hedged re-delivery,
partition-aware trimming, and incremental attestation sessions.

Per-schedule invariants (codec-exact aggregates, zero undetected
corruption, quarantine attribution) are asserted inside the harness;
this suite adds the fleet-level ones:

* **sublinear re-attestation** — full quote-verifies are bounded by
  first joins plus policy-epoch bumps, never by rejoin count;
* **replayability** — the same ``(seed, index, profile)`` reproduces
  the schedule's signature bit for bit on a fresh deployment.

``CHAOS_SEED`` / ``FLEET_PROFILE`` narrow the matrix (CI shards on
them); ``CHAOS_ARTIFACT_DIR`` collects a JSON artifact for any failing
schedule so the exact (seed, index, profile) replays locally.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.network.conditions import PROFILES
from repro.service.fleet import run_fleet_schedule

SCHEDULES_PER_SEED = 50
REPLAY_SCHEDULES = 6
NUM_USERS = 6

DEFAULT_SEEDS = ("fleet-a", "fleet-b")
SEEDS = (
    (os.environ["CHAOS_SEED"],) if os.environ.get("CHAOS_SEED") else DEFAULT_SEEDS
)
PROFILE_NAMES = (
    (os.environ["FLEET_PROFILE"],)
    if os.environ.get("FLEET_PROFILE")
    else tuple(sorted(PROFILES))
)
#: Coverage assertions ("the sweep exercised rejoin churn / epoch bumps
#: / firmware skew") only make sense when the indices stripe across the
#: whole profile matrix; a profile-narrowed CI shard keeps the
#: per-schedule invariants and skips the cross-profile bookkeeping.
FULL_PROFILE_MATRIX = PROFILE_NAMES == tuple(sorted(PROFILES))


def _profile_for(index: int) -> str:
    """Stripe the schedule indices across the profile matrix."""
    return PROFILE_NAMES[index % len(PROFILE_NAMES)]


def _run(seed: str, index: int, profile: str, **kwargs):
    params = dict(
        seed=seed.encode(),
        index=index,
        profile=profile,
        num_users=NUM_USERS,
    )
    params.update(kwargs)
    try:
        return run_fleet_schedule(**params)
    except Exception as exc:
        artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            name = f"fleet-chaos-{profile}-{seed}-{index:03d}.json"
            with open(os.path.join(artifact_dir, name), "w") as handle:
                json.dump(
                    {
                        "profile": profile,
                        "seed": seed,
                        "index": index,
                        "num_users": params["num_users"],
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                    handle,
                    indent=2,
                )
        raise


@pytest.mark.parametrize("seed", SEEDS)
def test_fleet_chaos_exact_or_recovered(seed):
    totals = {
        "rounds": 0,
        "rounds_recovered": 0,
        "rejoins": 0,
        "perturbed_submissions": 0,
        "full_attestations": 0,
        "resumed": 0,
        "epoch_bumps": 0,
        "ambient_dropped": 0,
        "auto_replayed": 0,
        "redeliveries_delivered": 0,
    }
    weather = {"offline_drops": 0, "burst_drops": 0, "duplicates": 0, "spikes": 0}
    quarantines = 0
    for index in range(SCHEDULES_PER_SEED):
        report = _run(seed, index, _profile_for(index))
        for key in totals:
            totals[key] += report[key]
        for key in weather:
            weather[key] += report["conditions"][key]
        quarantines += len(report["quarantined"])
        # Sublinear re-attestation, per schedule: a full quote-verify is
        # paid only on first join or after a policy-epoch bump — rejoins
        # ride the session layer.  (Every verify in this harness is a
        # distinct quote, so none dedupe through the broker's cache.)
        assert report["full_attestations"] <= NUM_USERS * (
            1 + report["epoch_bumps"]
        ), f"{report['label']}: rejoins paid for full re-attestations"
    # Exactness per round is asserted inside the harness; here we assert
    # the sweep actually exercised the machinery it claims to prove.
    assert totals["rounds"] == SCHEDULES_PER_SEED * 4
    for key, count in weather.items():
        assert count > 0, f"no schedule exercised {key}"
    if not FULL_PROFILE_MATRIX:
        # A single profile's 50 schedules may legitimately skip a
        # pathology (e.g. hostile storms can suppress every rejoin);
        # the full-matrix runs own the coverage proof.
        return
    assert totals["rejoins"] > 0, "no schedule exercised rejoin churn"
    assert totals["resumed"] > totals["rejoins"], (
        "sessions saved less work than the churn they cover"
    )
    assert totals["epoch_bumps"] > 0, "no schedule bumped the policy epoch"
    assert totals["perturbed_submissions"] > 0, (
        "no schedule exercised firmware-skew corruption"
    )
    assert quarantines > 0, "no corrupted submission was ever attributed"
    assert totals["ambient_dropped"] > 0
    assert totals["auto_replayed"] > 0, "no schedule exercised replay traffic"
    assert totals["redeliveries_delivered"] > 0, (
        "no duplicate ever reached an idempotent handler"
    )


@pytest.mark.parametrize("profile", PROFILE_NAMES)
def test_same_coordinates_replay_identically(profile):
    """Fresh deployment + same (seed, index, profile) => same signature."""
    runs = []
    for _attempt in range(2):
        runs.append(
            tuple(
                _run("fleet-replay", index, profile)["signature"]
                for index in range(REPLAY_SCHEDULES)
            )
        )
    assert runs[0] == runs[1]


def test_distinct_seeds_differ():
    """Sanity: the schedule space is actually being sampled."""
    signatures = []
    for seed in DEFAULT_SEEDS:
        signatures.append(
            tuple(
                _run(seed, index, _profile_for(index))["signature"]
                for index in range(REPLAY_SCHEDULES)
            )
        )
    assert signatures[0] != signatures[1]
