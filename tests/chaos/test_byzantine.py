"""Byzantine chaos: sampled attacker mixes, exact-or-blamed-abort, replayable.

The crash/omission counterpart lives in ``test_chaos.py``; this suite
samples ``SCHEDULES_PER_SEED`` attacker mixes per chaos seed (clients
that replay, equivocate, flood, or forge; a blinding service that lies;
an aggregator that tampers) and drives each through a full round on one
shared deployment.  Between schedules the operator pardons the
quarantined offenders — re-arming the quarantine path for the next mix —
so every sampled round must end in exactly one of two ways:

* a **bit-exact finalize** over precisely the honest contributions that
  stayed accepted, or
* a **detected abort** whose telemetry names at least one offender.

``undetected-corruption`` — a finalized-but-wrong aggregate — fails the
suite on sight, and the same seed must replay the identical violation
sequence on a fresh deployment.
"""

from __future__ import annotations

import os

import pytest

from repro.byzantine import (
    OUTCOME_CLEAN,
    OUTCOME_DETECTED_ABORT,
    OUTCOME_EXACT,
    OUTCOME_UNDETECTED_CORRUPTION,
    AttackPlan,
    install_attacks,
    run_byzantine_round,
)
from repro.crypto.drbg import HmacDrbg
from repro.experiments.common import Deployment

SCHEDULES_PER_SEED = 50
NUM_USERS = 4

DEFAULT_SEEDS = ("byz-a", "byz-b", "byz-c")
SEEDS = (
    (os.environ["CHAOS_SEED"],) if os.environ.get("CHAOS_SEED") else DEFAULT_SEEDS
)


def _build(seed: str) -> Deployment:
    return Deployment.build(
        num_users=NUM_USERS,
        seed=b"byz-chaos:" + seed.encode(),
        sentences_per_user=12,
    )


def _plan(seed: str, index: int, user_ids) -> AttackPlan:
    return AttackPlan.sample(
        HmacDrbg(seed.encode(), personalization=f"byz-plan-{index}"),
        clients=user_ids,
        rounds=(index + 1,),
        label=f"{seed}#{index}",
    )


def _run_schedule(deployment, seed: str, index: int, user_ids):
    """One sampled mix through one round; returns a comparable trace."""
    plan = _plan(seed, index, user_ids)
    install_attacks(
        deployment,
        plan,
        HmacDrbg(f"{seed}:{index}".encode(), personalization="byz-install"),
    )
    result = run_byzantine_round(deployment, index + 1, user_ids, plan)
    assert result.outcome != OUTCOME_UNDETECTED_CORRUPTION, (
        f"{plan.label}: round {index + 1} finalized a corrupted aggregate"
    )
    assert result.outcome in (
        OUTCOME_CLEAN,
        OUTCOME_EXACT,
        OUTCOME_DETECTED_ABORT,
    ), f"{plan.label}: unexpected outcome {result.outcome}"
    if result.aborted:
        assert result.offenders, (
            f"{plan.label}: aborted without naming an offender in telemetry"
        )
    aggregate = (
        None
        if result.report.aggregate is None
        else tuple(float(v) for v in result.report.aggregate)
    )
    trace = (
        result.outcome,
        result.offenders,
        tuple((v.offender, v.kind) for v in result.report.violations),
        aggregate,
    )
    # Operator pardon between schedules: re-arms quarantine for the next mix.
    quarantine = deployment.engine.quarantine
    for name in quarantine.blocked():
        quarantine.pardon(name)
    return plan, trace


@pytest.mark.parametrize("seed", SEEDS)
def test_sampled_attacker_mixes_are_exact_or_blamed_abort(seed):
    deployment = _build(seed)
    user_ids = [user.user_id for user in deployment.corpus.users]
    outcomes = {OUTCOME_CLEAN: 0, OUTCOME_EXACT: 0, OUTCOME_DETECTED_ABORT: 0}
    for index in range(SCHEDULES_PER_SEED):
        _, trace = _run_schedule(deployment, seed, index, user_ids)
        outcomes[trace[0]] += 1
    assert sum(outcomes.values()) == SCHEDULES_PER_SEED
    # The sweep is only meaningful if attacks bite in both directions:
    # some mixes must finalize exactly *despite* attackers, some must
    # force blamed aborts, and benign mixes must stay clean.
    assert outcomes[OUTCOME_EXACT] > 0
    assert outcomes[OUTCOME_DETECTED_ABORT] > 0
    assert outcomes[OUTCOME_CLEAN] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_identical_violation_sequence(seed):
    replays = []
    for _ in range(2):
        deployment = _build(seed)
        user_ids = [user.user_id for user in deployment.corpus.users]
        specs = []
        traces = []
        for index in range(10):
            plan, trace = _run_schedule(deployment, seed, index, user_ids)
            specs.append((plan.label, plan.specs))
            traces.append(trace)
        replays.append((specs, traces))
    assert replays[0][0] == replays[1][0], "attacker mixes must replay exactly"
    assert replays[0][1] == replays[1][1], (
        "outcomes, violation sequences, and aggregates must replay exactly"
    )


def test_distinct_seeds_sample_distinct_attacks():
    """Sanity: the attacker-mix space is actually being sampled."""
    traces = []
    for seed in ("byz-a", "byz-b"):
        deployment = _build(seed)
        user_ids = [user.user_id for user in deployment.corpus.users]
        fired = []
        for index in range(6):
            plan, trace = _run_schedule(deployment, seed, index, user_ids)
            fired.append((plan.specs, trace[:3]))
        traces.append(tuple(fired))
    assert traces[0] != traces[1]
