"""Chaos harness: randomized-but-deterministic fault schedules.

Run directly with ``PYTHONPATH=src python -m pytest tests/chaos -q``.
Set ``CHAOS_SEED`` to pin a single seed (the CI matrix does this);
otherwise every built-in seed runs.
"""
