"""Service-layer chaos: storage fault schedules + kill-and-restart.

Protocol chaos (``test_chaos.py``) proves exact-or-abort inside one
process.  This suite proves the *service's* exact-or-recovered guarantee
across process lifetimes: ``SCHEDULES_PER_SEED`` sampled schedules of
storage pathologies (I/O errors, torn writes, lost-after-ack, audit
corruption) and hard kill-points per seed, on every storage backend.
Each schedule runs :func:`repro.service.chaos.run_service_schedule`,
which restarts the service from persisted state after every incident and
asserts, per schedule:

* no acknowledged submission lost, none double-counted;
* every finalized round's aggregate codec-exact over its journaled
  values (recovered rounds indistinguishable from uninterrupted ones);
* the audit chain verifies, through explicit repair records if needed.

``CHAOS_SEED`` / ``SERVICE_BACKEND`` narrow the matrix (CI shards on
them); ``CHAOS_ARTIFACT_DIR`` collects a JSON artifact for any failing
schedule so the exact (seed, index, rate, backend) replays locally.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.common import Deployment
from repro.service.chaos import run_service_schedule
from repro.service.storage import BACKEND_KINDS, build_backend

SCHEDULES_PER_SEED = 50
REPLAY_SCHEDULES = 6
FAULT_RATES = (0.02, 0.05, 0.1, 0.15)

DEFAULT_SEEDS = ("svc-a", "svc-b")
SEEDS = (
    (os.environ["CHAOS_SEED"],) if os.environ.get("CHAOS_SEED") else DEFAULT_SEEDS
)
BACKENDS = (
    (os.environ["SERVICE_BACKEND"],)
    if os.environ.get("SERVICE_BACKEND")
    else BACKEND_KINDS
)

# The harness builds its services with exactly these knobs; the codec
# used for the bit-exactness oracle must come from the same deployment.
SERVICE_KNOBS = dict(num_users=3, sentences_per_user=3, max_features=8)


@pytest.fixture(scope="module")
def codec():
    return Deployment.build(seed=b"glimmer-service", **SERVICE_KNOBS).codec


def _factory(kind: str, tmp_path, index: int):
    """A reopenable handle over one schedule's persistent state."""
    if kind == "memory":
        backend = build_backend("memory")
        return lambda: backend
    path = str(
        tmp_path / f"{index:03d}" / ("state.db" if kind == "sqlite" else "state")
    )
    os.makedirs(os.path.dirname(path), exist_ok=True)
    return lambda: build_backend(kind, path=path)


def _run(kind, tmp_path, codec, seed: str, index: int, **kwargs):
    params = dict(
        seed=seed.encode(),
        index=index,
        fault_rate=FAULT_RATES[index % len(FAULT_RATES)],
        codec=codec,
        waves=2 if index % 3 == 0 else 1,
    )
    params.update(kwargs)
    try:
        return run_service_schedule(
            _factory(kind, tmp_path, index), **params
        )
    except Exception as exc:
        artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            name = f"service-chaos-{kind}-{seed}-{index:03d}.json"
            with open(os.path.join(artifact_dir, name), "w") as handle:
                json.dump(
                    {
                        "backend": kind,
                        "seed": seed,
                        "index": index,
                        "fault_rate": params["fault_rate"],
                        "waves": params["waves"],
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                    handle,
                    indent=2,
                )
        raise


@pytest.mark.parametrize("kind", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_service_chaos_exact_or_recovered(kind, seed, tmp_path, codec):
    totals = {
        "kills": 0,
        "restarts": 0,
        "rounds_recovered": 0,
        "rounds_settled": 0,
        "rounds_finalized": 0,
        "audit_repairs": 0,
        "acked": 0,
    }
    for index in range(SCHEDULES_PER_SEED):
        report = _run(kind, tmp_path, codec, seed, index)
        for key in totals:
            totals[key] += report[key]
    # Per-schedule invariants (exactly-once, bit-exact aggregates, audit
    # chain) are asserted inside the harness; here we assert the sweep
    # actually exercised the machinery it claims to prove.
    assert totals["rounds_finalized"] >= SCHEDULES_PER_SEED
    assert totals["acked"] > 0
    assert totals["kills"] > 0, "no schedule killed the process"
    assert totals["restarts"] > 0, "no schedule forced a restart"
    assert (
        totals["rounds_recovered"] + totals["rounds_settled"] > 0
    ), "no schedule exercised round recovery"
    assert totals["audit_repairs"] > 0, "no schedule repaired the audit chain"


@pytest.mark.parametrize("kind", BACKENDS)
def test_same_seed_replays_identical_schedule(kind, tmp_path, codec):
    """Fresh state + same seed => identical firings, kills, aggregates."""
    runs = []
    for attempt in range(2):
        signatures = []
        for index in range(REPLAY_SCHEDULES):
            report = _run(
                kind,
                tmp_path / f"run{attempt}",
                codec,
                "svc-replay",
                index,
            )
            signatures.append(
                (report["signature"], tuple(report["incidents"]))
            )
        runs.append(tuple(signatures))
    assert runs[0] == runs[1]


def test_distinct_seeds_differ(tmp_path, codec):
    """Sanity: the schedule space is actually being sampled."""
    logs = []
    for seed in ("svc-a", "svc-b"):
        fired = []
        for index in range(REPLAY_SCHEDULES):
            report = _run(
                "memory", tmp_path / seed, codec, seed, index
            )
            fired.append(report["fired"])
        logs.append(tuple(fired))
    assert logs[0] != logs[1]
