"""Chaos tests: sampled fault schedules, exact-or-abort, replayable.

Each chaos seed drives ``SCHEDULES_PER_SEED`` sampled fault schedules
through full rounds on one shared deployment (state deliberately carries
over — a client left crashed by round N must be recovered by round N+1's
engine, like a real fleet).  The invariant under every schedule is the
design's exact-or-abort guarantee:

* a finalized round's aggregate equals, **bit for bit**, the fixed-point
  mean over exactly the contributions marked accepted — no injected
  fault may double-count a submission or leak a live mask into repair;
* an aborted round raises :class:`RoundAbortedError` carrying a partial
  ``aborted=True`` report with its phase window closed, and publishes no
  aggregate.

Determinism is asserted separately: the same chaos seed replays the same
fault schedule, fault firings, outcomes, and aggregates on a fresh
deployment.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import RoundAbortedError
from repro.experiments.common import Deployment
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.telemetry import OUTCOME_ACCEPTED

SCHEDULES_PER_SEED = 50
NUM_USERS = 4
FAULT_RATES = (0.02, 0.05, 0.1, 0.2)

DEFAULT_SEEDS = ("chaos-a", "chaos-b", "chaos-c")
SEEDS = (
    (os.environ["CHAOS_SEED"],) if os.environ.get("CHAOS_SEED") else DEFAULT_SEEDS
)


def _build(seed: str) -> Deployment:
    return Deployment.build(
        num_users=NUM_USERS,
        seed=b"chaos:" + seed.encode(),
        sentences_per_user=12,
    )


def _schedule(seed: str, index: int, user_ids) -> tuple[FaultPlan, FaultInjector]:
    rate = FAULT_RATES[index % len(FAULT_RATES)]
    plan = FaultPlan.sample(
        HmacDrbg(seed.encode(), personalization=f"chaos-plan-{index}"),
        rate,
        clients=user_ids,
        rounds=(index + 1,),
        label=f"{seed}#{index}",
    )
    injector = FaultInjector(plan, seed=f"{seed}:{index}".encode())
    return plan, injector


def _run_schedule(deployment, round_id, injector, user_ids, vectors):
    """One round under one schedule; returns a comparable outcome tuple."""
    deployment.enable_faults(injector)
    try:
        report = deployment.engine.run_round(
            round_id,
            user_ids,
            vectors,
            deployment.features.bigrams,
            recovery_threshold=0.25,
        )
    except RoundAbortedError as err:
        report = getattr(err, "report", None)
        assert report is not None, "abort must carry its partial report"
        assert report.aborted and report.abort_reason
        assert report.aggregate is None
        assert report.phases, "abort must close its phase window into the report"
        assert deployment.engine.reports[round_id] is report
        deployment.engine.abandon_round(round_id)
        return ("aborted", report.abort_reason, tuple(sorted(report.outcomes.items())))
    accepted = [
        u for u in report.participants if report.outcomes.get(u) == OUTCOME_ACCEPTED
    ]
    assert accepted, "a finalized round must have accepted contributions"
    encoded = [
        deployment.codec.encode(list(vectors[u])) for u in accepted
    ]
    truth = deployment.codec.decode(
        deployment.codec.sum_vectors(encoded)
    ) / len(encoded)
    assert np.array_equal(np.asarray(report.aggregate), truth), (
        f"round {round_id}: finalized aggregate is not the exact mean over "
        f"the {len(accepted)} accepted contributions"
    )
    return (
        "finalized",
        tuple(float(v) for v in np.asarray(report.aggregate)),
        tuple(sorted(report.outcomes.items())),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_sampled_schedules_are_exact_or_abort(seed):
    deployment = _build(seed)
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    finalized = aborted = 0
    for index in range(SCHEDULES_PER_SEED):
        _, injector = _schedule(seed, index, user_ids)
        kind, *_ = _run_schedule(
            deployment, index + 1, injector, user_ids, vectors
        )
        if kind == "finalized":
            finalized += 1
        else:
            aborted += 1
    assert finalized + aborted == SCHEDULES_PER_SEED
    # The harness is only meaningful if faults actually bite AND most
    # rounds still make it through repair/recovery.
    assert finalized > aborted


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_identical_schedule_and_outcome(seed):
    replays = []
    for _ in range(2):
        deployment = _build(seed)
        user_ids = [user.user_id for user in deployment.corpus.users]
        vectors = deployment.local_vectors()
        fired = []
        outcomes = []
        for index in range(8):
            plan, injector = _schedule(seed, index, user_ids)
            outcomes.append(
                _run_schedule(deployment, index + 1, injector, user_ids, vectors)
            )
            fired.append((plan.label, injector.fired_log()))
        replays.append((fired, outcomes))
    assert replays[0][0] == replays[1][0], "fault firings must replay exactly"
    assert replays[0][1] == replays[1][1], "round outcomes must replay exactly"


def test_distinct_seeds_differ():
    """Sanity: the schedule space is actually being sampled."""
    logs = []
    for seed in ("chaos-a", "chaos-b"):
        deployment = _build(seed)
        user_ids = [user.user_id for user in deployment.corpus.users]
        vectors = deployment.local_vectors()
        fired = []
        for index in range(6):
            _, injector = _schedule(seed, index, user_ids)
            _run_schedule(deployment, index + 1, injector, user_ids, vectors)
            fired.append(injector.fired_log())
        logs.append(tuple(fired))
    assert logs[0] != logs[1]
