"""Every Byzantine actor lands in its designed detection path.

One deployment per test; each drives a full round over the message bus
through :func:`run_byzantine_round` and asserts the classification the
design promises — exact finalize with the offender named, or a blamed
abort.  Undetected corruption must never appear.
"""

from __future__ import annotations

import pytest

from repro.byzantine import (
    ATTACK_BLINDER_FORGED_CLAIMS,
    ATTACK_BLINDER_TAMPER_DELIVERY,
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_EQUIVOCATE,
    ATTACK_FLOOD,
    ATTACK_FORGE,
    ATTACK_REPLAY,
    ATTACK_SERVICE_CORRUPT,
    ATTACK_SERVICE_DUPLICATE,
    ATTACK_SERVICE_MISCOUNT,
    ATTACK_SERVICE_OMIT,
    OUTCOME_CLEAN,
    OUTCOME_DETECTED_ABORT,
    OUTCOME_EXACT,
    AttackPlan,
    AttackSpec,
    LyingBlinder,
    TamperingAggregator,
    install_attacks,
    run_byzantine_round,
)
from repro.crypto.drbg import HmacDrbg
from repro.experiments.common import Deployment
from repro.runtime.messages import client_endpoint
from repro.runtime.protocol import (
    VIOLATION_EQUIVOCATION,
    VIOLATION_FLOODING,
    VIOLATION_MASK_OPENING,
    VIOLATION_NON_SUM_ZERO,
    VIOLATION_REPLAY,
)
from repro.runtime.telemetry import OUTCOME_EVICTED, OUTCOME_QUARANTINED


def _deploy(tag: bytes) -> Deployment:
    return Deployment.build(
        num_users=3, seed=b"byz-actors:" + tag, sentences_per_user=10
    )


def _users(deployment) -> list[str]:
    return [user.user_id for user in deployment.corpus.users]


def _single(kind: str, target: str | None = None) -> AttackPlan:
    return AttackPlan(specs=(AttackSpec(kind=kind, target=target),), label=kind)


def _run(deployment, plan: AttackPlan, round_id: int = 1):
    install_attacks(
        deployment, plan, HmacDrbg(b"install:" + plan.label.encode())
    )
    return run_byzantine_round(
        deployment, round_id, _users(deployment), plan
    )


def _kinds(result) -> set[str]:
    return {violation.kind for violation in result.report.violations}


def test_benign_plan_finalizes_clean():
    result = _run(_deploy(b"benign"), AttackPlan(label="benign"))
    assert result.outcome == OUTCOME_CLEAN
    assert not result.report.violations
    assert not result.offenders
    assert not result.corrupted


def test_replaying_client_is_recorded_and_the_round_stays_exact():
    deployment = _deploy(b"replay")
    target = _users(deployment)[0]
    result = _run(deployment, _single(ATTACK_REPLAY, target))
    assert result.outcome == OUTCOME_EXACT
    assert VIOLATION_REPLAY in _kinds(result)
    assert client_endpoint(target) in result.offenders
    # Replay is recorded, not punished: the nonce cache already defangs it.
    assert not deployment.engine.quarantine.is_blocked(client_endpoint(target))


def test_equivocating_client_is_evicted_quarantined_and_excluded_next_round():
    deployment = _deploy(b"equivocate")
    target = _users(deployment)[0]
    plan = _single(ATTACK_EQUIVOCATE, target)
    first = _run(deployment, plan)
    assert first.outcome == OUTCOME_EXACT
    assert VIOLATION_EQUIVOCATION in _kinds(first)
    assert first.report.outcomes[target] == OUTCOME_EVICTED
    assert client_endpoint(target) in first.report.quarantined
    assert deployment.engine.quarantine.is_blocked(client_endpoint(target))
    second = run_byzantine_round(deployment, 2, _users(deployment), plan)
    assert second.outcome == OUTCOME_EXACT
    assert second.report.outcomes[target] == OUTCOME_QUARANTINED
    assert target not in second.report.survivors


def test_flooding_client_trips_the_threshold_and_is_quarantined():
    deployment = _deploy(b"flood")
    target = _users(deployment)[0]
    result = _run(deployment, _single(ATTACK_FLOOD, target))
    assert result.outcome == OUTCOME_EXACT
    assert VIOLATION_FLOODING in _kinds(result)
    assert client_endpoint(target) in result.offenders
    assert deployment.engine.quarantine.is_blocked(client_endpoint(target))


def test_forged_contribution_is_rejected_by_signature_alone():
    deployment = _deploy(b"forge")
    target = _users(deployment)[0]
    result = _run(deployment, _single(ATTACK_FORGE, target))
    assert result.outcome == OUTCOME_EXACT
    assert not result.corrupted
    assert target not in result.report.survivors


@pytest.mark.parametrize(
    "kind, expected_violation",
    [
        (ATTACK_BLINDER_TAMPER_DELIVERY, VIOLATION_MASK_OPENING),
        (ATTACK_BLINDER_TAMPER_REVEAL, VIOLATION_MASK_OPENING),
        (ATTACK_BLINDER_FORGED_CLAIMS, VIOLATION_NON_SUM_ZERO),
    ],
)
def test_lying_blinder_forces_a_blamed_abort(kind, expected_violation):
    result = _run(_deploy(kind.encode()), _single(kind))
    assert result.outcome == OUTCOME_DETECTED_ABORT
    assert result.aborted and not result.corrupted
    assert "blinder" in result.offenders
    assert expected_violation in _kinds(result)


@pytest.mark.parametrize(
    "kind",
    [
        ATTACK_SERVICE_CORRUPT,
        ATTACK_SERVICE_OMIT,
        ATTACK_SERVICE_DUPLICATE,
        ATTACK_SERVICE_MISCOUNT,
    ],
)
def test_tampering_aggregator_is_caught_by_the_audit(kind):
    result = _run(_deploy(kind.encode()), _single(kind))
    assert result.outcome == OUTCOME_DETECTED_ABORT
    assert result.aborted and not result.corrupted
    assert "service" in result.offenders


def test_install_attacks_is_idempotent_and_reversible():
    deployment = _deploy(b"idempotent")
    hostile = AttackPlan(
        specs=(
            AttackSpec(ATTACK_BLINDER_FORGED_CLAIMS),
            AttackSpec(ATTACK_SERVICE_CORRUPT),
        ),
        label="hostile",
    )
    install_attacks(deployment, hostile, HmacDrbg(b"i1"))
    install_attacks(deployment, hostile, HmacDrbg(b"i2"))
    # Reinstalling never nests wrappers around wrappers.
    assert not isinstance(deployment.blinder_provisioner.inner, LyingBlinder)
    assert not isinstance(deployment.service.inner, TamperingAggregator)
    benign = AttackPlan(label="benign-again")
    install_attacks(deployment, benign, HmacDrbg(b"i3"))
    assert not isinstance(deployment.blinder_provisioner, LyingBlinder)
    assert not isinstance(deployment.service, TamperingAggregator)
    result = run_byzantine_round(deployment, 1, _users(deployment), benign)
    assert result.outcome == OUTCOME_CLEAN
