"""Attack-plan sampling: deterministic, bounded, and well-typed."""

from repro.byzantine import (
    ALL_ATTACKS,
    ATTACK_BLINDER_FORGED_CLAIMS,
    ATTACK_EQUIVOCATE,
    ATTACK_REPLAY,
    ATTACK_SERVICE_CORRUPT,
    BLINDER_ATTACKS,
    CLIENT_ATTACKS,
    SERVICE_ATTACKS,
    AttackPlan,
    AttackSpec,
)
from repro.crypto.drbg import HmacDrbg

CLIENTS = tuple(f"user-{i:04d}" for i in range(5))


def _sample(seed: bytes, index: int = 0, **kwargs) -> AttackPlan:
    rng = HmacDrbg(seed, personalization=f"plan-{index}")
    return AttackPlan.sample(rng, clients=CLIENTS, **kwargs)


def test_attack_pools_partition_the_kind_space():
    assert set(ALL_ATTACKS) == (
        set(CLIENT_ATTACKS) | set(BLINDER_ATTACKS) | set(SERVICE_ATTACKS)
    )
    assert len(ALL_ATTACKS) == len(set(ALL_ATTACKS))


def test_same_seed_samples_identical_plans():
    for index in range(20):
        assert _sample(b"det", index) == _sample(b"det", index)


def test_distinct_seeds_sample_different_plans():
    first = [_sample(b"seed-a", index) for index in range(20)]
    second = [_sample(b"seed-b", index) for index in range(20)]
    assert first != second


def test_sampled_plans_are_well_formed():
    for index in range(50):
        plan = _sample(b"shape", index, rounds=(index + 1,))
        client_targets = [
            spec.target for spec in plan.specs if spec.kind in CLIENT_ATTACKS
        ]
        assert len(client_targets) == len(set(client_targets)) <= 2
        assert sum(1 for s in plan.specs if s.kind in BLINDER_ATTACKS) <= 1
        assert sum(1 for s in plan.specs if s.kind in SERVICE_ATTACKS) <= 1
        for spec in plan.specs:
            assert spec.kind in ALL_ATTACKS
            assert spec.round_id == index + 1
            if spec.kind in CLIENT_ATTACKS:
                assert spec.target in CLIENTS


def test_sampling_covers_the_whole_attack_space():
    kinds: set[str] = set()
    for index in range(300):
        kinds.update(spec.kind for spec in _sample(b"coverage", index).specs)
    assert kinds == set(ALL_ATTACKS)


def test_spec_applies_respects_round_pinning():
    everywhere = AttackSpec(kind=ATTACK_REPLAY, target="u")
    pinned = AttackSpec(kind=ATTACK_REPLAY, target="u", round_id=3)
    assert everywhere.applies(1) and everywhere.applies(538)
    assert pinned.applies(3)
    assert not pinned.applies(4)


def test_plan_accessors_filter_by_role_target_and_round():
    plan = AttackPlan(
        specs=(
            AttackSpec(ATTACK_EQUIVOCATE, target="alice", round_id=2),
            AttackSpec(ATTACK_BLINDER_FORGED_CLAIMS, round_id=1),
            AttackSpec(ATTACK_SERVICE_CORRUPT),
        )
    )
    assert not plan.is_benign
    assert plan.client_attack(2, "alice").kind == ATTACK_EQUIVOCATE
    assert plan.client_attack(1, "alice") is None
    assert plan.client_attack(2, "bob") is None
    assert plan.blinder_attack(1) is not None
    assert plan.blinder_attack(2) is None
    assert plan.blinder_attack() is not None
    assert plan.service_attack(7).kind == ATTACK_SERVICE_CORRUPT
    assert AttackPlan().is_benign
