"""One end-to-end round at realistic key sizes (Oakley 768-bit group).

Everything else runs over the fast 64-bit TEST_GROUP; this single test
confirms nothing in the pipeline silently depends on the small group —
handshakes, Schnorr signatures, mask delivery, and the service checks all
behave identically at real-world parameter sizes.
"""

import numpy as np
import pytest

from repro.crypto.dh import OAKLEY_GROUP_1
from repro.errors import ValidationError
from repro.experiments.common import Deployment


@pytest.fixture(scope="module")
def oakley_deployment():
    return Deployment.build(
        num_users=2, seed=b"oakley-e2e", sentences_per_user=8, group=OAKLEY_GROUP_1
    )


def test_full_round_at_real_key_sizes(oakley_deployment):
    deployment = oakley_deployment
    user_ids = [u.user_id for u in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), deployment.features.bigrams
        )
        assert deployment.service.submit(1, signed)
    result = deployment.service.finalize_blinded_round(1)
    expected = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    assert np.allclose(result.aggregate, expected, atol=1e-3)


def test_validation_still_bites_at_real_key_sizes(oakley_deployment):
    deployment = oakley_deployment
    user_id = deployment.corpus.users[0].user_id
    deployment.blinder_provisioner.open_round(2, 1, len(deployment.features))
    deployment.clients[user_id].provision_mask(deployment.blinder_provisioner, 2, 0)
    with pytest.raises(ValidationError):
        deployment.clients[user_id].contribute(
            2,
            [538.0] + [0.0] * (len(deployment.features) - 1),
            deployment.features.bigrams,
        )
