"""Deterministic link weather: plan sampling and on-wire execution.

The replayability contract is the load-bearing one — the fleet chaos
suite trusts that ``(seed, index, profile)`` pins every drop, delay,
duplicate, and perturbation.  These tests pin that contract directly,
plus the adversary-composition regression (satellite: DropAdversary and
ReplayAdversary draw from *injected* DRBGs, so a composed chain replays
identically under the same seeds).
"""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrSignature
from repro.core.signing import SignedContribution
from repro.errors import ProtocolViolation
from repro.network.adversary import DropAdversary, ReplayAdversary
from repro.network.clock import SimulatedClock
from repro.network.conditions import (
    CELLULAR_EDGE,
    Episode,
    FleetPlan,
    HOSTILE,
    LinkConditions,
    LinkSchedule,
    PROFILES,
    URBAN_WIFI,
    resolve_profile,
    sample_fleet_plan,
)
from repro.network.message import Message
from repro.runtime import messages as m
from repro.runtime.wire import validate_contribution


CLIENTS = ["alice", "bob", "carol", "dave", "erin", "frank"]


class _FakeNetwork:
    """Just the redelivery queue surface the adversaries need."""

    def __init__(self) -> None:
        self.enqueued: list[Message] = []

    def enqueue_redelivery(self, message: Message) -> None:
        self.enqueued.append(message)


def _message(
    sender: str,
    kind: str = m.KIND_CONTRIBUTE,
    payload=0,
    message_id: int = 1,
    sent_at_ms: float = 0.0,
) -> Message:
    return Message(
        sender=sender,
        receiver="engine",
        kind=kind,
        payload=payload,
        message_id=message_id,
        sent_at_ms=sent_at_ms,
        attempt=1,
    )


def _quiet_schedule(client_id: str, **overrides) -> LinkSchedule:
    """A schedule that does nothing unless a field says otherwise."""
    fields = dict(
        client_id=client_id,
        extra_latency_ms=0.0,
        jitter_ms=0.0,
        spike_rate=0.0,
        spike_ms=(0.0, 0.0),
        burst_start_rate=0.0,
        burst_length=(1, 1),
        duplicate_rate=0.0,
        partitions=(),
        disconnects=(),
        clock_skew_ms=0.0,
        firmware_skew=False,
        firmware_perturb_rate=0.0,
    )
    fields.update(overrides)
    return LinkSchedule(**fields)


def _plan_of(*schedules: LinkSchedule) -> FleetPlan:
    return FleetPlan(
        profile="test",
        label="test",
        horizon_ms=8000.0,
        links={s.client_id: s for s in schedules},
        epoch_bumps=(),
    )


# ------------------------------------------------------------- plan sampling


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_same_coordinates_same_plan(profile):
    a = sample_fleet_plan(b"seed", 3, profile, CLIENTS)
    b = sample_fleet_plan(b"seed", 3, profile, CLIENTS)
    assert a.describe() == b.describe()


def test_plan_stable_under_cohort_reordering():
    a = sample_fleet_plan(b"seed", 0, HOSTILE, CLIENTS)
    b = sample_fleet_plan(b"seed", 0, HOSTILE, list(reversed(CLIENTS)))
    assert a.describe() == b.describe()


def test_distinct_coordinates_distinct_plans():
    base = sample_fleet_plan(b"seed", 0, HOSTILE, CLIENTS).describe()
    assert sample_fleet_plan(b"seed", 1, HOSTILE, CLIENTS).describe() != base
    assert sample_fleet_plan(b"other", 0, HOSTILE, CLIENTS).describe() != base
    assert (
        sample_fleet_plan(b"seed", 0, URBAN_WIFI, CLIENTS).describe() != base
    )


@pytest.mark.parametrize("index", range(20))
def test_firmware_skew_capped_at_a_third(index):
    plan = sample_fleet_plan(b"cap", index, HOSTILE, CLIENTS)
    skewed = sum(link.firmware_skew for link in plan.links.values())
    assert skewed <= max(1, len(CLIENTS) // 3)


def test_resolve_profile_accepts_names_and_objects():
    assert resolve_profile("cellular-edge") is CELLULAR_EDGE
    assert resolve_profile(HOSTILE) is HOSTILE
    with pytest.raises(ValueError, match="unknown condition profile"):
        resolve_profile("desert-microwave")


def test_episode_windows_are_half_open():
    episode = Episode(start_ms=100.0, end_ms=200.0)
    schedule = _quiet_schedule("alice", partitions=(episode,))
    assert not schedule.offline_at(99.9)
    assert schedule.offline_at(100.0)
    assert schedule.partitioned_at(150.0)
    assert not schedule.offline_at(200.0)
    assert not schedule.disconnected_at(150.0)


# ----------------------------------------------------------- wire execution


def test_offline_window_drops_and_oracle_agrees():
    schedule = _quiet_schedule(
        "alice", partitions=(Episode(start_ms=0.0, end_ms=500.0),)
    )
    clock = SimulatedClock()
    conditions = LinkConditions(_plan_of(schedule), clock, HmacDrbg(b"t"))
    assert conditions.offline_for("alice")
    assert conditions.process(_message("client:alice")) is None
    assert conditions.counters()["offline_drops"] == 1
    clock.advance(600.0)
    assert not conditions.offline_for("alice")
    assert conditions.process(_message("client:alice")) is not None


def test_non_client_legs_pass_untouched():
    schedule = _quiet_schedule(
        "alice", partitions=(Episode(start_ms=0.0, end_ms=500.0),)
    )
    conditions = LinkConditions(
        _plan_of(schedule), SimulatedClock(), HmacDrbg(b"t")
    )
    message = Message(
        sender="engine",
        receiver="service",
        kind=m.KIND_SUBMIT,
        payload=7,
        message_id=1,
        sent_at_ms=0.0,
        attempt=1,
    )
    assert conditions.process(message) is message


def test_calm_ends_the_storm():
    schedule = _quiet_schedule(
        "alice",
        partitions=(Episode(start_ms=0.0, end_ms=500.0),),
        duplicate_rate=1.0,
    )
    conditions = LinkConditions(
        _plan_of(schedule), SimulatedClock(), HmacDrbg(b"t")
    )
    conditions.calm()
    message = _message("client:alice")
    assert conditions.process(message) is message
    assert not conditions.offline_for("alice")
    assert conditions.counters()["offline_drops"] == 0


def test_duplicates_queue_with_incremented_attempt():
    schedule = _quiet_schedule("alice", duplicate_rate=1.0)
    network = _FakeNetwork()
    conditions = LinkConditions(
        _plan_of(schedule), SimulatedClock(), HmacDrbg(b"t")
    )
    conditions.attach(network)
    original = _message("client:alice")
    assert conditions.process(original) is not None
    assert len(network.enqueued) == 1
    copy = network.enqueued[0]
    assert copy.attempt == original.attempt + 1
    assert copy.message_id == original.message_id
    assert conditions.duplicates == 1
    # Reply legs are never duplicated: a response is not a logical send.
    reply = _message("client:alice", kind=m.KIND_CONTRIBUTE + "/reply")
    conditions.process(reply)
    assert len(network.enqueued) == 1


def test_latency_spikes_advance_the_clock():
    schedule = _quiet_schedule(
        "alice", extra_latency_ms=25.0, spike_rate=1.0, spike_ms=(100.0, 100.0)
    )
    clock = SimulatedClock()
    conditions = LinkConditions(_plan_of(schedule), clock, HmacDrbg(b"t"))
    conditions.process(_message("client:alice"))
    assert clock.now_ms() == pytest.approx(125.0)
    assert conditions.spikes == 1
    assert conditions.counters()["delay_injected_ms"] == pytest.approx(125.0)


def test_clock_skew_applies_to_client_sent_traffic_only():
    schedule = _quiet_schedule("alice", clock_skew_ms=300.0)
    conditions = LinkConditions(
        _plan_of(schedule), SimulatedClock(), HmacDrbg(b"t")
    )
    outbound = conditions.process(_message("client:alice", sent_at_ms=100.0))
    assert outbound.sent_at_ms == pytest.approx(400.0)
    inbound = Message(
        sender="engine",
        receiver="client:alice",
        kind=m.KIND_PROVISION_MASK,
        payload=0,
        message_id=2,
        sent_at_ms=100.0,
        attempt=1,
    )
    assert conditions.process(inbound).sent_at_ms == pytest.approx(100.0)
    assert conditions.skewed_clock == 1


# ------------------------------------------ firmware skew → wire rejection


def _signed(ring=(1, 2, 3), nonce=b"\x07" * 16, confidence=0.5):
    return SignedContribution(
        round_id=1,
        nonce=nonce,
        blinded=True,
        ring_payload=tuple(ring),
        plain_payload=None,
        confidence=confidence,
        signature=SchnorrSignature(challenge=1, response=1),
    )


def test_every_firmware_perturbation_violates_the_wire_schema():
    """Zero undetected corruption, at the unit level.

    Whatever mutation the skewed firmware draws, the result must fail
    :func:`repro.runtime.wire.validate_contribution` — that rejection is
    what turns corruption into attributable Byzantine evidence instead
    of silent aggregate poison.
    """
    schedule = _quiet_schedule(
        "alice", firmware_skew=True, firmware_perturb_rate=1.0
    )
    conditions = LinkConditions(
        _plan_of(schedule), SimulatedClock(), HmacDrbg(b"perturb")
    )
    healthy = _signed()
    validate_contribution("client:alice", 1, healthy)  # sanity: passes clean
    mutations_seen = set()
    for message_id in range(24):
        submit = m.SubmitContribution(round_id=1, contribution=_signed())
        message = Message(
            sender="client:alice",
            receiver="service",
            kind=m.KIND_SUBMIT,
            payload=submit,
            message_id=message_id,
            sent_at_ms=0.0,
            attempt=1,
        )
        processed = conditions.process(message)
        mutated = processed.payload.contribution
        if mutated == healthy:
            continue  # this draw did not perturb a mutable field
        mutations_seen.add(
            (
                len(mutated.nonce) != 16,
                mutated.ring_payload != healthy.ring_payload,
                mutated.confidence != healthy.confidence,
            )
        )
        with pytest.raises(ProtocolViolation):
            validate_contribution("client:alice", 1, mutated)
    assert conditions.perturbed_submissions >= len(mutations_seen) >= 2
    assert conditions.process(
        _message("client:alice", kind=m.KIND_CONTRIBUTE)
    )  # non-submit kinds are never perturbed


# -------------------------------------------------- composition regression


def _composed_chain(seed: bytes):
    clock = SimulatedClock()
    plan = sample_fleet_plan(seed, 0, HOSTILE, CLIENTS[:3])
    network = _FakeNetwork()
    conditions = LinkConditions(
        plan, clock, HmacDrbg(seed, personalization="conditions")
    )
    conditions.attach(network)
    drop = DropAdversary(
        drop_rate=0.2, rng=HmacDrbg(seed, personalization="drop")
    )
    replay = ReplayAdversary(
        target_kinds={m.KIND_CONTRIBUTE},
        rng=HmacDrbg(seed, personalization="replay"),
        replay_rate=0.3,
    )
    replay.attach(network)
    return clock, network, (conditions, drop, replay)


def _drive(seed: bytes):
    """Push a fixed message sequence through the composed chain."""
    clock, network, chain = _composed_chain(seed)
    conditions, drop, replay = chain
    trace = []
    for i in range(120):
        client = CLIENTS[i % 3]
        message = _message(
            f"client:{client}",
            payload=i,
            message_id=i,
            sent_at_ms=clock.now_ms(),
        )
        current = message
        for adversary in chain:
            if current is None:
                break
            current = adversary.process(current)
        trace.append(
            None
            if current is None
            else (current.message_id, current.attempt, current.sent_at_ms)
        )
    enqueued = [(q.message_id, q.attempt) for q in network.enqueued]
    counters = dict(conditions.counters())
    counters["ambient_dropped"] = drop.dropped
    counters["auto_replayed"] = replay.auto_replayed
    return trace, enqueued, counters


def test_same_seed_composition_replays_identically():
    """Satellite regression: the full adversary *composition* is a pure
    function of the injected seeds — traces, redelivery queues, and
    every counter match across two independent runs."""
    assert _drive(b"compose") == _drive(b"compose")


def test_distinct_seed_composition_diverges():
    base = _drive(b"compose")
    other = _drive(b"esopmoc")
    assert base != other
