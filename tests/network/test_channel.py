"""Tests for DH secure channels: confidentiality, replay, reorder, direction."""

import pytest

from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.errors import AuthenticationError, ProtocolError
from repro.network.channel import (
    HandshakeOffer,
    checked_offer,
    establish_channel,
    fresh_keypair,
)


def make_pair(context="test-session"):
    rng = HmacDrbg(b"channel-tests")
    alice_kp = fresh_keypair(rng.fork("alice"), TEST_GROUP)
    bob_kp = fresh_keypair(rng.fork("bob"), TEST_GROUP)
    alice = establish_channel(alice_kp, bob_kp.public, context, rng.fork("a"), initiator=True)
    bob = establish_channel(bob_kp, alice_kp.public, context, rng.fork("b"), initiator=False)
    return alice, bob


def test_roundtrip_both_directions():
    alice, bob = make_pair()
    assert bob.decrypt(alice.encrypt(b"hello bob")) == b"hello bob"
    assert alice.decrypt(bob.encrypt(b"hello alice")) == b"hello alice"


def test_multiple_messages_in_order():
    alice, bob = make_pair()
    for i in range(10):
        assert bob.decrypt(alice.encrypt(f"msg-{i}".encode())) == f"msg-{i}".encode()


def test_replay_rejected():
    alice, bob = make_pair()
    wire = alice.encrypt(b"one")
    bob.decrypt(wire)
    with pytest.raises(AuthenticationError):
        bob.decrypt(wire)


def test_reorder_rejected():
    alice, bob = make_pair()
    first = alice.encrypt(b"first")
    second = alice.encrypt(b"second")
    with pytest.raises(AuthenticationError):
        bob.decrypt(second)
    # in-order still works afterwards
    assert bob.decrypt(first) == b"first"


def test_direction_confusion_rejected():
    """A message cannot be reflected back to its sender."""
    alice, bob = make_pair()
    wire = alice.encrypt(b"outbound")
    with pytest.raises(AuthenticationError):
        alice.decrypt(wire)


def test_tampered_ciphertext_rejected():
    alice, bob = make_pair()
    wire = bytearray(alice.encrypt(b"payload"))
    wire[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        bob.decrypt(bytes(wire))


def test_context_separation():
    rng = HmacDrbg(b"ctx")
    alice_kp = fresh_keypair(rng.fork("alice"), TEST_GROUP)
    bob_kp = fresh_keypair(rng.fork("bob"), TEST_GROUP)
    alice = establish_channel(alice_kp, bob_kp.public, "ctx-one", rng.fork("a"), True)
    bob = establish_channel(bob_kp, alice_kp.public, "ctx-two", rng.fork("b"), False)
    with pytest.raises(AuthenticationError):
        bob.decrypt(alice.encrypt(b"cross-context"))


def test_wrong_peer_key_fails():
    rng = HmacDrbg(b"wrongpeer")
    alice_kp = fresh_keypair(rng.fork("alice"), TEST_GROUP)
    bob_kp = fresh_keypair(rng.fork("bob"), TEST_GROUP)
    eve_kp = fresh_keypair(rng.fork("eve"), TEST_GROUP)
    alice = establish_channel(alice_kp, bob_kp.public, "s", rng.fork("a"), True)
    eve = establish_channel(eve_kp, alice_kp.public, "s", rng.fork("e"), False)
    with pytest.raises(AuthenticationError):
        eve.decrypt(alice.encrypt(b"for bob only"))


def test_checked_offer_valid():
    rng = HmacDrbg(b"offer")
    keypair = fresh_keypair(rng, TEST_GROUP)
    offer = HandshakeOffer(dh_public=keypair.public, group_name=TEST_GROUP.name)
    assert checked_offer(offer, TEST_GROUP) == keypair.public


def test_checked_offer_wrong_group():
    offer = HandshakeOffer(dh_public=4, group_name="some-other-group")
    with pytest.raises(ProtocolError):
        checked_offer(offer, TEST_GROUP)


def test_checked_offer_invalid_element():
    offer = HandshakeOffer(dh_public=1, group_name=TEST_GROUP.name)
    with pytest.raises(AuthenticationError):
        checked_offer(offer, TEST_GROUP)


def test_ciphertext_hides_plaintext():
    alice, _ = make_pair()
    wire = alice.encrypt(b"the secret contribution")
    assert b"the secret contribution" not in wire


def test_empty_message_roundtrip():
    alice, bob = make_pair()
    assert bob.decrypt(alice.encrypt(b"")) == b""
