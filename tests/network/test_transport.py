"""Tests for the simulated transport, clock, and adversaries."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError, NetworkError
from repro.network import (
    DropAdversary,
    EavesdropAdversary,
    LatencyModel,
    Message,
    Network,
    ReplayAdversary,
    SimulatedClock,
    TamperAdversary,
)
from repro.network.clock import LAN_LATENCY, LOCAL_LATENCY, WAN_LATENCY


def make_network(**kwargs):
    network = Network(seed=b"test-net", **kwargs)
    log = []
    network.register(
        "service",
        {
            "echo": lambda m: m.payload,
            "log": lambda m: log.append(m.payload),
        },
    )
    network.register("client", {})
    return network, log


def test_clock_starts_at_zero():
    assert SimulatedClock().now_ms() == 0.0


def test_clock_advance():
    clock = SimulatedClock(10.0)
    assert clock.advance(5.0) == 15.0
    assert clock.now_ms() == 15.0


def test_clock_rejects_negative():
    with pytest.raises(ConfigurationError):
        SimulatedClock().advance(-1.0)


def test_latency_model_sampling():
    rng = HmacDrbg(b"lat")
    model = LatencyModel(base_ms=10.0, per_kb_ms=1.0, jitter_ms=0.0)
    assert model.sample(0, rng) == pytest.approx(10.0)
    assert model.sample(2048, rng) == pytest.approx(12.0)


def test_latency_tiers_ordered():
    rng = HmacDrbg(b"lat")
    assert (
        LOCAL_LATENCY.sample(1024, rng)
        < LAN_LATENCY.sample(1024, rng)
        < WAN_LATENCY.sample(1024, rng)
    )


def test_call_roundtrip_and_clock_advances():
    network, _ = make_network()
    start = network.clock.now_ms()
    assert network.call("client", "service", "echo", b"ping") == b"ping"
    assert network.clock.now_ms() > start


def test_send_one_way():
    network, log = make_network()
    network.send("client", "service", "log", "entry")
    assert log == ["entry"]


def test_unknown_endpoint():
    network, _ = make_network()
    with pytest.raises(NetworkError):
        network.call("client", "nowhere", "echo", b"x")


def test_unknown_kind():
    network, _ = make_network()
    with pytest.raises(NetworkError):
        network.call("client", "service", "unknown-kind", b"x")


def test_duplicate_registration():
    network, _ = make_network()
    with pytest.raises(NetworkError):
        network.register("service", {})


def test_add_handler_after_registration():
    network, _ = make_network()
    network.add_handler("service", "double", lambda m: m.payload * 2)
    assert network.call("client", "service", "double", 21) == 42


def test_add_handler_unknown_endpoint():
    network, _ = make_network()
    with pytest.raises(NetworkError):
        network.add_handler("ghost", "k", lambda m: None)


def test_link_latency_override():
    fast = Network(seed=b"a", latency=LatencyModel(base_ms=100.0, jitter_ms=0.0))
    fast.register("s", {"echo": lambda m: m.payload})
    fast.register("c", {})
    fast.set_link_latency("c", "s", LatencyModel(base_ms=1.0, jitter_ms=0.0))
    fast.call("c", "s", "echo", b"")
    assert fast.clock.now_ms() == pytest.approx(2.0, abs=0.5)


def test_message_counters():
    network, _ = make_network()
    network.call("client", "service", "echo", b"abc")
    assert network.messages_delivered == 1
    assert network.bytes_delivered >= 3


def test_eavesdropper_sees_plaintext_payloads():
    network, _ = make_network()
    spy = EavesdropAdversary()
    network.interpose(spy)
    network.call("client", "service", "echo", b"secret-in-the-clear")
    assert spy.captured_payloads("echo") == [b"secret-in-the-clear"]


def test_drop_adversary_by_kind():
    network, log = make_network()
    network.interpose(DropAdversary(drop_kinds={"log"}))
    assert network.send("client", "service", "log", "x") is None
    assert log == []
    assert network.messages_dropped == 1


def test_drop_adversary_raises_on_call():
    network, _ = make_network()
    network.interpose(DropAdversary(drop_kinds={"echo"}))
    with pytest.raises(NetworkError):
        network.call("client", "service", "echo", b"x")


def test_drop_adversary_probabilistic():
    network, _ = make_network()
    network.interpose(DropAdversary(drop_rate=1.0))
    assert network.send("client", "service", "echo", b"x") is None


def test_tamper_adversary_flips_bytes():
    network, _ = make_network()
    network.interpose(TamperAdversary(target_kinds={"echo"}))
    result = network.call("client", "service", "echo", b"AAAA")
    assert result != b"AAAA"
    assert len(result) == 4


def test_tamper_adversary_ignores_other_kinds():
    network, _ = make_network()
    network.interpose(TamperAdversary(target_kinds={"other"}))
    assert network.call("client", "service", "echo", b"AAAA") == b"AAAA"


def test_replay_adversary():
    received = []
    network = Network(seed=b"replay-net")
    network.register("service", {"submit": lambda m: received.append(m.payload)})
    network.register("client", {})
    replayer = ReplayAdversary(target_kinds={"submit"})
    network.interpose(replayer)
    network.send("client", "service", "submit", b"contribution")
    replayer.replay_into(network)
    assert received == [b"contribution", b"contribution"]


def test_replay_with_nothing_recorded():
    network, _ = make_network()
    with pytest.raises(ValueError):
        ReplayAdversary().replay_into(network)


def test_clear_adversaries():
    network, _ = make_network()
    network.interpose(DropAdversary(drop_rate=1.0))
    network.clear_adversaries()
    assert network.call("client", "service", "echo", b"x") == b"x"


def test_message_helpers():
    message = Message(sender="a", receiver="b", kind="k", payload=b"p")
    assert message.with_payload(b"q").payload == b"q"
    assert message.with_payload(b"q").sender == "a"
    assert message.redirected("c").receiver == "c"


def test_adversary_chain_order():
    network, _ = make_network()
    spy_before = EavesdropAdversary()
    spy_after = EavesdropAdversary()
    network.interpose(spy_before)
    network.interpose(TamperAdversary(target_kinds={"echo"}))
    network.interpose(spy_after)
    network.call("client", "service", "echo", b"AAAA")
    # Both legs of the call traverse the chain: the first spy sees the
    # pristine request plus the (tampered, echoed-back) response; the spy
    # placed after the tamperer never sees the pristine payload.
    assert spy_before.captured_payloads("echo") == [b"AAAA"]
    assert spy_after.captured_payloads("echo") != [b"AAAA"]
    assert len(spy_before.captured_payloads()) == 2


def test_response_leg_visible_to_adversaries():
    network, _ = make_network()
    spy = EavesdropAdversary()
    network.interpose(spy)
    network.call("client", "service", "echo", b"ping")
    kinds = [m.kind for m in spy.captured]
    assert kinds == ["echo", "echo/reply"]


def test_response_leg_can_drop():
    from repro.faults import FaultInjector, FaultPlan, SITE_RESPONSE

    network, log = make_network()
    network.fault_injector = FaultInjector(
        FaultPlan(rates={SITE_RESPONSE: 1.0}), seed=b"drop-responses"
    )
    with pytest.raises(NetworkError, match="response"):
        network.call("client", "service", "log", b"x")
    # The handler DID run — at-least-once delivery, caller just never
    # learned it.
    assert log == [b"x"]
    assert network.messages_dropped == 1


def test_reply_drop_counts_as_drop_not_delivery():
    """At-least-once accounting: a dropped ``<kind>/reply`` is a drop.

    The request leg was delivered (the handler ran), so
    ``messages_delivered`` reflects exactly one request — the lost reply
    must increment ``messages_dropped`` and ``messages_dropped`` only,
    never ``messages_delivered``/``bytes_delivered``/``replies_delivered``.
    """
    network, _ = make_network()
    network.interpose(DropAdversary(drop_kinds={"echo/reply"}))
    with pytest.raises(NetworkError, match="response"):
        network.call("client", "service", "echo", b"ping")
    assert network.messages_delivered == 1  # the request only
    assert network.messages_dropped == 1  # the reply
    assert network.replies_delivered == 0
    request_bytes = network.bytes_delivered
    # An undropped call meters its request bytes and its reply separately.
    network.clear_adversaries()
    network.call("client", "service", "echo", b"ping")
    assert network.messages_delivered == 2
    assert network.messages_dropped == 1
    assert network.replies_delivered == 1
    assert network.bytes_delivered == 2 * request_bytes


def test_retry_after_reply_drop_reaches_handler_with_attempt_gt_1():
    """Handlers must see ``attempt > 1`` on retransmissions.

    A reply-drop retry is the idempotency-critical case: the handler
    already ran, and only the incremented attempt number lets it answer
    from its result cache instead of double-executing.
    """
    network = Network(seed=b"retry-net")
    attempts_seen = []

    def handler(message):
        attempts_seen.append(message.attempt)
        return "ok"

    network.register("service", {"do": handler})
    network.register("client", {})

    class DropFirstReply:
        dropped = 0

        def process(self, message):
            if message.kind == "do/reply" and self.dropped == 0:
                self.dropped += 1
                return None
            return message

    network.interpose(DropFirstReply())
    # The engine's call_with_retry contract, inlined: increment attempt
    # on every retransmission.
    result = None
    for attempt in (1, 2):
        try:
            result = network.call("client", "service", "do", b"x", attempt=attempt)
            break
        except NetworkError:
            continue
    assert result == "ok"
    assert attempts_seen == [1, 2], (
        "the handler ran twice (at-least-once) and the retry must carry "
        "attempt=2 so idempotency caches engage"
    )
    assert network.messages_delivered == 2
    assert network.messages_dropped == 1
    assert network.replies_delivered == 1
