"""Tests for Bonawitz-style secure aggregation with dropout recovery."""

import pytest

from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.secagg import (
    EncryptedShares,
    SecureAggregationClient,
    SecureAggregationServer,
)
from repro.errors import ProtocolError


def build_cohort(n, threshold, codec=None, seed=b"secagg"):
    codec = codec or FixedPointCodec()
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = [
        SecureAggregationClient(
            i, HmacDrbg(seed + bytes([i])), codec, group=TEST_GROUP
        )
        for i in range(n)
    ]
    roster = server.register([c.advertise() for c in clients], threshold)
    messages = []
    for client in clients:
        messages.extend(client.share_keys(roster, threshold))
    routed = SecureAggregationServer.route_shares(messages)
    for client in clients:
        client.receive_shares(routed.get(client.client_id, []))
    return server, clients


def run_round(server, clients, xs, dropouts=()):
    codec = server.codec
    for client in clients:
        if client.client_id in dropouts:
            continue
        server.collect_masked_input(
            client.client_id, client.masked_input(codec.encode(xs[client.client_id]))
        )
    survivors, dropped = server.survivor_sets()
    responses = {
        client.client_id: client.unmask_response(survivors, dropped)
        for client in clients
        if client.client_id in survivors
    }
    return server.aggregate(responses)


def test_no_dropout_exact_sum():
    server, clients = build_cohort(4, 3)
    xs = [[1.0, -1.0], [2.0, 0.5], [3.0, 0.25], [-1.5, 1.0]]
    total = run_round(server, clients, xs)
    assert total == pytest.approx([4.5, 0.75])


def test_single_dropout_recovered():
    server, clients = build_cohort(5, 3)
    xs = [[float(i), float(-i)] for i in range(5)]
    total = run_round(server, clients, xs, dropouts={2})
    assert total == pytest.approx([0 + 1 + 3 + 4, -(0 + 1 + 3 + 4)])


def test_multiple_dropouts_recovered():
    server, clients = build_cohort(6, 3)
    xs = [[1.0]] * 6
    total = run_round(server, clients, xs, dropouts={1, 4})
    assert total == pytest.approx([4.0])


def test_too_many_dropouts_fails():
    server, clients = build_cohort(5, 4)
    xs = [[1.0]] * 5
    with pytest.raises(ProtocolError):
        run_round(server, clients, xs, dropouts={0, 1})


def test_masked_input_hides_contribution():
    server, clients = build_cohort(3, 2)
    codec = server.codec
    x = [0.75, -0.25]
    masked = clients[0].masked_input(codec.encode(x))
    assert masked != codec.encode(x)


def test_two_clients_same_input_different_masked_vectors():
    server, clients = build_cohort(3, 2)
    codec = server.codec
    a = clients[0].masked_input(codec.encode([0.5]))
    b = clients[1].masked_input(codec.encode([0.5]))
    assert a != b


def test_duplicate_masked_input_rejected_by_server():
    server, clients = build_cohort(3, 2)
    codec = server.codec
    masked = clients[0].masked_input(codec.encode([1.0]))
    server.collect_masked_input(0, masked)
    with pytest.raises(ProtocolError):
        server.collect_masked_input(0, masked)


def test_client_refuses_double_masked_input():
    server, clients = build_cohort(3, 2)
    codec = server.codec
    clients[0].masked_input(codec.encode([1.0]))
    with pytest.raises(ProtocolError):
        clients[0].masked_input(codec.encode([1.0]))


def test_unknown_client_rejected():
    server, clients = build_cohort(3, 2)
    with pytest.raises(ProtocolError):
        server.collect_masked_input(99, [1, 2])


def test_length_mismatch_rejected():
    server, clients = build_cohort(3, 2)
    codec = server.codec
    server.collect_masked_input(0, clients[0].masked_input(codec.encode([1.0, 2.0])))
    with pytest.raises(ProtocolError):
        server.collect_masked_input(1, clients[1].masked_input(codec.encode([1.0])))


def test_share_keys_twice_rejected():
    server, clients = build_cohort(3, 2)
    roster = [c.advertise() for c in clients]
    with pytest.raises(ProtocolError):
        clients[0].share_keys(roster, 2)


def test_share_routed_to_wrong_client_rejected():
    codec = FixedPointCodec()
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = [
        SecureAggregationClient(i, HmacDrbg(bytes([i])), codec, group=TEST_GROUP)
        for i in range(3)
    ]
    roster = server.register([c.advertise() for c in clients], 2)
    messages = clients[0].share_keys(roster, 2)
    misrouted = [
        EncryptedShares(sender=m.sender, receiver=m.receiver, box=m.box)
        for m in messages
        if m.receiver != 1
    ]
    with pytest.raises(ProtocolError):
        clients[1].receive_shares(misrouted)


def test_privacy_invariant_never_both_shares():
    """A client refuses to reveal both key-seed and self-mask shares for one peer."""
    server, clients = build_cohort(4, 2)
    codec = server.codec
    for client in clients:
        if client.client_id == 3:
            continue
        server.collect_masked_input(
            client.client_id, client.masked_input(codec.encode([1.0]))
        )
    survivors, dropped = server.survivor_sets()
    clients[0].unmask_response(survivors, dropped)
    # A second, contradictory request claims client 1 (a survivor) dropped.
    with pytest.raises(ProtocolError):
        clients[0].unmask_response({0, 2}, {1, 3})


def test_survivor_and_dropout_sets_disjoint():
    server, clients = build_cohort(3, 2)
    with pytest.raises(ProtocolError):
        clients[0].unmask_response({0, 1}, {1, 2})


def test_non_survivor_cannot_respond():
    server, clients = build_cohort(3, 2)
    with pytest.raises(ProtocolError):
        clients[0].unmask_response({1, 2}, {0})


def test_register_validations():
    codec = FixedPointCodec()
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = [
        SecureAggregationClient(i, HmacDrbg(bytes([i])), codec, group=TEST_GROUP)
        for i in range(3)
    ]
    bundles = [c.advertise() for c in clients]
    with pytest.raises(ProtocolError):
        server.register(bundles, 1)
    with pytest.raises(ProtocolError):
        server.register(bundles, 4)
    with pytest.raises(ProtocolError):
        server.register(bundles + [bundles[0]], 2)


def test_threshold_validations_client_side():
    codec = FixedPointCodec()
    client = SecureAggregationClient(0, HmacDrbg(b"x"), codec, group=TEST_GROUP)
    other = SecureAggregationClient(1, HmacDrbg(b"y"), codec, group=TEST_GROUP)
    roster = [client.advertise(), other.advertise()]
    with pytest.raises(ProtocolError):
        client.share_keys(roster, 1)
    with pytest.raises(ProtocolError):
        client.share_keys(roster, 3)
    with pytest.raises(ProtocolError):
        other.share_keys([client.advertise()], 2)  # own id missing


def test_larger_cohort_with_dropouts_exact():
    server, clients = build_cohort(8, 5)
    xs = [[0.125 * i, 1.0 - 0.25 * i, float(i % 3)] for i in range(8)]
    total = run_round(server, clients, xs, dropouts={3, 6})
    expect = [
        sum(xs[i][j] for i in range(8) if i not in (3, 6)) for j in range(3)
    ]
    assert total == pytest.approx(expect)


def test_share_payload_round_trips_320_bit_values():
    """_encode_shares/_decode_shares over the full 40-byte value range.

    The decoder parses the payload as a 4x5 matrix of big-endian 64-bit
    limbs in one frombuffer pass; boundary values (0, 2^320 - 1, a prime
    just below 2^255, and a value with only high limbs set) exercise every
    limb position.
    """
    from repro.crypto.secagg import _decode_shares, _encode_shares
    from repro.crypto.shamir import FIELD_PRIME, ShamirShare

    cases = [
        (ShamirShare(x=1, y=0), ShamirShare(x=2, y=(1 << 320) - 1)),
        (
            ShamirShare(x=FIELD_PRIME - 1, y=FIELD_PRIME - 2),
            ShamirShare(x=(1 << 319), y=(1 << 64) - 1),
        ),
        (ShamirShare(x=0, y=0), ShamirShare(x=0, y=0)),
    ]
    for seed_share, mask_share in cases:
        payload = _encode_shares(seed_share, mask_share)
        assert len(payload) == 160
        decoded_seed, decoded_mask = _decode_shares(payload)
        assert decoded_seed == seed_share
        assert decoded_mask == mask_share


def test_decode_shares_rejects_malformed_payload():
    from repro.crypto.secagg import _decode_shares
    from repro.errors import CryptoError

    with pytest.raises(CryptoError):
        _decode_shares(b"\x00" * 159)
    with pytest.raises(CryptoError):
        _decode_shares(b"")
