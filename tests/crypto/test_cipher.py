"""Tests for the authenticated cipher."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.cipher import AuthenticatedCipher, SealedBox, NONCE_SIZE
from repro.errors import AuthenticationError, CryptoError

KEY = b"k" * 32
NONCE = b"n" * NONCE_SIZE


def test_roundtrip():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"hello world")
    assert cipher.decrypt(box) == b"hello world"


def test_roundtrip_empty_plaintext():
    cipher = AuthenticatedCipher(KEY)
    assert cipher.decrypt(cipher.encrypt(NONCE, b"")) == b""


def test_ciphertext_differs_from_plaintext():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"secret message bytes")
    assert box.ciphertext != b"secret message bytes"


def test_tamper_ciphertext_detected():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"payload")
    bad = SealedBox(box.nonce, bytes([box.ciphertext[0] ^ 1]) + box.ciphertext[1:], box.tag)
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bad)


def test_tamper_tag_detected():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"payload")
    bad = SealedBox(box.nonce, box.ciphertext, bytes(32))
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bad)


def test_tamper_nonce_detected():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"payload")
    bad = SealedBox(b"m" * NONCE_SIZE, box.ciphertext, box.tag)
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bad)


def test_wrong_key_fails():
    box = AuthenticatedCipher(KEY).encrypt(NONCE, b"payload")
    with pytest.raises(AuthenticationError):
        AuthenticatedCipher(b"x" * 32).decrypt(box)


def test_associated_data_bound():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"payload", associated_data=b"header-1")
    assert cipher.decrypt(box, associated_data=b"header-1") == b"payload"
    with pytest.raises(AuthenticationError):
        cipher.decrypt(box, associated_data=b"header-2")


def test_short_key_rejected():
    with pytest.raises(CryptoError):
        AuthenticatedCipher(b"short")


def test_bad_nonce_length_rejected():
    with pytest.raises(CryptoError):
        AuthenticatedCipher(KEY).encrypt(b"short", b"data")


def test_serialization_roundtrip():
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, b"some payload")
    blob = box.to_bytes()
    restored = SealedBox.from_bytes(blob)
    assert restored == box
    assert cipher.decrypt(restored) == b"some payload"


def test_from_bytes_too_short():
    with pytest.raises(CryptoError):
        SealedBox.from_bytes(b"tiny")


def test_distinct_nonces_distinct_ciphertexts():
    cipher = AuthenticatedCipher(KEY)
    a = cipher.encrypt(b"a" * NONCE_SIZE, b"same plaintext")
    b = cipher.encrypt(b"b" * NONCE_SIZE, b"same plaintext")
    assert a.ciphertext != b.ciphertext


@given(st.binary(max_size=512), st.binary(max_size=64))
def test_roundtrip_property(plaintext, associated):
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, plaintext, associated_data=associated)
    assert cipher.decrypt(box, associated_data=associated) == plaintext


@given(st.binary(min_size=1, max_size=128), st.integers(min_value=0, max_value=127))
def test_any_bitflip_detected(plaintext, position):
    cipher = AuthenticatedCipher(KEY)
    box = cipher.encrypt(NONCE, plaintext)
    index = position % len(box.ciphertext)
    mutated = bytearray(box.ciphertext)
    mutated[index] ^= 0x01
    with pytest.raises(AuthenticationError):
        cipher.decrypt(SealedBox(box.nonce, bytes(mutated), box.tag))
