"""Property-based tests for secure aggregation: exactness under any dropout.

The invariant the whole E3 story rests on: for *any* cohort, *any* vector
values in range, and *any* dropout subset leaving at least ``threshold``
survivors, the recovered sum equals the survivors' true sum exactly (up to
fixed-point quantization).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService, apply_mask
from repro.crypto.secagg import SecureAggregationClient, SecureAggregationServer


@settings(max_examples=15, deadline=None)
@given(
    num_clients=st.integers(min_value=3, max_value=6),
    length=st.integers(min_value=1, max_value=4),
    dropout_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_bonawitz_exact_under_any_valid_dropout(num_clients, length, dropout_mask, seed):
    codec = FixedPointCodec()
    threshold = 2
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = [
        SecureAggregationClient(
            i, HmacDrbg(seed.to_bytes(4, "big") + bytes([i])), codec, group=TEST_GROUP
        )
        for i in range(num_clients)
    ]
    roster = server.register([c.advertise() for c in clients], threshold)
    messages = []
    for client in clients:
        messages.extend(client.share_keys(roster, threshold))
    routed = SecureAggregationServer.route_shares(messages)
    for client in clients:
        client.receive_shares(routed.get(client.client_id, []))

    dropouts = {i for i in range(num_clients) if dropout_mask[i]}
    # Keep at least `threshold` survivors (otherwise recovery legitimately fails).
    while num_clients - len(dropouts) < threshold:
        dropouts.pop()
    values = {
        i: [((i + 1) * (j + 1)) % 7 / 7.0 for j in range(length)]
        for i in range(num_clients)
    }
    for client in clients:
        if client.client_id in dropouts:
            continue
        server.collect_masked_input(
            client.client_id, client.masked_input(codec.encode(values[client.client_id]))
        )
    survivors, dropped = server.survivor_sets()
    responses = {
        c.client_id: c.unmask_response(survivors, dropped)
        for c in clients
        if c.client_id in survivors
    }
    total = server.aggregate(responses)
    expected = [
        sum(values[i][j] for i in survivors) for j in range(length)
    ]
    assert total == pytest.approx(expected, abs=1e-3)


@settings(max_examples=20, deadline=None)
@given(
    num_parties=st.integers(min_value=2, max_value=8),
    length=st.integers(min_value=1, max_value=6),
    dropouts=st.sets(st.integers(min_value=0, max_value=7), max_size=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_sum_zero_scheme_exact_under_any_dropout(num_parties, length, dropouts, seed):
    """The §3 scheme repairs *any* dropout set by disclosing those masks."""
    codec = FixedPointCodec()
    service = BlindingService(HmacDrbg(seed.to_bytes(4, "big")), codec)
    service.open_round(1, num_parties, length)
    dropouts = {d for d in dropouts if d < num_parties}
    survivors = [i for i in range(num_parties) if i not in dropouts]
    if not survivors:
        survivors = [0]
        dropouts.discard(0)
    values = {
        i: [((i + 2) * (j + 3)) % 5 / 5.0 for j in range(length)]
        for i in range(num_parties)
    }
    blinded = [
        apply_mask(codec.encode(values[i]), service.mask_for(1, i))
        for i in survivors
    ]
    total = codec.sum_vectors(blinded)
    for dropped in sorted(dropouts):
        total = apply_mask(total, service.mask_for_dropout(1, dropped))
    recovered = codec.decode(total)
    expected = [sum(values[i][j] for i in survivors) for j in range(length)]
    assert list(recovered) == pytest.approx(expected, abs=1e-3)
