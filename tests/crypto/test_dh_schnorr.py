"""Tests for Diffie-Hellman and Schnorr signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.dh import DHGroup, DHKeyPair, OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature
from repro.errors import AuthenticationError, CryptoError


def test_groups_have_prime_order_subgroup_generator():
    for group in (OAKLEY_GROUP_1, TEST_GROUP):
        h = group.subgroup_generator()
        assert group.is_valid_element(h)
        assert group.power(h, group.subgroup_order) == 1


def test_dh_agreement():
    rng = HmacDrbg(b"dh")
    alice = DHKeyPair.generate(TEST_GROUP, rng)
    bob = DHKeyPair.generate(TEST_GROUP, rng)
    assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)


def test_dh_agreement_oakley():
    rng = HmacDrbg(b"dh-oakley")
    alice = DHKeyPair.generate(OAKLEY_GROUP_1, rng)
    bob = DHKeyPair.generate(OAKLEY_GROUP_1, rng)
    assert alice.derive_key(bob.public, "c") == bob.derive_key(alice.public, "c")


def test_dh_derive_key_context_separation():
    rng = HmacDrbg(b"dh")
    alice = DHKeyPair.generate(TEST_GROUP, rng)
    bob = DHKeyPair.generate(TEST_GROUP, rng)
    assert alice.derive_key(bob.public, "a") != alice.derive_key(bob.public, "b")


def test_dh_third_party_differs():
    rng = HmacDrbg(b"dh")
    alice = DHKeyPair.generate(TEST_GROUP, rng)
    bob = DHKeyPair.generate(TEST_GROUP, rng)
    eve = DHKeyPair.generate(TEST_GROUP, rng)
    assert alice.shared_secret(bob.public) != eve.shared_secret(bob.public)


def test_invalid_peer_element_rejected():
    rng = HmacDrbg(b"dh")
    alice = DHKeyPair.generate(TEST_GROUP, rng)
    for bad in (0, 1, TEST_GROUP.prime - 1, TEST_GROUP.prime, TEST_GROUP.prime + 5):
        with pytest.raises(CryptoError):
            alice.shared_secret(bad)


def test_element_validity():
    group = TEST_GROUP
    assert not group.is_valid_element(0)
    assert not group.is_valid_element(1)
    assert not group.is_valid_element(group.prime - 1)
    assert group.is_valid_element(group.public_element(12345))


def test_group_requires_odd_prime():
    with pytest.raises(CryptoError):
        DHGroup(name="bad", prime=10)
    with pytest.raises(CryptoError):
        DHGroup(name="bad", prime=5)


def test_schnorr_sign_verify():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"), group=TEST_GROUP)
    signature = keypair.sign(b"message")
    keypair.public_key.verify(b"message", signature)  # must not raise


def test_schnorr_wrong_message_rejected():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"), group=TEST_GROUP)
    signature = keypair.sign(b"message")
    with pytest.raises(AuthenticationError):
        keypair.public_key.verify(b"other message", signature)


def test_schnorr_wrong_key_rejected():
    signer = SchnorrKeyPair.generate(HmacDrbg(b"sig-a"), group=TEST_GROUP)
    other = SchnorrKeyPair.generate(HmacDrbg(b"sig-b"), group=TEST_GROUP)
    signature = signer.sign(b"message")
    assert not other.public_key.is_valid(b"message", signature)


def test_schnorr_tampered_signature_rejected():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"), group=TEST_GROUP)
    signature = keypair.sign(b"message")
    tampered = SchnorrSignature(signature.challenge, signature.response ^ 1)
    assert not keypair.public_key.is_valid(b"message", tampered)


def test_schnorr_components_out_of_range_rejected():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"), group=TEST_GROUP)
    q = TEST_GROUP.subgroup_order
    bad = SchnorrSignature(challenge=q, response=1)
    with pytest.raises(AuthenticationError):
        keypair.public_key.verify(b"m", bad)


def test_schnorr_deterministic_signing():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"), group=TEST_GROUP)
    assert keypair.sign(b"m") == keypair.sign(b"m")
    assert keypair.sign(b"m") != keypair.sign(b"n")


def test_schnorr_oakley_group():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"))
    signature = keypair.sign(b"contribution")
    keypair.public_key.verify(b"contribution", signature)


def test_schnorr_signature_serialization():
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"sig"))
    signature = keypair.sign(b"m")
    assert SchnorrSignature.from_bytes(signature.to_bytes()) == signature


def test_schnorr_from_bytes_malformed():
    with pytest.raises(CryptoError):
        SchnorrSignature.from_bytes(b"\x00" * 10)


def test_schnorr_from_secret_roundtrip():
    keypair = SchnorrKeyPair.from_secret(12345, group=TEST_GROUP)
    signature = keypair.sign(b"m")
    keypair.public_key.verify(b"m", signature)


def test_schnorr_from_secret_out_of_range():
    with pytest.raises(CryptoError):
        SchnorrKeyPair.from_secret(0, group=TEST_GROUP)
    with pytest.raises(CryptoError):
        SchnorrKeyPair.from_secret(TEST_GROUP.subgroup_order, group=TEST_GROUP)


def test_public_key_fingerprint_stable_and_distinct():
    a = SchnorrKeyPair.generate(HmacDrbg(b"a"), group=TEST_GROUP)
    b = SchnorrKeyPair.generate(HmacDrbg(b"b"), group=TEST_GROUP)
    assert a.public_key.fingerprint() == a.public_key.fingerprint()
    assert a.public_key.fingerprint() != b.public_key.fingerprint()


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=256))
def test_schnorr_roundtrip_property(message):
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"prop"), group=TEST_GROUP)
    assert keypair.public_key.is_valid(message, keypair.sign(message))


@settings(max_examples=25, deadline=None)
@given(st.binary(max_size=64), st.binary(min_size=1, max_size=64))
def test_schnorr_distinct_messages_property(message, suffix):
    keypair = SchnorrKeyPair.generate(HmacDrbg(b"prop"), group=TEST_GROUP)
    signature = keypair.sign(message)
    assert not keypair.public_key.is_valid(message + suffix, signature)
