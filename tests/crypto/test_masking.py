"""Tests for sum-zero masking and the blinding service (§3 construction)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import (
    BlindingService,
    SumZeroMasks,
    apply_mask,
    remove_mask,
)
from repro.errors import AuthenticationError, ConfigurationError, CryptoError


def rng():
    return HmacDrbg(b"masking-tests")


def test_masks_sum_to_zero():
    masks = SumZeroMasks.sample(8, 16, rng())
    assert masks.verify_sum_zero()


def test_single_party_mask_is_zero():
    masks = SumZeroMasks.sample(1, 4, rng())
    assert masks.mask_for(0) == (0, 0, 0, 0)


def test_two_party_masks_negate():
    masks = SumZeroMasks.sample(2, 3, rng())
    modulus = 1 << masks.modulus_bits
    for a, b in zip(masks.mask_for(0), masks.mask_for(1)):
        assert (a + b) % modulus == 0


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        SumZeroMasks.sample(0, 4, rng())
    with pytest.raises(ConfigurationError):
        SumZeroMasks.sample(3, 0, rng())


def test_apply_remove_roundtrip():
    masks = SumZeroMasks.sample(3, 5, rng())
    vector = [10, 20, 30, 40, 50]
    blinded = apply_mask(vector, masks.mask_for(1))
    assert remove_mask(blinded, masks.mask_for(1)) == vector


def test_apply_mask_length_mismatch():
    with pytest.raises(ConfigurationError):
        apply_mask([1, 2], [1, 2, 3])
    with pytest.raises(ConfigurationError):
        remove_mask([1, 2], [1])


def test_blinded_sum_equals_true_sum():
    """The core §3 identity: Σ y_i = Σ x_i when Σ p_i = 0."""
    codec = FixedPointCodec()
    masks = SumZeroMasks.sample(4, 3, rng())
    xs = [[1.0, 2.0, 3.0], [0.5, -1.0, 2.5], [-2.0, 0.0, 1.0], [4.0, 4.0, 4.0]]
    blinded = [
        apply_mask(codec.encode(x), masks.mask_for(i)) for i, x in enumerate(xs)
    ]
    total = codec.decode(codec.sum_vectors(blinded))
    expect = [sum(col) for col in zip(*xs)]
    assert list(total) == pytest.approx(expect)


def test_single_blinded_vector_hides_contribution():
    """One blinded vector decodes to nonsense, not the contribution."""
    codec = FixedPointCodec()
    masks = SumZeroMasks.sample(4, 2, rng())
    x = [0.9, 0.1]
    blinded = apply_mask(codec.encode(x), masks.mask_for(0))
    assert blinded != codec.encode(x)


def test_blinding_service_round_lifecycle():
    service = BlindingService(rng())
    masks = service.open_round(1, num_parties=3, length=4)
    assert masks.verify_sum_zero()
    with pytest.raises(CryptoError):
        service.open_round(1, num_parties=3, length=4)


def test_blinding_service_encrypt_decrypt():
    service = BlindingService(rng())
    service.open_round(7, num_parties=3, length=4)
    key = b"client-key-0-...................."[:32]
    encrypted = service.encrypted_mask(7, 0, key)
    mask = BlindingService.decrypt_mask(encrypted, key)
    assert mask == service.mask_for_dropout(7, 0)


def test_blinding_service_wrong_key_fails():
    service = BlindingService(rng())
    service.open_round(7, num_parties=3, length=4)
    encrypted = service.encrypted_mask(7, 0, b"a" * 32)
    with pytest.raises(AuthenticationError):
        BlindingService.decrypt_mask(encrypted, b"b" * 32)


def test_blinding_service_unopened_round():
    service = BlindingService(rng())
    with pytest.raises(CryptoError):
        service.encrypted_mask(99, 0, b"a" * 32)
    with pytest.raises(CryptoError):
        service.mask_for_dropout(99, 0)


def test_dropout_repair_restores_exact_sum():
    """Revealing a dropped party's mask repairs the aggregate (§3 scheme)."""
    codec = FixedPointCodec()
    service = BlindingService(rng(), codec)
    service.open_round(1, num_parties=4, length=2)
    xs = [[1.0, 1.0], [2.0, 2.0], [3.0, 3.0], [4.0, 4.0]]
    blinded = {
        i: apply_mask(codec.encode(xs[i]), service.mask_for_dropout(1, i))
        for i in range(4)
    }
    # Party 2 drops: since Σp = 0, the partial sum is off by -p_2, so the
    # repair *adds* the dropped party's mask back in.
    partial = codec.sum_vectors([blinded[i] for i in (0, 1, 3)])
    repaired = apply_mask(partial, service.mask_for_dropout(1, 2))
    assert list(codec.decode(repaired)) == pytest.approx([7.0, 7.0])


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=16),
)
def test_sum_zero_property(num_parties, length):
    masks = SumZeroMasks.sample(num_parties, length, rng())
    assert masks.verify_sum_zero()
    assert len(masks.masks) == num_parties
    assert all(len(mask) == length for mask in masks.masks)


def test_decrypt_mask_round_trips_full_range_words():
    """The frombuffer parse agrees with per-word int.from_bytes parsing.

    Masks are uniform in [0, 2^64), so the payload regularly contains
    words with the top bit set and the all-ones word — exactly the values
    a signed-dtype parsing bug would corrupt.
    """
    service = BlindingService(rng())
    masks = service.open_round(3, num_parties=2, length=16)
    key = b"k" * 32
    for party in range(2):
        encrypted = service.encrypted_mask(3, party, key)
        decrypted = BlindingService.decrypt_mask(encrypted, key)
        assert decrypted == masks.mask_for(party)
        assert all(0 <= word < (1 << 64) for word in decrypted)
    # Masks summing to zero with 2 parties means one is the ring negation
    # of the other, so top-bit-set words are guaranteed present.
    assert any(word >= (1 << 63) for word in masks.mask_for(0))
