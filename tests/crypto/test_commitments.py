"""Verifiable blinding: commitments open, bind, and catch forged claims."""

from __future__ import annotations

import dataclasses

import pytest

from repro.byzantine.actors import _forge_commitments
from repro.crypto.commitments import (
    MaskOpening,
    commit_masks,
    decode_mask_payload,
    encode_mask_payload,
    recommit_masks,
    resolve_group,
    verify_opening,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.masking import SumZeroMasks
from repro.errors import ConfigurationError, MaskVerificationError

GROUP = resolve_group("oakley-group-1")
NUM_SLOTS = 3
LENGTH = 4
MODULUS_BITS = 64


def _family(seed: bytes = b"commit-test") -> SumZeroMasks:
    return SumZeroMasks.sample(
        NUM_SLOTS, LENGTH, HmacDrbg(seed, personalization="family"), MODULUS_BITS
    )


def _commit(seed: bytes = b"commit-test"):
    family = _family(seed)
    commitments, openings = commit_masks(
        GROUP, 1, family.masks, MODULUS_BITS, HmacDrbg(seed, personalization="c")
    )
    return family, commitments, openings


def test_honest_commitments_validate_open_and_sum_to_zero():
    family, commitments, openings = _commit()
    commitments.validate_structure(
        round_id=1, num_slots=NUM_SLOTS, vector_length=LENGTH
    )
    for slot, opening in enumerate(openings):
        assert opening.mask == family.masks[slot]
        verify_opening(commitments, slot, opening)
        verify_opening(commitments.record_for(slot), slot, opening)
    commitments.verify_sum_zero()


def test_tampered_mask_fails_its_opening():
    _, commitments, openings = _commit()
    opening = openings[0]
    tampered = dataclasses.replace(
        opening, mask=(opening.mask[0] ^ 1,) + opening.mask[1:]
    )
    with pytest.raises(MaskVerificationError):
        verify_opening(commitments, 0, tampered)
    with pytest.raises(MaskVerificationError):
        verify_opening(commitments.record_for(0), 0, tampered)


def test_wrong_salt_or_randomizer_fails_its_opening():
    _, commitments, openings = _commit()
    opening = openings[0]
    with pytest.raises(MaskVerificationError):
        verify_opening(
            commitments, 0, dataclasses.replace(opening, salt=b"\x00" * 32)
        )
    with pytest.raises(MaskVerificationError):
        verify_opening(
            commitments,
            0,
            dataclasses.replace(opening, randomizer=opening.randomizer + 1),
        )


def test_opening_against_the_wrong_slot_fails():
    _, commitments, openings = _commit()
    with pytest.raises(MaskVerificationError):
        verify_opening(commitments, 1, openings[0])


def test_non_sum_zero_claims_fail_structure_validation():
    _, commitments, _ = _commit()
    column = commitments.column_sums[0]
    broken = dataclasses.replace(
        commitments,
        column_sums=((column[0] + 1,) + column[1:],)
        + commitments.column_sums[1:],
    )
    with pytest.raises(MaskVerificationError):
        broken.validate_structure()


def test_forged_claims_pass_slot_checks_but_fail_the_homomorphic_check():
    """The deepest property: a commitment set that is internally consistent
    per-slot, over a family that is NOT sum-zero, must still be caught —
    and only the homomorphic finalize check can catch it."""
    family, honest, _ = _commit()
    masks = [list(mask) for mask in family.masks]
    masks[0][0] = (masks[0][0] + 538) % (1 << MODULUS_BITS)
    corrupt = SumZeroMasks(
        masks=tuple(tuple(m) for m in masks), modulus_bits=MODULUS_BITS
    )
    assert not corrupt.verify_sum_zero()
    rng = HmacDrbg(b"forge", personalization="forge")
    salts = [rng.generate(32) for _ in range(NUM_SLOTS)]
    randomizers = [rng.randint(GROUP.subgroup_order) for _ in range(NUM_SLOTS)]
    forged = _forge_commitments(GROUP, honest, corrupt.masks, salts, randomizers)
    forged.validate_structure(round_id=1, num_slots=NUM_SLOTS)
    for slot in range(NUM_SLOTS):
        verify_opening(
            forged,
            slot,
            MaskOpening(
                mask=corrupt.masks[slot],
                salt=salts[slot],
                randomizer=randomizers[slot],
            ),
        )
    with pytest.raises(MaskVerificationError):
        forged.verify_sum_zero()


def test_recommit_reproduces_the_exact_set():
    family, commitments, openings = _commit()
    rebuilt = recommit_masks(GROUP, 1, family.masks, MODULUS_BITS, openings)
    assert rebuilt == commitments
    assert rebuilt.root() == commitments.root()


def test_mask_payload_round_trips():
    _, _, openings = _commit()
    for opening in openings:
        assert decode_mask_payload(encode_mask_payload(opening)) == opening


def test_empty_family_is_rejected():
    with pytest.raises(ConfigurationError):
        commit_masks(GROUP, 1, [], MODULUS_BITS, HmacDrbg(b"x"))
