"""Tests for tagged hashing and HKDF."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import hash_bytes, hash_items, hash_to_int, hexdigest
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract


def test_hash_bytes_deterministic():
    assert hash_bytes("t", b"data") == hash_bytes("t", b"data")


def test_hash_bytes_tag_separation():
    assert hash_bytes("tag-a", b"data") != hash_bytes("tag-b", b"data")


def test_hash_bytes_length():
    assert len(hash_bytes("t", b"")) == 32


def test_hash_items_framing_prevents_concat_collision():
    assert hash_items("t", [b"ab", b"c"]) != hash_items("t", [b"a", b"bc"])
    assert hash_items("t", [b"abc"]) != hash_items("t", [b"abc", b""])


def test_hash_items_deterministic():
    assert hash_items("t", [b"a", b"b"]) == hash_items("t", [b"a", b"b"])


def test_hexdigest_is_hex_of_hash():
    assert hexdigest("t", b"x") == hash_bytes("t", b"x").hex()


def test_hash_to_int_in_range():
    for modulus in (2, 17, 1 << 61, (1 << 255) - 19):
        value = hash_to_int("t", b"data", modulus)
        assert 0 <= value < modulus


def test_hash_to_int_invalid_modulus():
    with pytest.raises(ValueError):
        hash_to_int("t", b"d", 0)


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=1 << 128))
def test_hash_to_int_range_property(data, modulus):
    assert 0 <= hash_to_int("p", data, modulus) < modulus


def test_hkdf_deterministic():
    assert hkdf(b"ikm", "context") == hkdf(b"ikm", "context")


def test_hkdf_info_separation():
    assert hkdf(b"ikm", "a") != hkdf(b"ikm", "b")


def test_hkdf_length():
    for n in (0, 1, 16, 32, 33, 100):
        assert len(hkdf(b"ikm", "ctx", length=n)) == n


def test_hkdf_salt_changes_output():
    assert hkdf(b"ikm", "ctx") != hkdf(b"ikm", "ctx", salt=b"salt")


def test_hkdf_expand_limit():
    prk = hkdf_extract(b"", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"info", 255 * 32 + 1)


def test_hkdf_expand_negative():
    prk = hkdf_extract(b"", b"ikm")
    with pytest.raises(ValueError):
        hkdf_expand(prk, b"info", -1)


def test_hkdf_rfc5869_test_case_1():
    """RFC 5869 Appendix A.1 known-answer test."""
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )
