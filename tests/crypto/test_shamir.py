"""Tests for Shamir secret sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.shamir import (
    SECRET_SIZE,
    ShamirShare,
    recover_from_subsets,
    recover_secret,
    split_secret,
)
from repro.errors import CryptoError


def rng():
    return HmacDrbg(b"shamir-tests")


def test_exact_threshold_recovers():
    shares = split_secret(b"secret", 3, 5, rng())
    assert recover_secret(shares[:3]) == b"secret"


def test_any_subset_of_threshold_recovers():
    shares = split_secret(b"secret", 3, 5, rng())
    assert recover_secret([shares[0], shares[2], shares[4]]) == b"secret"
    assert recover_secret([shares[4], shares[1], shares[3]]) == b"secret"


def test_more_than_threshold_recovers():
    shares = split_secret(b"secret", 2, 5, rng())
    assert recover_secret(shares) == b"secret"


def test_below_threshold_does_not_recover():
    shares = split_secret(b"secret", 3, 5, rng())
    try:
        recovered = recover_secret(shares[:2])
    except CryptoError:
        return  # frame decoding rejected the garbage — acceptable
    assert recovered != b"secret"


def test_one_of_one():
    shares = split_secret(b"s", 1, 1, rng())
    assert recover_secret(shares) == b"s"


def test_empty_secret_roundtrip():
    shares = split_secret(b"", 2, 3, rng())
    assert recover_secret(shares[:2]) == b""


def test_max_size_secret_roundtrip():
    secret = bytes(range(SECRET_SIZE))
    shares = split_secret(secret, 2, 3, rng())
    assert recover_secret(shares[1:]) == secret


def test_leading_zero_secret_roundtrip():
    secret = b"\x00\x00abc"
    shares = split_secret(secret, 2, 3, rng())
    assert recover_secret(shares[:2]) == secret


def test_oversized_secret_rejected():
    with pytest.raises(CryptoError):
        split_secret(b"x" * (SECRET_SIZE + 1), 2, 3, rng())


def test_invalid_threshold():
    with pytest.raises(CryptoError):
        split_secret(b"s", 0, 3, rng())
    with pytest.raises(CryptoError):
        split_secret(b"s", 4, 3, rng())


def test_no_shares():
    with pytest.raises(CryptoError):
        recover_secret([])


def test_duplicate_share_indices_rejected():
    shares = split_secret(b"s", 2, 3, rng())
    with pytest.raises(CryptoError):
        recover_secret([shares[0], shares[0]])


def test_corrupted_share_does_not_silently_recover():
    shares = split_secret(b"real secret", 3, 5, rng())
    corrupted = [shares[0], ShamirShare(shares[1].x, shares[1].y ^ 12345), shares[2]]
    try:
        recovered = recover_secret(corrupted)
    except CryptoError:
        return
    assert recovered != b"real secret"


def test_recover_from_subsets():
    shares_a = split_secret(b"alpha", 2, 3, rng())
    shares_b = split_secret(b"beta", 2, 3, rng())
    assert recover_from_subsets([shares_a[:2], shares_b[1:]]) == [b"alpha", b"beta"]


def test_shares_are_distinct():
    shares = split_secret(b"s", 3, 6, rng())
    assert len({share.y for share in shares}) == 6


@settings(max_examples=50, deadline=None)
@given(
    st.binary(max_size=SECRET_SIZE),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=4),
)
def test_roundtrip_property(secret, threshold, extra):
    num_shares = threshold + extra
    shares = split_secret(secret, threshold, num_shares, rng())
    assert recover_secret(shares[:threshold]) == secret
    assert recover_secret(list(reversed(shares))[:threshold]) == secret
