"""Tests for the fixed-point codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.fixedpoint import FixedPointCodec
from repro.errors import ConfigurationError


def test_roundtrip_positive():
    codec = FixedPointCodec()
    assert codec.decode_value(codec.encode_value(1.5)) == pytest.approx(1.5)


def test_roundtrip_negative():
    codec = FixedPointCodec()
    assert codec.decode_value(codec.encode_value(-2.25)) == pytest.approx(-2.25)


def test_roundtrip_zero():
    codec = FixedPointCodec()
    assert codec.decode_value(codec.encode_value(0.0)) == 0.0


def test_quantization_error_bounded():
    codec = FixedPointCodec(scale=1 << 16)
    value = 0.123456789
    assert abs(codec.decode_value(codec.encode_value(value)) - value) <= 1 / (1 << 16)


def test_out_of_bound_value_rejected():
    codec = FixedPointCodec(scale=1 << 8, bound=10.0)
    with pytest.raises(ConfigurationError):
        codec.encode_value(11.0)
    with pytest.raises(ConfigurationError):
        codec.encode_value(-10.5)


def test_bound_edge_accepted():
    codec = FixedPointCodec(scale=1 << 8, bound=10.0)
    assert codec.decode_value(codec.encode_value(10.0)) == pytest.approx(10.0)
    assert codec.decode_value(codec.encode_value(-10.0)) == pytest.approx(-10.0)


def test_invalid_configurations():
    with pytest.raises(ConfigurationError):
        FixedPointCodec(scale=0)
    with pytest.raises(ConfigurationError):
        FixedPointCodec(bound=-1.0)
    with pytest.raises(ConfigurationError):
        FixedPointCodec(scale=1 << 40, bound=float(1 << 40))  # overflows half ring


def test_vector_roundtrip():
    codec = FixedPointCodec()
    values = [0.0, 1.0, -1.0, 0.5, -0.125]
    assert list(codec.decode(codec.encode(values))) == pytest.approx(values)


def test_ring_addition_matches_real_addition():
    codec = FixedPointCodec()
    a = codec.encode([1.5, -2.0])
    b = codec.encode([-0.5, 3.0])
    assert list(codec.decode(codec.add(a, b))) == pytest.approx([1.0, 1.0])


def test_add_length_mismatch():
    codec = FixedPointCodec()
    with pytest.raises(ConfigurationError):
        codec.add([1, 2], [1])


def test_sum_vectors():
    codec = FixedPointCodec()
    vectors = [codec.encode([1.0, 2.0]), codec.encode([3.0, -1.0]), codec.encode([0.5, 0.5])]
    assert list(codec.decode(codec.sum_vectors(vectors))) == pytest.approx([4.5, 1.5])


def test_sum_vectors_empty():
    with pytest.raises(ConfigurationError):
        FixedPointCodec().sum_vectors([])


def test_sum_vectors_length_mismatch():
    codec = FixedPointCodec()
    with pytest.raises(ConfigurationError):
        codec.sum_vectors([[1, 2], [3]])


def test_negative_values_use_upper_half_ring():
    codec = FixedPointCodec()
    encoded = codec.encode_value(-1.0)
    assert encoded > codec.modulus() // 2


@settings(max_examples=100)
@given(st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False))
def test_roundtrip_property(value):
    codec = FixedPointCodec()
    decoded = codec.decode_value(codec.encode_value(value))
    assert abs(decoded - value) <= 1 / codec.scale


@settings(max_examples=50)
@given(
    st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=8),
    st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=8),
)
def test_homomorphic_addition_property(left, right):
    size = min(len(left), len(right))
    left, right = left[:size], right[:size]
    codec = FixedPointCodec()
    total = codec.decode(codec.add(codec.encode(left), codec.encode(right)))
    for got, expect in zip(total, (l + r for l, r in zip(left, right))):
        assert abs(got - expect) <= 2 / codec.scale
