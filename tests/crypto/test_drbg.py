"""Tests for the HMAC-DRBG deterministic generator."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import HmacDrbg


def test_same_seed_same_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.generate(64) == b.generate(64)


def test_different_seed_different_stream():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_personalization_separates_streams():
    a = HmacDrbg(b"seed", personalization="alpha")
    b = HmacDrbg(b"seed", personalization="beta")
    assert a.generate(32) != b.generate(32)


def test_generate_zero_bytes():
    assert HmacDrbg(b"seed").generate(0) == b""


def test_generate_negative_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_stream_advances():
    rng = HmacDrbg(b"seed")
    assert rng.generate(16) != rng.generate(16)


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    b.reseed(b"extra entropy")
    assert a.generate(32) != b.generate(32)


def test_seed_must_be_bytes():
    with pytest.raises(TypeError):
        HmacDrbg("not bytes")  # type: ignore[arg-type]


def test_randint_range():
    rng = HmacDrbg(b"seed")
    for _ in range(200):
        assert 0 <= rng.randint(7) < 7


def test_randint_upper_one_always_zero():
    rng = HmacDrbg(b"seed")
    assert all(rng.randint(1) == 0 for _ in range(20))


def test_randint_invalid():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randint(0)


def test_randrange():
    rng = HmacDrbg(b"seed")
    for _ in range(100):
        assert 5 <= rng.randrange(5, 10) < 10


def test_randrange_empty():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randrange(3, 3)


def test_uniform_in_unit_interval():
    rng = HmacDrbg(b"seed")
    values = [rng.uniform() for _ in range(500)]
    assert all(0.0 <= v < 1.0 for v in values)
    # crude uniformity: mean near 0.5
    assert 0.4 < sum(values) / len(values) < 0.6


def test_choice():
    rng = HmacDrbg(b"seed")
    items = ["a", "b", "c"]
    assert all(rng.choice(items) in items for _ in range(50))


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").choice([])


def test_shuffle_is_permutation():
    rng = HmacDrbg(b"seed")
    items = list(range(30))
    shuffled = items.copy()
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_fork_independent_of_parent_future():
    parent = HmacDrbg(b"seed")
    child = parent.fork("child")
    child_bytes = child.generate(32)
    # A fresh parent forked the same way yields the same child stream.
    parent2 = HmacDrbg(b"seed")
    child2 = parent2.fork("child")
    assert child2.generate(32) == child_bytes


def test_fork_labels_differ():
    parent = HmacDrbg(b"seed")
    a = parent.fork("a")
    parent2 = HmacDrbg(b"seed")
    b = parent2.fork("b")
    assert a.generate(32) != b.generate(32)


@given(st.integers(min_value=1, max_value=1 << 64))
def test_randint_always_below_upper(upper):
    rng = HmacDrbg(upper.to_bytes(9, "big"))
    assert 0 <= rng.randint(upper) < upper


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=300))
def test_generate_length(seed, n):
    assert len(HmacDrbg(seed).generate(n)) == n


def test_randint_distribution_covers_support():
    rng = HmacDrbg(b"dist")
    seen = {rng.randint(4) for _ in range(300)}
    assert seen == {0, 1, 2, 3}
