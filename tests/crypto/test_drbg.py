"""Tests for the HMAC-DRBG deterministic generator."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.drbg import HmacDrbg


def test_same_seed_same_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    assert a.generate(64) == b.generate(64)


def test_different_seed_different_stream():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_personalization_separates_streams():
    a = HmacDrbg(b"seed", personalization="alpha")
    b = HmacDrbg(b"seed", personalization="beta")
    assert a.generate(32) != b.generate(32)


def test_generate_zero_bytes():
    assert HmacDrbg(b"seed").generate(0) == b""


def test_generate_negative_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate(-1)


def test_stream_advances():
    rng = HmacDrbg(b"seed")
    assert rng.generate(16) != rng.generate(16)


def test_reseed_changes_stream():
    a = HmacDrbg(b"seed")
    b = HmacDrbg(b"seed")
    b.reseed(b"extra entropy")
    assert a.generate(32) != b.generate(32)


def test_seed_must_be_bytes():
    with pytest.raises(TypeError):
        HmacDrbg("not bytes")  # type: ignore[arg-type]


def test_randint_range():
    rng = HmacDrbg(b"seed")
    for _ in range(200):
        assert 0 <= rng.randint(7) < 7


def test_randint_upper_one_always_zero():
    rng = HmacDrbg(b"seed")
    assert all(rng.randint(1) == 0 for _ in range(20))


def test_randint_invalid():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randint(0)


def test_randrange():
    rng = HmacDrbg(b"seed")
    for _ in range(100):
        assert 5 <= rng.randrange(5, 10) < 10


def test_randrange_empty():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randrange(3, 3)


def test_uniform_in_unit_interval():
    rng = HmacDrbg(b"seed")
    values = [rng.uniform() for _ in range(500)]
    assert all(0.0 <= v < 1.0 for v in values)
    # crude uniformity: mean near 0.5
    assert 0.4 < sum(values) / len(values) < 0.6


def test_choice():
    rng = HmacDrbg(b"seed")
    items = ["a", "b", "c"]
    assert all(rng.choice(items) in items for _ in range(50))


def test_choice_empty_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").choice([])


def test_shuffle_is_permutation():
    rng = HmacDrbg(b"seed")
    items = list(range(30))
    shuffled = items.copy()
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_fork_independent_of_parent_future():
    parent = HmacDrbg(b"seed")
    child = parent.fork("child")
    child_bytes = child.generate(32)
    # A fresh parent forked the same way yields the same child stream.
    parent2 = HmacDrbg(b"seed")
    child2 = parent2.fork("child")
    assert child2.generate(32) == child_bytes


def test_fork_labels_differ():
    parent = HmacDrbg(b"seed")
    a = parent.fork("a")
    parent2 = HmacDrbg(b"seed")
    b = parent2.fork("b")
    assert a.generate(32) != b.generate(32)


@given(st.integers(min_value=1, max_value=1 << 64))
def test_randint_always_below_upper(upper):
    rng = HmacDrbg(upper.to_bytes(9, "big"))
    assert 0 <= rng.randint(upper) < upper


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=300))
def test_generate_length(seed, n):
    assert len(HmacDrbg(seed).generate(n)) == n


def test_randint_distribution_covers_support():
    rng = HmacDrbg(b"dist")
    seen = {rng.randint(4) for _ in range(300)}
    assert seen == {0, 1, 2, 3}


# ------------------------------------------------------- bulk expansion


def test_generate_block_golden_stream():
    """Pin the exact byte stream so the bulk path can never drift."""
    rng = HmacDrbg(b"golden-block", personalization="pin")
    assert rng.generate_block(48).hex() == (
        "9949a697a1dd335007cebed7ae1444ce0c874ef568e8377b0e29e72c71739675"
        "ab43d0b3c5fcc3fb426b51928000bb7f"
    )
    # The state advanced exactly as generate() would have.
    assert rng.generate(16).hex() == "c75973578e2a7cfb3cec298aa34ea22f"


@pytest.mark.parametrize("n", [0, 1, 31, 32, 33, 64, 1000])
def test_generate_block_matches_generate(n):
    a = HmacDrbg(b"block-parity")
    b = HmacDrbg(b"block-parity")
    assert a.generate_block(n) == b.generate(n)
    # And the post-call states agree too.
    assert a.generate(32) == b.generate(32)


def test_generate_block_negative_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").generate_block(-1)


def test_uint64_vector_golden_words():
    words = HmacDrbg(b"golden-words").uint64_vector(4)
    assert words.tolist() == [
        1391146611485684116,
        4493946822647620243,
        10707631592188488736,
        8354422961555399113,
    ]


@pytest.mark.parametrize("length", [0, 1, 7, 4096])
def test_uint64_vector_matches_scalar_parse(length):
    from repro.perf.reference import uint64_vector_scalar

    fast = HmacDrbg(b"u64-parity").uint64_vector(length)
    slow = uint64_vector_scalar(HmacDrbg(b"u64-parity"), length)
    assert fast.tolist() == slow


def test_uint64_vector_negative_raises():
    with pytest.raises(ValueError):
        HmacDrbg(b"seed").uint64_vector(-1)


# ------------------------------------------------- randint fast/slow paths


@pytest.mark.parametrize("bits", [1, 8, 53, 63, 64])
def test_randint_power_of_two_never_rejects(bits):
    """Each pow2 draw consumes exactly one generate call (no rejection).

    ``reseed_counter`` increments once per generate, so a draw that
    entered the rejection loop would advance it by more than one.
    """
    rng = HmacDrbg(b"pow2")
    for _ in range(50):
        before = rng.reseed_counter
        value = rng.randint(1 << bits)
        assert 0 <= value < (1 << bits)
        assert rng.reseed_counter == before + 1


def test_randint_power_of_two_is_masked_single_draw():
    """The pow2 value is the masked big-endian parse of one draw."""
    rng = HmacDrbg(b"pow2-value")
    clone = HmacDrbg(b"pow2-value")
    for bits in (8, 53, 64):
        value = rng.randint(1 << bits)
        nbytes = (bits + 7) // 8
        expected = int.from_bytes(clone.generate(nbytes), "big") & ((1 << bits) - 1)
        assert value == expected


def test_randint_non_power_of_two_stream_unchanged():
    """Regression: non-pow2 moduli keep the historical rejection stream.

    ``(upper - 1).bit_length() == upper.bit_length()`` whenever ``upper``
    is not a power of two, so the draws must match the pre-fast-path
    algorithm byte for byte.
    """

    def historical_randint(rng, upper):
        nbits = upper.bit_length()
        nbytes = (nbits + 7) // 8
        mask = (1 << nbits) - 1
        while True:
            candidate = int.from_bytes(rng.generate(nbytes), "big") & mask
            if candidate < upper:
                return candidate

    new = HmacDrbg(b"non-pow2")
    old = HmacDrbg(b"non-pow2")
    for upper in (3, 5, 7, 100, 12345, (1 << 61) - 1):
        for _ in range(20):
            assert new.randint(upper) == historical_randint(old, upper)


def test_randint_non_power_of_two_still_rejects():
    """The rejection loop is alive: some draw must consume extra bytes."""
    rng = HmacDrbg(b"reject")
    rejected = 0
    for _ in range(200):
        before = rng.reseed_counter
        rng.randint(5)  # 3-bit candidates, rejected with probability 3/8
        rejected += rng.reseed_counter - before - 1
    assert rejected > 0
