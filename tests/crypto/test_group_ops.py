"""Unit tests for the public-key hot path (:mod:`repro.crypto.group_ops`).

Parity against the frozen naive twins lives in
``tests/perf/test_pk_parity.py``; this file covers the machinery itself —
table lifecycle, membership memoization, batch scalars, the DH session
cache, and the fast-path counters.
"""

from __future__ import annotations

import pytest

from repro.crypto import group_ops
from repro.crypto.dh import OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg


@pytest.fixture(autouse=True)
def _clean_group_ops_state():
    """Each test sees fresh tables/memos and leaves none behind."""
    group_ops.reset_tables()
    yield
    group_ops.reset_tables()


# -------------------------------------------------------------- fixed base


def test_fixed_base_table_matches_pow():
    group = OAKLEY_GROUP_1
    h = group.subgroup_generator()
    table = group_ops.FixedBaseTable(group.prime, h)
    rng = HmacDrbg(b"table-parity")
    for exponent in (0, 1, 2, group.subgroup_order - 1):
        assert table.power(exponent) == pow(h, exponent, group.prime)
    for _ in range(8):
        exponent = group.random_exponent(rng)
        assert table.power(exponent) == pow(h, exponent, group.prime)


def test_fixed_base_table_falls_back_outside_coverage():
    group = OAKLEY_GROUP_1
    h = group.subgroup_generator()
    table = group_ops.FixedBaseTable(group.prime, h)
    oversized = group.prime * group.prime  # more bits than the table covers
    assert table.power(oversized) == pow(h, oversized, group.prime)
    assert table.power(-3) == pow(h, -3, group.prime)


def test_register_base_skips_small_primes():
    assert group_ops.register_base(TEST_GROUP.prime, TEST_GROUP.generator) is None
    # fixed_power stays correct without a table
    assert group_ops.fixed_power(TEST_GROUP.prime, 3, 5) == pow(
        3, 5, TEST_GROUP.prime
    )


def test_fixed_power_auto_builds_after_threshold():
    group = OAKLEY_GROUP_1
    base = pow(group.subgroup_generator(), 7, group.prime)
    key = (group.prime, base)
    for _ in range(group_ops.AUTO_BUILD_THRESHOLD + 1):
        assert group_ops.fixed_power(group.prime, base, 12345) == pow(
            base, 12345, group.prime
        )
    assert key in group_ops._TABLES
    # and the table keeps answering correctly
    assert group_ops.fixed_power(group.prime, base, 54321) == pow(
        base, 54321, group.prime
    )


# ------------------------------------------------------------- membership


def test_membership_memo_only_caches_positives():
    group = OAKLEY_GROUP_1
    valid = group.power(group.subgroup_generator(), 12345)
    assert group.is_valid_element(valid)
    assert group_ops.is_known_member(group.prime, valid)
    # warm cache must not leak acceptance to other elements
    invalid = group.prime - 1
    assert not group_ops.is_known_member(group.prime, invalid)
    assert not group.is_valid_element(invalid)


def test_invalid_element_rejected_after_warm_cache():
    """Regression: a warmed membership cache must never admit a non-member."""
    group = OAKLEY_GROUP_1
    h = group.subgroup_generator()
    for exponent in range(2, 10):
        assert group.is_valid_element(group.power(h, exponent))
    # a quadratic non-residue (order 2q) and the degenerate elements must
    # still be rejected
    non_residue = next(
        x for x in range(2, 100) if group_ops.jacobi(x, group.prime) == -1
    )
    assert not group.is_valid_element(non_residue)
    assert not group.is_valid_element(0)
    assert not group.is_valid_element(1)
    assert not group.is_valid_element(group.prime - 1)


def test_jacobi_agrees_with_euler_criterion():
    prime = TEST_GROUP.prime
    for value in range(1, 50):
        euler = pow(value, (prime - 1) // 2, prime)
        expected = 1 if euler == 1 else -1
        assert group_ops.jacobi(value, prime) == expected
    assert group_ops.jacobi(0, prime) == 0


# ----------------------------------------------------------- batch scalars


def test_batch_scalars_deterministic_and_nonzero():
    first = group_ops.batch_scalars(b"transcript", 64)
    second = group_ops.batch_scalars(b"transcript", 64)
    assert first == second
    assert all(0 < z < 1 << group_ops.BATCH_SCALAR_BITS for z in first)
    assert group_ops.batch_scalars(b"other", 64) != first


# ------------------------------------------------------------ session cache


def test_session_cache_roundtrip_and_counters():
    cache = group_ops.DHSessionCache(max_entries=4)
    before = group_ops.counters()
    assert cache.lookup(b"peer", "ctx") is None
    cache.store(b"peer", "ctx", 123, b"k" * 32)
    assert cache.lookup(b"peer", "ctx") == (123, b"k" * 32)
    assert cache.lookup(b"peer", "other-ctx") is None
    delta = group_ops.counters_delta(before)
    assert delta["handshakes_resumed"] == 1


def test_session_cache_resume_key_contextual():
    base = b"b" * 32
    key1 = group_ops.DHSessionCache.resume_key(base, b"s1", "ctx")
    assert key1 == group_ops.DHSessionCache.resume_key(base, b"s1", "ctx")
    assert key1 != group_ops.DHSessionCache.resume_key(base, b"s2", "ctx")
    assert key1 != group_ops.DHSessionCache.resume_key(base, b"s1", "ctx2")
    assert key1 != group_ops.DHSessionCache.resume_key(b"c" * 32, b"s1", "ctx")


def test_session_cache_eviction_and_clear():
    cache = group_ops.DHSessionCache(max_entries=2)
    cache.store(b"a", "ctx", 1, b"ka")
    cache.store(b"b", "ctx", 2, b"kb")
    cache.store(b"c", "ctx", 3, b"kc")  # evicts the oldest entry
    assert cache.lookup(b"a", "ctx") is None
    assert cache.lookup(b"b", "ctx") is not None
    cache.evict(b"b", "ctx")
    assert cache.lookup(b"b", "ctx") is None
    cache.store(b"d", "ctx", 4, b"kd")
    cache.clear()
    assert cache.lookup(b"d", "ctx") is None


# ---------------------------------------------------------------- counters


def test_counters_delta_is_monotone_snapshot():
    before = group_ops.counters()
    group_ops.bump("batch_verifications")
    group_ops.bump("batch_fallbacks", 2)
    delta = group_ops.counters_delta(before)
    assert delta["batch_verifications"] == 1
    assert delta["batch_fallbacks"] == 2
    assert delta["handshakes_resumed"] == 0
