"""Shared fixtures: the storage-backend matrix.

``SERVICE_BACKEND`` (CI matrix) narrows the parametrization to one
backend kind; unset, every test runs against all three.  The
``backend_factory`` fixture returns a zero-arg callable building a
backend over the *same* persisted state each call — calling it twice
models a process restart (for ``memory`` the same instance is returned,
which models restart-with-surviving-store and lets the durability logic
run in the matrix's cheapest leg).
"""

from __future__ import annotations

import os

import pytest

from repro.service.storage import build_backend

ALL_KINDS = ("memory", "disk", "sqlite")
KINDS = (
    (os.environ["SERVICE_BACKEND"],)
    if os.environ.get("SERVICE_BACKEND")
    else ALL_KINDS
)


@pytest.fixture(params=KINDS)
def backend_kind(request):
    return request.param


@pytest.fixture
def backend_factory(backend_kind, tmp_path):
    if backend_kind == "memory":
        shared = build_backend("memory")

        def factory():
            return shared

    else:
        state = tmp_path / "state"

        def factory():
            return build_backend(backend_kind, str(state))

    return factory


@pytest.fixture
def backend(backend_factory):
    return backend_factory()
