"""Overlapping rounds: multi-tenant concurrency, shared blinder, backpressure."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service.queue import OVERFLOW_DEFER
from repro.service.service import GlimmerService
from repro.service.storage import build_backend

TENANTS = ("alpha", "beta", "gamma")


def _service(**kwargs):
    kwargs.setdefault("num_users", 4)
    kwargs.setdefault("sentences_per_user", 4)
    return GlimmerService(build_backend("memory"), **kwargs)


def _fill(service, tenants=TENANTS, count=4):
    for name in tenants:
        runtime = service.tenants.get(name) or service.add_tenant(name)
        for user in sorted(runtime.deployment.clients)[:count]:
            service.submit_honest(name, user)


def test_tenants_share_one_blinder():
    with _service() as service:
        for name in TENANTS:
            service.add_tenant(name)
        blinders = {
            id(runtime.deployment.blinder_provisioner)
            for runtime in service.tenants.values()
        }
        assert len(blinders) == 1
        for runtime in service.tenants.values():
            assert runtime.engine.blinder_provisioner is service.shared_blinder


def test_three_tenants_overlap_on_one_event_loop():
    with _service() as service:
        _fill(service)
        reports = service.run_pending_sync()
        assert len(reports) == len(TENANTS)
        round_ids = [report.round_id for report in reports]
        assert len(set(round_ids)) == len(TENANTS), "global ids must not collide"
        # Each driver actually interleaved stages on the loop.
        for runtime in service.tenants.values():
            assert runtime.driver.stages_driven > 0
        # Identical tenants, identical honest inputs: identical aggregates.
        first = reports[0].as_dict()["aggregate"]
        for report in reports[1:]:
            assert report.as_dict()["aggregate"] == first
        # All rounds live on the one shared blinder's sealed store.
        for round_id in round_ids:
            assert service.shared_blinder.has_round(round_id)


def test_every_round_has_its_own_audit_trail():
    with _service() as service:
        _fill(service)
        reports = service.run_pending_sync()
        seen_tenants = set()
        for report in reports:
            trail = service.audit.trail(round_id=report.round_id)
            events = [entry["event"] for entry in trail]
            assert events[0] == "round-opened"
            assert "round-finalized" in events
            tenants = {entry["tenant"] for entry in trail}
            assert len(tenants) == 1, "a round's trail belongs to one tenant"
            seen_tenants |= tenants
        assert seen_tenants == set(TENANTS)
        assert service.audit.verify_chain() == len(service.audit.entries())


def test_backpressure_rejects_and_audits():
    with _service(queue_capacity=2) as service:
        service.add_tenant("alpha")
        users = sorted(service.tenant("alpha").deployment.clients)
        service.submit_honest("alpha", users[0])
        service.submit_honest("alpha", users[1])
        with pytest.raises(AdmissionError):
            service.submit_honest("alpha", users[2])
        rejected = service.audit.trail(event="submission-rejected")
        assert len(rejected) == 1
        assert rejected[0]["tenant"] == "alpha"
        # The queue drains and capacity comes back.
        service.run_pending_sync()
        service.submit_honest("alpha", users[2])


def test_deferred_submission_rides_a_later_round():
    with _service(queue_capacity=2, overflow=OVERFLOW_DEFER) as service:
        service.add_tenant("alpha")
        users = sorted(service.tenant("alpha").deployment.clients)
        service.submit_honest("alpha", users[0])
        service.submit_honest("alpha", users[1])
        deferred_id = service.submit_honest("alpha", users[2])
        assert service.tenant("alpha").queue.state_of(deferred_id) == "deferred"
        first_batch = service.run_pending_sync()
        assert first_batch[0].num_contributions == 2
        second_batch = service.run_pending_sync()
        assert second_batch[0].num_contributions == 1
        assert service.tenant("alpha").queue.state_of(deferred_id) == "applied"


def test_submit_validates_tenant_and_user():
    with _service() as service:
        service.add_tenant("alpha")
        with pytest.raises(ConfigurationError, match="no tenant"):
            service.submit("ghost", "user-000", [0.1])
        with pytest.raises(ConfigurationError, match="no client"):
            service.submit("alpha", "user-999", [0.1])
        with pytest.raises(ConfigurationError, match="already exists"):
            service.add_tenant("alpha")


def test_run_round_on_empty_queue_is_a_noop():
    with _service() as service:
        service.add_tenant("alpha")
        assert service.run_pending_sync() == []
        assert service.journal.unfinished() == []
