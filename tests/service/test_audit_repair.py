"""AuditLog self-healing: anchors, break detection, repair records."""

from __future__ import annotations

import pytest

from repro.errors import StorageFaultError
from repro.faults import (
    ACTION_CORRUPT,
    ACTION_LOST_AFTER_ACK,
    ACTION_TORN_WRITE,
    SITE_AUDIT_APPEND,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyStorageBackend,
)
from repro.service.audit import EVENT_REPAIR, AuditLog
from repro.service.storage import MemoryBackend


def _audit_under(action, at_hit):
    inner = MemoryBackend()
    plan = FaultPlan(
        specs=(FaultSpec(site=SITE_AUDIT_APPEND, action=action, at_hit=at_hit),)
    )
    faulty = FaultyStorageBackend(inner, FaultInjector(plan))
    return inner, AuditLog(faulty)


def test_corrupted_entry_detected_quarantined_repaired():
    inner, audit = _audit_under(ACTION_CORRUPT, at_hit=2)
    for n in range(4):
        audit.record("event", n=n)  # entry 1 is silently corrupted

    clean = AuditLog(inner)
    with pytest.raises(ValueError, match="audit entry 1"):
        clean.verify_chain()

    report = clean.verify_and_repair()
    assert report == {
        "ok": True,
        "repaired": True,
        "break_index": 1,
        # Everything after the corrupted entry chained off untrusted
        # state: the whole suffix is quarantined.
        "quarantined": 3,
        "truncated_by": 0,
    }
    assert clean.verify_chain() > 0, "repaired chain verifies end-to-end"
    (repair,) = [
        e for e in clean.entries() if e.get("event") == EVENT_REPAIR
    ]
    assert repair["break_index"] == 1
    assert repair["reason"] == "digest mismatch"
    assert "region_digest" in repair
    # Idempotent: a second pass finds nothing to do.
    assert clean.verify_and_repair()["repaired"] is False


def test_lost_append_is_caught_by_the_anchor():
    inner, audit = _audit_under(ACTION_LOST_AFTER_ACK, at_hit=3)
    for n in range(3):
        audit.record("event", n=n)  # entry 2 acked but never persisted

    clean = AuditLog(inner)
    with pytest.raises(ValueError, match="truncated"):
        clean.verify_chain()
    report = clean.verify_and_repair()
    assert report["ok"] and report["repaired"]
    assert report["truncated_by"] == 1
    clean.verify_chain()


def test_torn_tail_does_not_brick_the_log():
    inner, audit = _audit_under(ACTION_TORN_WRITE, at_hit=3)
    audit.record("event", n=0)
    audit.record("event", n=1)
    with pytest.raises(StorageFaultError):
        audit.record("event", n=2)  # torn: garbage appended, op raised

    clean = AuditLog(inner)  # __init__ must tolerate the torn tail
    report = clean.verify_and_repair()
    assert report["ok"] and report["repaired"]
    assert report["break_index"] == 2
    assert report["quarantined"] == 1
    clean.verify_chain()
    # The log keeps working after repair, chained off the repair record.
    clean.record("post-repair")
    assert clean.verify_chain() >= 4


def test_recording_continues_over_a_repaired_chain():
    inner, audit = _audit_under(ACTION_CORRUPT, at_hit=1)
    audit.record("will-corrupt")
    clean = AuditLog(inner)
    assert clean.verify_and_repair()["repaired"]
    clean.record("after")
    clean.record("after-again")
    assert clean.verify_chain() >= 3
    assert clean.verify_and_repair()["repaired"] is False


def test_healthy_chain_needs_no_repair():
    backend = MemoryBackend()
    audit = AuditLog(backend)
    for n in range(5):
        audit.record("event", n=n)
    report = audit.verify_and_repair()
    assert report == {
        "ok": True,
        "repaired": False,
        "break_index": None,
        "quarantined": 0,
        "truncated_by": 0,
    }
    assert audit.verify_chain() == 5
