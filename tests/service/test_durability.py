"""Kill-and-restart durability, on every storage backend.

The invariant under test: a service rebuilt over the same backend
resumes from the persisted journal and sealed checkpoints and finishes
every interrupted round **without double-counting a submission**, and a
replayed round's aggregate is bit-exact against an uninterrupted twin
run of the identical service.
"""

from __future__ import annotations

from repro.service.queue import STATE_APPLIED
from repro.service.service import GlimmerService
from repro.service.storage import SealedBlobMap, build_backend

USERS = 4


def _service(backend, **kwargs):
    kwargs.setdefault("num_users", USERS)
    kwargs.setdefault("sentences_per_user", 4)
    return GlimmerService(backend, **kwargs)


def _submit_all(service, tenant="alpha"):
    runtime = service.tenants.get(tenant) or service.add_tenant(tenant)
    for user in sorted(runtime.deployment.clients):
        service.submit_honest(tenant, user)


def _open_without_driving(service, tenant="alpha"):
    """Replicate ``run_round`` up to the crash point: journaled + assigned."""
    runtime = service.tenant(tenant)
    batch = runtime.queue.take()
    round_id = service._allocate_round_id()
    submission_ids = [entry["submission_id"] for entry in batch]
    service.journal.round_opened(
        round_id,
        tenant,
        [entry["user_id"] for entry in batch],
        submission_ids,
        {entry["user_id"]: list(entry["values"]) for entry in batch},
    )
    runtime.queue.mark_assigned(submission_ids, round_id)
    return round_id, submission_ids


def _twin_aggregate():
    """The same round on an identical, uninterrupted service."""
    with _service(build_backend("memory")) as twin:
        _submit_all(twin)
        (report,) = twin.run_pending_sync()
        return report.as_dict()["aggregate"], report.round_id


def test_crash_before_drive_resumes_bit_exact(backend_factory):
    crashed = _service(backend_factory())
    _submit_all(crashed)
    round_id, submission_ids = _open_without_driving(crashed)
    crashed.close()  # process dies before any protocol message is answered

    recovered = GlimmerService.recover(backend_factory())
    with recovered:
        assert [e["round_id"] for e in recovered.journal.unfinished()] == [round_id]
        (report,) = recovered.resume_sync()
        assert report.round_id == round_id, "replay keeps the original id"
        twin_aggregate, twin_round_id = _twin_aggregate()
        assert twin_round_id == round_id
        assert report.as_dict()["aggregate"] == twin_aggregate
        # Exactly-once: every submission applied, nothing left to run.
        queue = recovered.tenant("alpha").queue
        for sid in submission_ids:
            assert queue.state_of(sid) == STATE_APPLIED
        assert recovered.run_pending_sync() == []
        assert recovered.journal.unfinished() == []
        assert [e["event"] for e in recovered.audit.trail(round_id=round_id)][
            -2:
        ] == ["round-replayed", "round-finalized"]
        recovered.audit.verify_chain()


def test_crash_in_the_journal_queue_gap_settles_without_replay(backend_factory):
    crashed = _service(backend_factory())
    _submit_all(crashed)
    queue = crashed.tenant("alpha").queue
    # Crash between journal.round_finalized and queue.mark_applied: the
    # round ran to completion but the queue never heard.
    real_mark_applied, queue.mark_applied = queue.mark_applied, lambda ids, **kw: None
    (report,) = crashed.run_pending_sync()
    queue.mark_applied = real_mark_applied
    assert queue.assigned_to(report.round_id), "gap state: still assigned"
    crashed.close()

    recovered = GlimmerService.recover(backend_factory())
    with recovered:
        resumed = recovered.resume_sync()
        assert resumed == [], "finalized rounds are settled, never re-run"
        assert recovered.audit.trail(event="round-replayed") == []
        settled = recovered.audit.trail(event="submission-settled")
        assert len(settled) == USERS
        queue = recovered.tenant("alpha").queue
        assert all(
            queue.state_of(e["submission"]) == STATE_APPLIED for e in settled
        )
        assert recovered.run_pending_sync() == []


def test_replaying_the_journal_twice_never_double_applies(backend_factory):
    crashed = _service(backend_factory())
    _submit_all(crashed)
    round_id, submission_ids = _open_without_driving(crashed)
    crashed.close()

    recovered = GlimmerService.recover(backend_factory())
    with recovered:
        (report,) = recovered.resume_sync()
        assert report.round_id == round_id
        # Same process, second resume: the journal is already settled.
        assert recovered.resume_sync() == []
        assert recovered.run_pending_sync() == []
        recovered.close()

    # Third process over the same state: still nothing to replay.
    third = GlimmerService.recover(backend_factory())
    with third:
        assert third.resume_sync() == []
        queue = third.tenant("alpha").queue
        for sid in submission_ids:
            assert queue.state_of(sid) == STATE_APPLIED
        # One finalize per round in the whole journal, ever.
        finalized = [
            e
            for e in third.journal.entries()
            if e.get("status") == "finalized" and e.get("round_id") == round_id
        ]
        assert len(finalized) == 1
        assert len(third.audit.trail(event="round-replayed")) == 1
        third.audit.verify_chain()


def test_sealed_rounds_survive_blinder_crash_via_persistent_store(backend_factory):
    with _service(backend_factory()) as service:
        _submit_all(service)
        (report,) = service.run_pending_sync()
        blinder = service.shared_blinder
        assert isinstance(blinder._sealed_rounds, SealedBlobMap)
        blinder.crash()
        assert report.round_id in blinder.restart()
        assert blinder.has_round(report.round_id)
    # The sealed blobs live in the backend, not the process: a fresh
    # backend handle over the same state still sees them.
    sealed = SealedBlobMap(backend_factory(), "sealed/blinder")
    assert report.round_id in sealed
    assert isinstance(sealed[report.round_id], bytes)


def test_second_process_continues_round_numbering(backend_factory):
    first = _service(backend_factory())
    _submit_all(first)
    (first_report,) = first.run_pending_sync()
    first.close()

    second = GlimmerService.recover(backend_factory())
    with second:
        _submit_all(second)
        (second_report,) = second.run_pending_sync()
        assert second_report.round_id == first_report.round_id + 1
        # The persistent sealed store holds both processes' rounds; a
        # blinder restart unseals them all into the live service.
        blinder = second.shared_blinder
        assert first_report.round_id in blinder._sealed_rounds
        blinder.crash()
        recovered_rounds = blinder.restart()
        assert first_report.round_id in recovered_rounds
        assert second_report.round_id in recovered_rounds
        assert blinder.has_round(first_report.round_id)
