"""Retry policy, circuit breaker state machine, resilient backend armor."""

from __future__ import annotations

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.errors import StorageFaultError, StorageUnavailableError
from repro.service.resilience import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    ResilientStorageBackend,
    RetryPolicy,
)
from repro.service.storage import MemoryBackend


class FlakyBackend(MemoryBackend):
    """Fails the next ``fail_next`` mutations, then behaves."""

    def __init__(self, fail_next: int = 0) -> None:
        super().__init__()
        self.fail_next = fail_next
        self.attempts = 0

    def _maybe_fail(self, label: str) -> None:
        self.attempts += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            raise StorageFaultError(f"flaky {label}")

    def put(self, space, key, value):
        self._maybe_fail("put")
        super().put(space, key, value)

    def append(self, log, entry):
        self._maybe_fail("append")
        return super().append(log, entry)


# ------------------------------------------------------------- retry policy


def test_backoff_doubles_and_caps():
    policy = RetryPolicy(base_delay=0.01, max_delay=0.05, jitter=0.0)
    assert policy.delay_for(1) == pytest.approx(0.01)
    assert policy.delay_for(2) == pytest.approx(0.02)
    assert policy.delay_for(3) == pytest.approx(0.04)
    assert policy.delay_for(4) == pytest.approx(0.05), "capped"
    assert policy.delay_for(10) == pytest.approx(0.05)


def test_jitter_is_deterministic_per_seed():
    policy = RetryPolicy(jitter=0.5)
    first = [
        policy.delay_for(n, HmacDrbg(b"jit", personalization="t"))
        for n in (1, 2, 3)
    ]
    second = [
        policy.delay_for(n, HmacDrbg(b"jit", personalization="t"))
        for n in (1, 2, 3)
    ]
    assert first == second
    assert all(d >= policy.base_delay for d in first[:1])


# ----------------------------------------------------------- circuit breaker


def test_breaker_walks_closed_open_half_open_closed():
    breaker = CircuitBreaker(failure_threshold=2, cooldown=3.0)
    assert breaker.state == STATE_CLOSED
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED, "below threshold"
    breaker.record_failure()
    assert breaker.state == STATE_OPEN

    # Open: admissions fail fast until the cooldown elapses (the default
    # clock ticks once per admission attempt).
    for _ in range(2):
        with pytest.raises(StorageUnavailableError):
            breaker.allow()
    assert breaker.fast_fails == 2
    breaker.allow()  # third tick reaches the cooldown: half-open probe
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_success()
    assert breaker.state == STATE_CLOSED
    assert [state for state, _ in breaker.transitions] == [
        STATE_CLOSED,
        STATE_OPEN,
        STATE_HALF_OPEN,
        STATE_CLOSED,
    ]


def test_breaker_reopens_when_the_probe_fails():
    breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
    breaker.record_failure()
    assert breaker.state == STATE_OPEN
    breaker.allow()  # cooldown elapsed -> half-open probe admitted
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_failure()
    assert breaker.state == STATE_OPEN, "failed probe re-opens immediately"


def test_success_resets_the_consecutive_failure_count():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == STATE_CLOSED


# --------------------------------------------------------- resilient backend


def test_retries_absorb_transient_faults():
    inner = FlakyBackend(fail_next=2)
    backend = ResilientStorageBackend(inner)
    backend.put("space", "k", {"v": 1})
    assert backend.get("space", "k") == {"v": 1}
    assert backend.stats["retries"] == 2
    assert backend.stats["faults"] == 2
    assert backend.retry_delay_total > 0.0
    assert backend.breaker.state == STATE_CLOSED


def test_exhaustion_converts_to_unavailable():
    inner = FlakyBackend(fail_next=100)
    backend = ResilientStorageBackend(
        inner, policy=RetryPolicy(max_attempts=3)
    )
    with pytest.raises(StorageUnavailableError):
        backend.put("space", "k", 1)
    assert backend.stats["unavailable"] == 1
    assert inner.attempts == 3


def test_open_breaker_fails_fast_without_touching_storage():
    inner = FlakyBackend(fail_next=100)
    backend = ResilientStorageBackend(
        inner,
        policy=RetryPolicy(max_attempts=2),
        breaker=CircuitBreaker(failure_threshold=2, cooldown=50.0),
    )
    with pytest.raises(StorageUnavailableError):
        backend.put("space", "k", 1)  # 2 attempts, breaker opens
    touched = inner.attempts
    with pytest.raises(StorageUnavailableError):
        backend.put("space", "k", 1)  # fast-fail: no I/O at all
    assert inner.attempts == touched
    assert backend.breaker.fast_fails == 1


def test_half_open_probe_closes_breaker_end_to_end():
    inner = FlakyBackend(fail_next=2)
    backend = ResilientStorageBackend(
        inner,
        policy=RetryPolicy(max_attempts=1),  # every fault surfaces
        breaker=CircuitBreaker(failure_threshold=2, cooldown=2.0),
    )
    for _ in range(2):
        with pytest.raises(StorageUnavailableError):
            backend.put("space", "k", 1)
    assert backend.breaker.state == STATE_OPEN
    with pytest.raises(StorageUnavailableError):
        backend.put("space", "k", 1)  # fast-fail tick 1
    backend.put("space", "k", 2)  # cooldown over: probe succeeds, closes
    assert backend.breaker.state == STATE_CLOSED
    assert backend.get("space", "k") == 2


def test_wrapper_is_transparent_on_success():
    inner = MemoryBackend()
    backend = ResilientStorageBackend(inner)
    assert backend.kind == inner.kind
    assert backend.append("log", {"a": 1}) == 0
    assert backend.append("log", {"a": 2}) == 1
    assert backend.read_log("log") == [{"a": 1}, {"a": 2}]
    backend.put("s", "k", b"bytes")
    assert backend.get("s", "k") == b"bytes"
    assert backend.keys("s") == ["k"]
    assert backend.delete("s", "k") is True
