"""Async/sync parity: the event-loop driver changes scheduling, nothing else.

The async engine drains the very generator ``run_round`` drains, on one
thread, so a single round driven async must produce a *fully identical*
:class:`RoundReport` — aggregate, outcomes, transport telemetry, enclave
cycles, simulated latency, everything.  The chaos and Byzantine suites
then run their schedule harnesses unchanged against the async engine
(via :func:`repro.service.async_engine.install_async_drive`), asserting
the exact-or-abort and blame invariants survive the new scheduler and
that outcomes replay identically against the serial engine.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import RoundAbortedError
from repro.experiments.common import Deployment
from repro.service.async_engine import AsyncRoundEngine, install_async_drive

from tests.chaos import test_byzantine as byz
from tests.chaos import test_chaos as chaos

SEED = b"async-parity"
NUM_USERS = 5

#: Chaos/Byzantine schedules per suite here — enough to hit aborts and
#: recoveries without doubling the chaos suite's wall-clock.
SCHEDULES = 12


def _build():
    return Deployment.build(num_users=NUM_USERS, seed=SEED, sentences_per_user=8)


def _round_inputs(deployment):
    users = [u.user_id for u in deployment.corpus.users]
    return users, deployment.local_vectors(), deployment.features.bigrams


def _assert_reports_identical(serial, asynced):
    assert serial.as_dict() == asynced.as_dict()
    assert np.array_equal(
        np.asarray(serial.aggregate), np.asarray(asynced.aggregate)
    )


def test_async_round_report_is_bit_identical():
    # The public-key caches (tables, membership memo) are process-wide,
    # so both runs must start equally cold for their cache-efficacy
    # telemetry (membership_checks_skipped) to compare bit-exact.
    from repro.crypto import group_ops

    sync_dep, async_dep = _build(), _build()
    users, vectors, features = _round_inputs(sync_dep)
    group_ops.reset_tables()
    serial = sync_dep.engine.run_round(1, users, vectors, features)
    driver = AsyncRoundEngine(async_dep.engine)
    users2, vectors2, features2 = _round_inputs(async_dep)
    group_ops.reset_tables()
    asynced = asyncio.run(driver.run_round(1, users2, vectors2, features2))
    assert driver.stages_driven > 0, "the async path must actually suspend"
    _assert_reports_identical(serial, asynced)


def test_async_parity_with_dropouts_and_repair():
    from repro.crypto import group_ops

    sync_dep, async_dep = _build(), _build()
    users, vectors, features = _round_inputs(sync_dep)
    dropouts = (users[1],)
    collect_dropouts = (users[3],)
    group_ops.reset_tables()
    serial = sync_dep.engine.run_round(
        1, users, vectors, features,
        dropouts=dropouts, collect_dropouts=collect_dropouts,
    )
    driver = AsyncRoundEngine(async_dep.engine)
    users2, vectors2, features2 = _round_inputs(async_dep)
    group_ops.reset_tables()
    asynced = asyncio.run(
        driver.run_round(
            1, users2, vectors2, features2,
            dropouts=dropouts, collect_dropouts=collect_dropouts,
        )
    )
    assert serial.masks_repaired == 2
    _assert_reports_identical(serial, asynced)


def test_async_rounds_on_one_engine_serialize():
    deployment = _build()
    users, vectors, features = _round_inputs(deployment)
    driver = AsyncRoundEngine(deployment.engine)

    async def both():
        return await asyncio.gather(
            driver.run_round(1, users, vectors, features),
            driver.run_round(2, users, vectors, features),
        )

    first, second = asyncio.run(both())
    # The lock kept the engine's per-round invariants: both rounds
    # finalized with full acceptance, in order.
    assert first.round_id == 1 and second.round_id == 2
    assert first.num_contributions == NUM_USERS
    assert second.num_contributions == NUM_USERS


def test_install_async_drive_preserves_run_round_contract():
    deployment = _build()
    users, vectors, features = _round_inputs(deployment)
    driver = install_async_drive(deployment.engine)
    report = deployment.engine.run_round(1, users, vectors, features)
    assert report.num_contributions == NUM_USERS
    assert driver.stages_driven > 0
    # Aborts still raise through the sync facade.
    with pytest.raises(RoundAbortedError):
        deployment.engine.run_round(
            2, users, vectors, features, dropouts=tuple(users)
        )
    deployment.engine.abandon_round(2)


@pytest.mark.parametrize("seed", ["async-chaos"])
def test_chaos_schedules_run_unchanged_on_the_async_engine(seed):
    """The chaos harness, verbatim, with async-driven rounds.

    Every schedule must uphold exact-or-abort, and the outcome sequence
    must replay identically against the serial engine — the silent-
    fallback discipline from the scale layer, now for the scheduler.
    """
    async_dep = chaos._build(seed)
    install_async_drive(async_dep.engine)
    serial_dep = chaos._build(seed)
    async_users = [u.user_id for u in async_dep.corpus.users]
    serial_users = [u.user_id for u in serial_dep.corpus.users]
    async_vectors = async_dep.local_vectors()
    serial_vectors = serial_dep.local_vectors()
    for index in range(SCHEDULES):
        _, injector_a = chaos._schedule(seed, index, async_users)
        _, injector_s = chaos._schedule(seed, index, serial_users)
        outcome_async = chaos._run_schedule(
            async_dep, index + 1, injector_a, async_users, async_vectors
        )
        outcome_serial = chaos._run_schedule(
            serial_dep, index + 1, injector_s, serial_users, serial_vectors
        )
        assert outcome_async == outcome_serial, f"schedule {index} diverged"


@pytest.mark.parametrize("seed", ["async-byz"])
def test_byzantine_schedules_run_unchanged_on_the_async_engine(seed):
    """The Byzantine harness, verbatim, against the async engine."""
    async_dep = byz._build(seed)
    install_async_drive(async_dep.engine)
    serial_dep = byz._build(seed)
    async_users = [u.user_id for u in async_dep.corpus.users]
    serial_users = [u.user_id for u in serial_dep.corpus.users]
    for index in range(SCHEDULES):
        outcome_async = byz._run_schedule(async_dep, seed, index, async_users)
        outcome_serial = byz._run_schedule(serial_dep, seed, index, serial_users)
        assert outcome_async == outcome_serial, f"attack mix {index} diverged"
