"""The round watchdog: a wedged async round aborts instead of hanging."""

from __future__ import annotations

import asyncio

from repro.service.queue import STATE_PENDING
from repro.service.service import GlimmerService
from repro.service.storage import build_backend

KNOBS = dict(num_users=3, sentences_per_user=3, max_features=8)


async def _wedged(*args, **kwargs):
    await asyncio.sleep(30.0)


def test_watchdog_aborts_requeues_and_the_round_reruns():
    service = GlimmerService(
        build_backend("memory"), round_deadline=0.1, **KNOBS
    )
    service.add_tenant("alpha")
    runtime = service.tenant("alpha")
    for user in sorted(runtime.deployment.clients):
        service.submit_honest("alpha", user)

    real_driver = runtime.driver
    runtime.driver = type("Wedged", (), {"run_round": _wedged})()
    assert service.run_pending_sync() == [], "wedged round yields no report"

    # Abort-with-telemetry: journaled, audited, submissions requeued.
    assert service.journal.status_of(1) == "aborted"
    (abort,) = service.audit.trail(event="round-watchdog-abort")
    assert abort["round_id"] == 1 and abort["deadline"] == 0.1
    assert len(abort["requeued"]) == KNOBS["num_users"]
    queue = runtime.queue
    assert queue.count(STATE_PENDING) == KNOBS["num_users"]

    # The service is still healthy: restore the driver and the very same
    # submissions complete in the next round.
    runtime.driver = real_driver
    (report,) = service.run_pending_sync()
    assert report.round_id == 2
    assert report.num_contributions == KNOBS["num_users"]
    assert service.journal.unfinished() == []
    service.audit.verify_chain()
    service.close()


def test_no_deadline_means_no_watchdog():
    service = GlimmerService(build_backend("memory"), **KNOBS)
    assert service.round_deadline is None
    service.add_tenant("alpha")
    for user in sorted(service.tenant("alpha").deployment.clients):
        service.submit_honest("alpha", user)
    (report,) = service.run_pending_sync()
    assert report.num_contributions == KNOBS["num_users"]
    service.close()
