"""Tenant bulkheads: one tenant's dead storage never touches the rest."""

from __future__ import annotations

import pytest

from repro.errors import StorageFaultError, StorageUnavailableError
from repro.service.service import GlimmerService
from repro.service.storage import MemoryBackend, build_backend

KNOBS = dict(num_users=3, sentences_per_user=3, max_features=8)
ROUNDS = 3


class DeadBackend(MemoryBackend):
    """Every mutation fails until ``broken`` is cleared."""

    def __init__(self) -> None:
        super().__init__()
        self.broken = True
        self.write_attempts = 0

    def put(self, space, key, value):
        self.write_attempts += 1
        if self.broken:
            raise StorageFaultError("dead disk: put")
        super().put(space, key, value)

    def append(self, log, entry):
        self.write_attempts += 1
        if self.broken:
            raise StorageFaultError("dead disk: append")
        return super().append(log, entry)


def _drive_waves(service, tenant: str, rounds: int) -> list:
    reports = []
    runtime = service.tenant(tenant)
    for _ in range(rounds):
        for user in sorted(runtime.deployment.clients):
            service.submit_honest(tenant, user)
        reports.extend(service.run_pending_sync())
    return reports


def test_dead_tenant_degrades_and_fails_fast():
    service = GlimmerService(build_backend("memory"), **KNOBS)
    dead = DeadBackend()
    service.add_tenant("sick", backend=dead)
    user = sorted(service.tenant("sick").deployment.clients)[0]

    with pytest.raises(StorageUnavailableError):
        service.submit_honest("sick", user)
    assert "sick" in service.degraded

    # Degraded: admission fails fast, without a single storage attempt.
    touched = dead.write_attempts
    with pytest.raises(StorageUnavailableError):
        service.submit_honest("sick", user)
    assert dead.write_attempts == touched
    # The quarantine is on the audit record.
    assert service.audit.trail(event="tenant-degraded")[0]["tenant"] == "sick"
    service.close()


def test_bulkhead_isolates_healthy_tenant_bit_exact():
    # Twin: the same healthy tenant on a service with no sick neighbor.
    twin = GlimmerService(build_backend("memory"), **KNOBS)
    twin.add_tenant("healthy")
    twin_reports = _drive_waves(twin, "healthy", ROUNDS)
    twin.close()

    service = GlimmerService(build_backend("memory"), **KNOBS)
    service.add_tenant("healthy")
    dead = DeadBackend()
    service.add_tenant("sick", backend=dead)
    sick_user = sorted(service.tenant("sick").deployment.clients)[0]
    with pytest.raises(StorageUnavailableError):
        service.submit_honest("sick", sick_user)
    assert "sick" in service.degraded

    # The healthy tenant completes its rounds as if nothing happened.
    reports = _drive_waves(service, "healthy", ROUNDS)
    assert len(reports) == ROUNDS == len(twin_reports)
    for mine, theirs in zip(reports, twin_reports):
        assert mine.round_id == theirs.round_id
        assert mine.as_dict()["aggregate"] == theirs.as_dict()["aggregate"]
    # run_pending skips the degraded tenant entirely.
    assert "sick" in service.degraded
    service.close()


def test_probe_restores_a_healed_tenant():
    service = GlimmerService(build_backend("memory"), **KNOBS)
    dead = DeadBackend()
    service.add_tenant("sick", backend=dead)
    user = sorted(service.tenant("sick").deployment.clients)[0]
    with pytest.raises(StorageUnavailableError):
        service.submit_honest("sick", user)
    assert service.probe_degraded() == [], "still dead: stays quarantined"
    assert "sick" in service.degraded

    dead.broken = False
    assert service.probe_degraded() == ["sick"]
    assert "sick" not in service.degraded
    # And the tenant actually works again, end to end.
    for name in sorted(service.tenant("sick").deployment.clients):
        service.submit_honest("sick", name)
    (report,) = service.run_pending_sync()
    assert report.num_contributions == KNOBS["num_users"]
    assert service.audit.trail(event="tenant-restored")[0]["tenant"] == "sick"
    service.close()
