"""Storage-backend contract tests, run against every implementation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.storage import SealedBlobMap, build_backend


def test_put_get_roundtrip(backend):
    backend.put("space", "k", {"n": 1, "s": "x", "f": 0.5, "none": None})
    assert backend.get("space", "k") == {"n": 1, "s": "x", "f": 0.5, "none": None}


def test_bytes_roundtrip(backend):
    blob = bytes(range(256))
    backend.put("space", "blob", blob)
    assert backend.get("space", "blob") == blob
    backend.put("space", "nested", {"inner": [b"ab", {"deep": b"cd"}]})
    assert backend.get("space", "nested") == {"inner": [b"ab", {"deep": b"cd"}]}


def test_tuples_normalize_to_lists_everywhere(backend):
    # The codec is applied by every backend, so memory behaves exactly
    # like a disk round-trip: tuples come back as lists.
    backend.put("space", "t", {"pair": (1, 2)})
    assert backend.get("space", "t") == {"pair": [1, 2]}


def test_get_default_and_delete(backend):
    assert backend.get("space", "missing") is None
    assert backend.get("space", "missing", 42) == 42
    backend.put("space", "k", 1)
    assert backend.delete("space", "k") is True
    assert backend.delete("space", "k") is False
    assert backend.get("space", "k") is None


def test_keys_sorted_and_space_isolated(backend):
    backend.put("a", "2", "x")
    backend.put("a", "1", "y")
    backend.put("b", "zz", "z")
    assert backend.keys("a") == ["1", "2"]
    assert backend.keys("b") == ["zz"]
    assert backend.keys("c") == []


def test_append_returns_sequence_and_reads_in_order(backend):
    assert backend.append("log", {"v": 1}) == 0
    assert backend.append("log", {"v": 2}) == 1
    assert backend.append("other", {"v": 9}) == 0
    assert [e["v"] for e in backend.read_log("log")] == [1, 2]
    assert backend.read_log("nothing") == []


def test_persistence_across_reopen(backend_factory, backend_kind):
    first = backend_factory()
    first.put("space", "k", {"blob": b"sealed"})
    first.append("log", {"v": 7})
    first.close()
    second = backend_factory()
    assert second.get("space", "k") == {"blob": b"sealed"}
    assert [e["v"] for e in second.read_log("log")] == [7]
    second.close()


def test_sealed_blob_map_is_an_int_keyed_mapping(backend):
    sealed = SealedBlobMap(backend, "sealed/test")
    sealed[3] = b"three"
    sealed[1] = b"one"
    sealed[2] = b"two"
    assert sorted(sealed) == [1, 2, 3]
    assert list(sealed) == [1, 2, 3]  # iteration is sorted, like the dicts
    assert sealed[3] == b"three"
    assert len(sealed) == 3
    assert 2 in sealed
    assert sealed.pop(2, None) == b"two"
    assert sealed.pop(2, None) is None
    del sealed[1]
    with pytest.raises(KeyError):
        sealed[1]
    with pytest.raises(KeyError):
        del sealed[99]
    assert sorted(sealed) == [3]


def test_build_backend_rejects_unknown_kind(tmp_path):
    with pytest.raises(ConfigurationError):
        build_backend("redis", str(tmp_path))
    with pytest.raises(ConfigurationError):
        build_backend("disk")  # path is mandatory for persistent kinds
