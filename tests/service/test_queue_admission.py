"""Submission-queue admission control, backpressure, and state machine."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service.queue import (
    OVERFLOW_DEFER,
    STATE_APPLIED,
    STATE_ASSIGNED,
    STATE_DEFERRED,
    STATE_PENDING,
    SubmissionQueue,
)


def _queue(backend, **kwargs):
    kwargs.setdefault("capacity", 3)
    return SubmissionQueue(backend, "tenant-a", **kwargs)


def test_reject_policy_bounds_the_queue(backend):
    queue = _queue(backend)
    for i in range(3):
        queue.submit(f"user-{i}", [0.1])
    with pytest.raises(AdmissionError, match="full"):
        queue.submit("user-3", [0.1])
    assert queue.depth() == {STATE_PENDING: 3}


def test_defer_policy_parks_overflow(backend):
    queue = _queue(backend, overflow=OVERFLOW_DEFER, defer_capacity=2)
    for i in range(3):
        queue.submit(f"user-{i}", [0.1])
    deferred_id = queue.submit("user-3", [0.1])
    assert queue.state_of(deferred_id) == STATE_DEFERRED
    queue.submit("user-4", [0.1])
    with pytest.raises(AdmissionError, match="deferred buffer"):
        queue.submit("user-5", [0.1])


def test_deferred_promotes_as_capacity_frees(backend):
    queue = _queue(backend, overflow=OVERFLOW_DEFER)
    ids = [queue.submit(f"user-{i}", [0.1]) for i in range(3)]
    deferred_id = queue.submit("user-9", [0.9])
    batch = queue.take()  # deferred submission cannot be in this batch
    assert deferred_id not in [e["submission_id"] for e in batch]
    queue.mark_assigned([e["submission_id"] for e in batch], 1)
    queue.mark_applied(ids)
    promoted_batch = queue.take()
    assert [e["submission_id"] for e in promoted_batch] == [deferred_id]
    assert queue.state_of(deferred_id) == STATE_PENDING


def test_take_is_admission_ordered_and_one_per_user(backend):
    queue = _queue(backend, capacity=10)
    first = queue.submit("user-0", [0.1])
    second = queue.submit("user-1", [0.2])
    duplicate = queue.submit("user-0", [0.3])
    batch = queue.take()
    assert [e["submission_id"] for e in batch] == [first, second]
    # The duplicate waits for the next round.
    queue.mark_assigned([first, second], 1)
    queue.mark_applied([first, second])
    assert [e["submission_id"] for e in queue.take()] == [duplicate]


def test_state_machine_assigned_applied(backend):
    queue = _queue(backend)
    sid = queue.submit("user-0", [0.5])
    queue.mark_assigned([sid], 7)
    assert queue.state_of(sid) == STATE_ASSIGNED
    assert [e["submission_id"] for e in queue.assigned_to(7)] == [sid]
    assert queue.take() == []  # assigned is not pending
    queue.mark_applied([sid])
    assert queue.state_of(sid) == STATE_APPLIED
    assert queue.assigned_to(7) == []


def test_requeue_returns_aborted_round_to_pending(backend):
    queue = _queue(backend)
    sid = queue.submit("user-0", [0.5])
    queue.mark_assigned([sid], 7)
    assert queue.requeue_round(7) == [sid]
    assert queue.state_of(sid) == STATE_PENDING
    assert queue.requeue_round(7) == []


def test_applied_counts_leave_capacity(backend):
    queue = _queue(backend)
    ids = [queue.submit(f"user-{i}", [0.1]) for i in range(3)]
    queue.mark_assigned(ids, 1)
    queue.mark_applied(ids)
    # Resolved submissions free their capacity slots.
    queue.submit("user-9", [0.9])


def test_queue_state_survives_reopen(backend_factory):
    first = _queue(backend_factory())
    sid = first.submit("user-0", [0.25, 0.75])
    first.mark_assigned([sid], 3)
    second = _queue(backend_factory())
    assert second.state_of(sid) == STATE_ASSIGNED
    entry = second.assigned_to(3)[0]
    assert entry["values"] == [0.25, 0.75]
    assert entry["user_id"] == "user-0"


def test_unknown_submission_and_bad_config(backend):
    queue = _queue(backend)
    with pytest.raises(ConfigurationError):
        queue.state_of("nope")
    with pytest.raises(ConfigurationError):
        SubmissionQueue(backend, "t", capacity=0)
    with pytest.raises(ConfigurationError):
        SubmissionQueue(backend, "t", overflow="explode")


class _CountingBackend:
    """Delegating backend that counts storage scans and point reads."""

    def __init__(self, inner):
        self.inner = inner
        self.items_calls = 0
        self.get_calls = 0

    def reset(self):
        self.items_calls = 0
        self.get_calls = 0

    def items(self, space):
        self.items_calls += 1
        return self.inner.items(space)

    def get(self, space, key, default=None):
        self.get_calls += 1
        return self.inner.get(space, key, default)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _run_snapshot_cycle(history: int) -> tuple[int, int]:
    """(items calls, get calls) for one hot cycle after ``history`` applies."""
    from repro.service.storage import MemoryBackend

    counting = _CountingBackend(MemoryBackend())
    queue = SubmissionQueue(counting, "tenant-a", capacity=4)
    for i in range(history):
        sid = queue.submit(f"user-{i}", [0.1])
        queue.mark_assigned([sid], i)
        queue.mark_applied([sid])
    queue.submit("user-live", [0.5])
    counting.reset()
    taken = queue.take()
    assert [entry["user_id"] for entry in taken] == ["user-live"]
    queue.submit("user-next", [0.5])
    queue.depth()
    queue.count()
    return counting.items_calls, counting.get_calls


def test_snapshot_cost_does_not_scale_with_applied_history():
    # The state index is built by one scan at first use; after that, a
    # take/submit/depth cycle must not rescan storage, and its point
    # reads must be bounded by the live population — identical whether
    # eight or two hundred submissions have already been applied.
    small_items, small_gets = _run_snapshot_cycle(8)
    large_items, large_gets = _run_snapshot_cycle(200)
    assert small_items == 0
    assert large_items == 0
    assert large_gets == small_gets


def test_index_mirrors_storage_through_write_faults():
    from repro.errors import StorageFaultError
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import (
        ACTION_LOST_AFTER_ACK,
        ACTION_TORN_WRITE,
        SITE_QUEUE_ADMIT,
        FaultPlan,
        FaultSpec,
    )
    from repro.faults.storage import FaultyStorageBackend
    from repro.service.storage import MemoryBackend

    inner = MemoryBackend()
    plan = FaultPlan(
        specs=(
            FaultSpec(
                site=SITE_QUEUE_ADMIT, action=ACTION_TORN_WRITE, at_hit=2
            ),
            # The torn spec's firing visit does not advance this spec's
            # counter, so its second counted visit is the mark_assigned
            # transition below.
            FaultSpec(
                site=SITE_QUEUE_ADMIT, action=ACTION_LOST_AFTER_ACK, at_hit=2
            ),
        )
    )
    queue = SubmissionQueue(
        FaultyStorageBackend(inner, FaultInjector(plan)),
        "tenant-a",
        capacity=8,
    )
    sid = queue.submit("user-0", [0.1])
    # Torn write: the record is garbage in storage, so the submission
    # effectively never happened — the index must not remember it.
    with pytest.raises(StorageFaultError):
        queue.submit("user-1", [0.2])
    # Lost after ack: whatever the backend actually kept is the truth the
    # index must reflect (MemoryBackend hands out live references, so the
    # in-place transition sticks; a copying backend would stay pending —
    # either way index and storage must agree).
    queue.mark_assigned([sid], 5)
    # The torn submission must not be remembered anywhere.
    assert [entry["user_id"] for entry in queue.take()] == []
    # Ground truth: a fresh queue over the same storage rebuilds its view
    # from a full scan; the incrementally-maintained index must agree.
    fresh = SubmissionQueue(inner, "tenant-a", capacity=8)
    assert queue.state_of(sid) == fresh.state_of(sid)
    assert queue.depth() == fresh.depth()
    assert queue.count() == fresh.count()
