"""Submission-queue admission control, backpressure, and state machine."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service.queue import (
    OVERFLOW_DEFER,
    STATE_APPLIED,
    STATE_ASSIGNED,
    STATE_DEFERRED,
    STATE_PENDING,
    SubmissionQueue,
)


def _queue(backend, **kwargs):
    kwargs.setdefault("capacity", 3)
    return SubmissionQueue(backend, "tenant-a", **kwargs)


def test_reject_policy_bounds_the_queue(backend):
    queue = _queue(backend)
    for i in range(3):
        queue.submit(f"user-{i}", [0.1])
    with pytest.raises(AdmissionError, match="full"):
        queue.submit("user-3", [0.1])
    assert queue.depth() == {STATE_PENDING: 3}


def test_defer_policy_parks_overflow(backend):
    queue = _queue(backend, overflow=OVERFLOW_DEFER, defer_capacity=2)
    for i in range(3):
        queue.submit(f"user-{i}", [0.1])
    deferred_id = queue.submit("user-3", [0.1])
    assert queue.state_of(deferred_id) == STATE_DEFERRED
    queue.submit("user-4", [0.1])
    with pytest.raises(AdmissionError, match="deferred buffer"):
        queue.submit("user-5", [0.1])


def test_deferred_promotes_as_capacity_frees(backend):
    queue = _queue(backend, overflow=OVERFLOW_DEFER)
    ids = [queue.submit(f"user-{i}", [0.1]) for i in range(3)]
    deferred_id = queue.submit("user-9", [0.9])
    batch = queue.take()  # deferred submission cannot be in this batch
    assert deferred_id not in [e["submission_id"] for e in batch]
    queue.mark_assigned([e["submission_id"] for e in batch], 1)
    queue.mark_applied(ids)
    promoted_batch = queue.take()
    assert [e["submission_id"] for e in promoted_batch] == [deferred_id]
    assert queue.state_of(deferred_id) == STATE_PENDING


def test_take_is_admission_ordered_and_one_per_user(backend):
    queue = _queue(backend, capacity=10)
    first = queue.submit("user-0", [0.1])
    second = queue.submit("user-1", [0.2])
    duplicate = queue.submit("user-0", [0.3])
    batch = queue.take()
    assert [e["submission_id"] for e in batch] == [first, second]
    # The duplicate waits for the next round.
    queue.mark_assigned([first, second], 1)
    queue.mark_applied([first, second])
    assert [e["submission_id"] for e in queue.take()] == [duplicate]


def test_state_machine_assigned_applied(backend):
    queue = _queue(backend)
    sid = queue.submit("user-0", [0.5])
    queue.mark_assigned([sid], 7)
    assert queue.state_of(sid) == STATE_ASSIGNED
    assert [e["submission_id"] for e in queue.assigned_to(7)] == [sid]
    assert queue.take() == []  # assigned is not pending
    queue.mark_applied([sid])
    assert queue.state_of(sid) == STATE_APPLIED
    assert queue.assigned_to(7) == []


def test_requeue_returns_aborted_round_to_pending(backend):
    queue = _queue(backend)
    sid = queue.submit("user-0", [0.5])
    queue.mark_assigned([sid], 7)
    assert queue.requeue_round(7) == [sid]
    assert queue.state_of(sid) == STATE_PENDING
    assert queue.requeue_round(7) == []


def test_applied_counts_leave_capacity(backend):
    queue = _queue(backend)
    ids = [queue.submit(f"user-{i}", [0.1]) for i in range(3)]
    queue.mark_assigned(ids, 1)
    queue.mark_applied(ids)
    # Resolved submissions free their capacity slots.
    queue.submit("user-9", [0.9])


def test_queue_state_survives_reopen(backend_factory):
    first = _queue(backend_factory())
    sid = first.submit("user-0", [0.25, 0.75])
    first.mark_assigned([sid], 3)
    second = _queue(backend_factory())
    assert second.state_of(sid) == STATE_ASSIGNED
    entry = second.assigned_to(3)[0]
    assert entry["values"] == [0.25, 0.75]
    assert entry["user_id"] == "user-0"


def test_unknown_submission_and_bad_config(backend):
    queue = _queue(backend)
    with pytest.raises(ConfigurationError):
        queue.state_of("nope")
    with pytest.raises(ConfigurationError):
        SubmissionQueue(backend, "t", capacity=0)
    with pytest.raises(ConfigurationError):
        SubmissionQueue(backend, "t", overflow="explode")
