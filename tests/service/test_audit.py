"""Audit-log chaining: append-only, filterable, tamper-evident."""

from __future__ import annotations

import json

import pytest

from repro.service.audit import AuditLog
from repro.service.storage import DiskBackend


def test_record_and_trail_filters(backend):
    audit = AuditLog(backend)
    audit.record("round-opened", tenant="a", round_id=1)
    audit.record("round-opened", tenant="b", round_id=2)
    audit.record("round-finalized", tenant="a", round_id=1)
    assert len(audit.trail(round_id=1)) == 2
    assert len(audit.trail(tenant="b")) == 1
    assert len(audit.trail(event="round-finalized")) == 1
    assert audit.trail(round_id=1, event="round-opened")[0]["tenant"] == "a"


def test_chain_survives_reopen(backend_factory):
    first = AuditLog(backend_factory())
    first.record("e1", n=1)
    first.record("e2", n=2)
    second = AuditLog(backend_factory())
    second.record("e3", n=3)
    assert second.verify_chain() == 3
    entries = second.entries()
    assert [e["seq"] for e in entries] == [0, 1, 2]
    assert entries[1]["prev"] == entries[0]["digest"]
    assert entries[2]["prev"] == entries[1]["digest"]


def test_none_fields_are_dropped(backend):
    audit = AuditLog(backend)
    entry = audit.record("event", keep=1, drop=None)
    assert "drop" not in entry
    audit.verify_chain()


def test_tampering_breaks_the_chain(tmp_path):
    state = tmp_path / "state"
    audit = AuditLog(DiskBackend(str(state)))
    audit.record("round-finalized", round_id=1, contributions=4)
    audit.record("round-finalized", round_id=2, contributions=4)
    log_file = next(state.glob("log-audit.jsonl"))
    lines = log_file.read_text().splitlines()
    doctored = json.loads(lines[0])
    doctored["contributions"] = 3  # rewrite history
    lines[0] = json.dumps(doctored)
    log_file.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="digest mismatch"):
        AuditLog(DiskBackend(str(state))).verify_chain()


def test_truncation_breaks_the_chain(tmp_path):
    state = tmp_path / "state"
    audit = AuditLog(DiskBackend(str(state)))
    audit.record("e1")
    audit.record("e2")
    audit.record("e3")
    log_file = next(state.glob("log-audit.jsonl"))
    lines = log_file.read_text().splitlines()
    # Drop the middle entry: every later link is now wrong.
    log_file.write_text("\n".join([lines[0], lines[2]]) + "\n")
    with pytest.raises(ValueError):
        AuditLog(DiskBackend(str(state))).verify_chain()
