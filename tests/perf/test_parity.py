"""Cross-implementation parity: every fast path is bit-exact vs scalar.

The seeded sweep covers degenerate (0, 1), odd (7), and bulk (4096)
lengths.  Each test runs the numpy fast path and its scalar twin from
:mod:`repro.perf.reference` on identical inputs / identical DRBG state
and asserts *identical* outputs — masks, blinded vectors, aggregates,
codec round trips, and commitment digests.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.crypto.commitments import (
    _limbs_per_word,
    commit_masks,
    decode_mask_payload,
    encode_mask_payload,
    hash_commitment,
    resolve_group,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import SumZeroMasks, apply_mask, remove_mask
from repro.crypto.secagg import _expand_mask
from repro.errors import ConfigurationError
from repro.perf import kernels, reference

SWEEP = (0, 1, 7, 4096)
NONEMPTY_SWEEP = (1, 7, 4096)


def _words(seed: bytes, length: int) -> list[int]:
    return HmacDrbg(seed).uint64_vector(length).tolist()


# ------------------------------------------------------------ mask sampling


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_sum_zero_sampling_matches_scalar(length):
    fast = SumZeroMasks.sample(4, length, HmacDrbg(b"parity-sample"))
    slow = reference.sample_sum_zero_scalar(4, length, HmacDrbg(b"parity-sample"))
    assert list(fast.masks) == slow
    assert fast.verify_sum_zero()


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_sum_zero_sampling_matches_scalar_narrow_ring(length):
    fast = SumZeroMasks.sample(3, length, HmacDrbg(b"parity-32"), modulus_bits=32)
    slow = reference.sample_sum_zero_scalar(
        3, length, HmacDrbg(b"parity-32"), modulus_bits=32
    )
    assert list(fast.masks) == slow
    assert fast.verify_sum_zero()


@pytest.mark.parametrize("length", SWEEP)
def test_expand_mask_matches_scalar(length):
    fast = _expand_mask(b"parity-expand", "self", length, 1 << 64)
    slow = reference.expand_mask_scalar(b"parity-expand", "self", length, 1 << 64)
    assert fast.tolist() == slow


# --------------------------------------------------------- blinded vectors


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_apply_and_remove_mask_match_scalar(length):
    encoded = _words(b"parity-x", length)
    mask = _words(b"parity-p", length)
    blinded = apply_mask(encoded, mask)
    assert blinded == reference.apply_mask_scalar(encoded, mask)
    assert remove_mask(blinded, mask) == encoded
    assert remove_mask(blinded, mask) == reference.remove_mask_scalar(blinded, mask)


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_aggregate_sum_matches_scalar(length):
    vectors = [_words(bytes([i]), length) for i in range(6)]
    fast = kernels.ring_sum_rows(vectors).tolist()
    assert fast == reference.sum_vectors_scalar(vectors)
    # Narrower ring: wrapped uint64 totals reduce to the right residues.
    fast32 = kernels.ring_sum_rows(vectors, 32).tolist()
    assert fast32 == reference.sum_vectors_scalar(vectors, 32)


def test_ring_ops_match_scalar_definitions():
    a = _words(b"ring-a", 257)
    b = _words(b"ring-b", 257)
    modulus = 1 << 64
    assert kernels.ring_add(a, b).tolist() == [
        (x + y) % modulus for x, y in zip(a, b)
    ]
    assert kernels.ring_sub(a, b).tolist() == [
        (x - y) % modulus for x, y in zip(a, b)
    ]
    assert kernels.ring_neg(a).tolist() == [(-x) % modulus for x in a]


def test_as_ring_out_of_range_fallback_matches_scalar():
    values = [-1, -(1 << 80), 1 << 64, (1 << 200) + 7, 0, 5]
    expected = [v % (1 << 64) for v in values]
    assert kernels.as_ring(values).tolist() == expected
    expected32 = [v % (1 << 32) for v in values]
    assert kernels.as_ring(values, 32).tolist() == expected32
    rows = [values, list(reversed(values))]
    assert kernels.as_ring_rows(rows).tolist() == [
        [v % (1 << 64) for v in row] for row in rows
    ]


# ------------------------------------------------------------------- codec


@pytest.mark.parametrize("length", SWEEP)
def test_codec_round_trip_matches_scalar(length):
    codec = FixedPointCodec()
    rng = HmacDrbg(b"parity-codec")
    values = [rng.uniform() * 2000.0 - 1000.0 for _ in range(length)]
    encoded = codec.encode(values)
    assert encoded == reference.encode_scalar(codec, values)
    decoded = codec.decode(encoded)
    assert decoded.tolist() == reference.decode_scalar(codec, encoded)


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_codec_round_trip_matches_scalar_narrow_ring(length):
    codec = FixedPointCodec(scale=1 << 8, bound=1 << 10, modulus_bits=32)
    rng = HmacDrbg(b"parity-codec-32")
    values = [rng.uniform() * 64.0 - 32.0 for _ in range(length)]
    encoded = codec.encode(values)
    assert encoded == reference.encode_scalar(codec, values)
    assert codec.decode(encoded).tolist() == reference.decode_scalar(codec, encoded)


def test_codec_bounds_error_parity():
    codec = FixedPointCodec()
    bad = [0.0, float(codec.bound) * 2, 1.0]
    with pytest.raises(ConfigurationError):
        codec.encode(bad)
    with pytest.raises(ConfigurationError):
        reference.encode_scalar(codec, bad)


def test_codec_scalar_fallback_beyond_float_exactness():
    # bound * scale > 2^53 forces the scalar loop; outputs must still agree
    # with encode_value/decode_value on every element.
    codec = FixedPointCodec(scale=1 << 40, bound=1 << 20)
    values = [1234.5678, -0.25, 1e-9, 999999.0]
    encoded = codec.encode(values)
    assert encoded == [codec.encode_value(v) for v in values]
    assert codec.decode(encoded).tolist() == [codec.decode_value(e) for e in encoded]


# ----------------------------------------------------------- serialization


@pytest.mark.parametrize("length", SWEEP)
def test_serialization_round_trip_matches_scalar(length):
    words = _words(b"parity-serial", length)
    payload = kernels.be_words_to_bytes(words)
    assert payload == reference.words_to_bytes_scalar(words)
    assert kernels.bytes_to_be_words(payload) == tuple(words)
    assert kernels.bytes_to_be_words(payload) == reference.bytes_to_words_scalar(
        payload
    )


def test_serialization_overflow_error_parity():
    with pytest.raises(OverflowError):
        kernels.be_words_to_bytes([0, 1 << 64])
    with pytest.raises(OverflowError):
        reference.words_to_bytes_scalar([0, 1 << 64])
    with pytest.raises(OverflowError):
        kernels.be_words_to_bytes([-1])


# ------------------------------------------------------ commitment digests


def _scalar_hash_commitment(round_id, slot, mask, salt):
    """hash_items('mask-slot-commitment', ...) reimplemented with a loop."""
    digest = hashlib.sha256()
    tag = b"mask-slot-commitment"
    digest.update(len(tag).to_bytes(2, "big"))
    digest.update(tag)
    for item in (
        round_id.to_bytes(8, "big"),
        slot.to_bytes(4, "big"),
        b"".join(int(v).to_bytes(8, "big") for v in mask),
        salt,
    ):
        digest.update(len(item).to_bytes(8, "big"))
        digest.update(item)
    return digest.digest()


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_hash_commitment_matches_scalar_serialization(length):
    mask = _words(b"parity-hc", length)
    salt = HmacDrbg(b"parity-salt").generate(32)
    assert hash_commitment(9, 2, mask, salt) == _scalar_hash_commitment(
        9, 2, mask, salt
    )


@pytest.mark.parametrize("length", NONEMPTY_SWEEP)
def test_commitment_column_sums_match_scalar_loop(length):
    group = resolve_group("test-64bit")
    family = SumZeroMasks.sample(3, length, HmacDrbg(b"parity-commit"))
    commitments, openings = commit_masks(
        group, 5, family.masks, 64, HmacDrbg(b"parity-commit-r")
    )
    limbs = _limbs_per_word(64)
    limb_cap = (1 << 16) - 1
    for i in range(length):
        expected = tuple(
            sum((mask[i] >> (16 * l)) & limb_cap for mask in family.masks)
            for l in range(limbs)
        )
        assert commitments.column_sums[i] == expected
    commitments.validate_structure(round_id=5, num_slots=3, vector_length=length)
    commitments.verify_sum_zero()
    # The digest set is reproducible from the openings with scalar hashing.
    for slot, opening in enumerate(openings):
        assert commitments.hash_commitments[slot] == _scalar_hash_commitment(
            5, slot, opening.mask, opening.salt
        )


def test_mask_payload_round_trip_preserves_opening():
    family = SumZeroMasks.sample(3, 7, HmacDrbg(b"parity-payload"))
    _, openings = commit_masks(
        resolve_group("test-64bit"),
        2,
        family.masks,
        64,
        HmacDrbg(b"parity-payload-r"),
    )
    for opening in openings:
        decoded = decode_mask_payload(encode_mask_payload(opening))
        assert decoded.mask == opening.mask
        assert decoded.salt == opening.salt
        assert decoded.randomizer == opening.randomizer


# ----------------------------------------------------- end-to-end aggregate


def test_blinded_round_aggregate_matches_scalar_pipeline():
    """Full §3 blinding with fast kernels == the same round in pure scalar."""
    codec = FixedPointCodec()
    length = 64
    num_parties = 5
    rng = HmacDrbg(b"parity-e2e")
    vectors = [
        [rng.uniform() * 10.0 - 5.0 for _ in range(length)]
        for _ in range(num_parties)
    ]
    masks = SumZeroMasks.sample(num_parties, length, HmacDrbg(b"parity-e2e-m"))

    fast_blinded = [
        apply_mask(codec.encode(vec), masks.mask_for(i))
        for i, vec in enumerate(vectors)
    ]
    fast_total = codec.decode(codec.sum_vectors(fast_blinded))

    slow_blinded = [
        reference.apply_mask_scalar(
            reference.encode_scalar(codec, vec), masks.mask_for(i)
        )
        for i, vec in enumerate(vectors)
    ]
    slow_total = reference.decode_scalar(
        codec, reference.sum_vectors_scalar(slow_blinded)
    )

    assert fast_total.tolist() == slow_total
    truth = np.sum(np.asarray(vectors, dtype=np.float64), axis=0)
    assert float(np.max(np.abs(fast_total - truth))) < 1e-3
