"""Tests for the benchmark-regression harness (snapshots, comparison, CLI)."""

from __future__ import annotations

import json
import math

import pytest

from repro.perf import bench


def _snapshot(speedups=None, experiments=None, date="2026-08-06"):
    speedups = speedups or {}
    experiments = experiments or {}
    return {
        "schema": bench.SCHEMA_VERSION,
        "date": date,
        "quick": True,
        "calibration_ops_per_sec": 1000.0,
        "results": {
            key: {
                "ops_per_sec": value * 100.0,
                "wall_ms": 1.0,
                "normalized": value * 0.1,
                "scalar_ops_per_sec": 100.0,
                "scalar_wall_ms": 10.0,
                "speedup": value,
            }
            for key, value in speedups.items()
        },
        "speedups": dict(speedups),
        "experiments": {
            key: {
                "num_users": 4,
                "rounds": 1,
                "wall_s": 1.0,
                "clients_per_sec": value * 1000.0,
                "normalized": value,
            }
            for key, value in experiments.items()
        },
    }


# ------------------------------------------------------------- comparison


def test_compare_ok_when_within_threshold():
    current = _snapshot({"k/n256": 9.0}, {"round_pipeline/u4x1": 0.95})
    baseline = _snapshot({"k/n256": 10.0}, {"round_pipeline/u4x1": 1.0})
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert comparison["ok"]
    assert comparison["regressions"] == []
    assert {c["metric"] for c in comparison["comparisons"]} == {
        "k/n256",
        "experiments/round_pipeline/u4x1",
    }


def test_compare_flags_speedup_regression():
    current = _snapshot({"k/n256": 5.0})
    baseline = _snapshot({"k/n256": 10.0})
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert not comparison["ok"]
    (regression,) = comparison["regressions"]
    assert regression["metric"] == "k/n256"
    assert regression["ratio"] == pytest.approx(0.5)


def test_compare_flags_experiment_regression():
    current = _snapshot({}, {"round_pipeline/u4x1": 0.5})
    baseline = _snapshot({}, {"round_pipeline/u4x1": 1.0})
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert not comparison["ok"]
    assert comparison["regressions"][0]["metric"] == (
        "experiments/round_pipeline/u4x1"
    )


def test_compare_skips_unmatched_metrics():
    """Renamed/new benches are reported, never failed."""
    current = _snapshot({"new/n256": 0.001})
    baseline = _snapshot({"old/n256": 100.0})
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert comparison["ok"]
    assert comparison["comparisons"] == []
    assert comparison["unmatched"] == ["new/n256", "old/n256"]


def test_compare_exact_threshold_boundary():
    # ratio == 1 - threshold is NOT a regression (strict inequality).
    current = _snapshot({"k/n256": 7.5})
    baseline = _snapshot({"k/n256": 10.0})
    assert bench.compare_snapshots(current, baseline, threshold=0.25)["ok"]


def test_compare_zero_baseline_never_divides():
    current = _snapshot({"k/n256": 1.0})
    baseline = _snapshot({"k/n256": 0.0})
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert comparison["ok"]
    assert comparison["comparisons"][0]["ratio"] == math.inf


# --------------------------------------------------------------- snapshots


def test_snapshot_path_and_find_baseline(tmp_path):
    assert bench.find_baseline(tmp_path) is None
    old = bench.snapshot_path(tmp_path, "2026-01-01")
    new = bench.snapshot_path(tmp_path, "2026-08-06")
    bench.write_snapshot(_snapshot(date="2026-01-01"), old)
    bench.write_snapshot(_snapshot(date="2026-08-06"), new)
    assert new.name == "BENCH_2026-08-06.json"
    assert bench.find_baseline(tmp_path) == new
    assert json.loads(new.read_text())["date"] == "2026-08-06"


# ----------------------------------------------------------- main/exit codes


@pytest.fixture
def fake_run(monkeypatch):
    snapshot = _snapshot({"k/n256": 10.0}, {"round_pipeline/u4x1": 1.0})
    monkeypatch.setattr(
        bench, "run_benchmarks", lambda quick=False, workers=0, chaos=False, fleet=False: snapshot
    )
    return snapshot


def test_main_first_run_writes_snapshot_and_exits_zero(tmp_path, fake_run, capsys):
    assert bench.main(out_dir=tmp_path) == 0
    path = bench.snapshot_path(tmp_path, fake_run["date"])
    assert path.exists()
    assert "repro bench" in capsys.readouterr().out


def test_main_exits_one_on_regression(tmp_path, fake_run, capsys):
    baseline = _snapshot({"k/n256": 100.0}, {"round_pipeline/u4x1": 1.0})
    bench.write_snapshot(baseline, bench.snapshot_path(tmp_path, "2026-01-01"))
    assert bench.main(out_dir=tmp_path) == 1
    assert "REGRESSIONS" in capsys.readouterr().out


def test_main_exits_two_on_unreadable_baseline(tmp_path, fake_run, capsys):
    bad = tmp_path / "BENCH_2026-01-01.json"
    bad.write_text("{not json")
    assert bench.main(out_dir=tmp_path) == 2
    assert "cannot read baseline" in capsys.readouterr().out


def test_main_json_output_shape(tmp_path, fake_run, capsys):
    baseline = _snapshot({"k/n256": 10.0}, {"round_pipeline/u4x1": 1.0})
    bench.write_snapshot(baseline, bench.snapshot_path(tmp_path, "2026-01-01"))
    assert bench.main(out_dir=tmp_path, as_json=True, write=False) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["snapshot"] is None  # --no-write
    assert payload["baseline"].endswith("BENCH_2026-01-01.json")
    assert payload["speedups"] == {"k/n256": 10.0}
    assert payload["comparison"]["ok"] is True


def test_main_no_write_leaves_directory_untouched(tmp_path, fake_run):
    assert bench.main(out_dir=tmp_path, write=False) == 0
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_main_explicit_baseline_beats_discovery(tmp_path, fake_run):
    regressing = _snapshot({"k/n256": 100.0})
    elsewhere = tmp_path / "other" / "BENCH_2025-12-31.json"
    elsewhere.parent.mkdir()
    bench.write_snapshot(regressing, elsewhere)
    assert bench.main(out_dir=tmp_path, baseline=elsewhere, write=False) == 1


# ------------------------------------------------------------------ timing


def test_timeit_smoke():
    stats = bench._timeit(lambda: sum(range(50)), min_time=0.01, batches=2)
    assert stats["ops_per_sec"] > 0
    assert stats["wall_ms"] >= 0
    assert stats["reps"] >= 1


def test_calibration_score_positive():
    assert bench.calibration_score(min_time=0.01) > 0


def test_run_benchmarks_quick_shape():
    snapshot = bench.run_benchmarks(quick=True)
    assert snapshot["quick"] is True
    for name in bench._MICRO_BENCHES:
        for size in (256, 4096):
            key = f"{name}/n{size}"
            assert key in snapshot["results"]
            assert snapshot["speedups"][key] == snapshot["results"][key]["speedup"]
    assert "round_pipeline/u4x1" in snapshot["experiments"]


# --------------------------------------------------------------------- CLI


def test_cli_bench_threshold_validation(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["bench", "--threshold", "1.5"]) == 2
    assert "--threshold" in capsys.readouterr().err


def test_cli_bench_wires_arguments(tmp_path, monkeypatch):
    from repro import cli
    from repro.perf import bench as bench_mod

    captured = {}

    def fake_main(**kwargs):
        captured.update(kwargs)
        return 0

    monkeypatch.setattr(bench_mod, "main", fake_main)
    assert (
        cli.main(
            [
                "bench",
                "--quick",
                "--out-dir",
                str(tmp_path),
                "--threshold",
                "0.1",
                "--json",
                "--no-write",
            ]
        )
        == 0
    )
    assert captured == {
        "out_dir": tmp_path,
        "quick": True,
        "baseline": None,
        "threshold": 0.1,
        "as_json": True,
        "write": False,
        "workers": 0,
        "chaos": False,
        "fleet": False,
    }


# ------------------------------------------------------------- robustness


def _robustness(**overrides):
    section = {
        "schedules": 4,
        "fault_rate": 0.1,
        "rounds_finalized": 4,
        "rounds_recovered": 1,
        "rounds_settled": 2,
        "rounds_aborted": 0,
        "restarts": 4,
        "kills": 1,
        "audit_repairs": 1,
        "mean_recovery_s": 0.12,
    }
    section.update(overrides)
    return section


def test_robustness_section_is_never_gated():
    current = _snapshot({"k/n256": 10.0})
    current["robustness"] = _robustness(restarts=40, mean_recovery_s=9.9)
    baseline = _snapshot({"k/n256": 10.0})
    baseline["robustness"] = _robustness()
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert comparison["ok"], "recovery telemetry must not fail the gate"
    assert all(
        "robustness" not in c["metric"] for c in comparison["comparisons"]
    )


def test_render_report_includes_robustness_row():
    snapshot = _snapshot({"k/n256": 10.0})
    snapshot["robustness"] = _robustness()
    report = bench.render_report(snapshot, None)
    assert "robustness (not gated)" in report
    assert "4 chaos schedules" in report
    assert "mean recovery 120.0 ms" in report
    # And without the section the report stays unchanged.
    assert "robustness" not in bench.render_report(
        _snapshot({"k/n256": 10.0}), None
    )


def test_chaos_bench_shape():
    section = bench._chaos_bench(quick=True)
    assert section["schedules"] == 4
    assert section["rounds_finalized"] >= section["schedules"]
    assert section["restarts"] >= 0
    assert section["mean_recovery_s"] >= 0.0


# ------------------------------------------------------------------ fleet


def _fleet(**overrides):
    section = {
        "schedules": 6,
        "rounds": 24,
        "rounds_recovered": 0,
        "rejoins": 1,
        "resumed": 95,
        "full_attestations": 48,
        "perturbed_submissions": 8,
        "submissions_reconciled": 0,
        "mean_settle_ms": 10279.7,
        "reattestations_avoided": 95,
    }
    section.update(overrides)
    return section


def test_fleet_section_is_never_gated():
    current = _snapshot({"k/n256": 10.0})
    current["fleet"] = _fleet(full_attestations=480, mean_settle_ms=99999.0)
    baseline = _snapshot({"k/n256": 10.0})
    baseline["fleet"] = _fleet()
    comparison = bench.compare_snapshots(current, baseline, threshold=0.25)
    assert comparison["ok"], "fleet telemetry must not fail the gate"
    assert all("fleet" not in c["metric"] for c in comparison["comparisons"])


def test_render_report_includes_fleet_row():
    snapshot = _snapshot({"k/n256": 10.0})
    snapshot["fleet"] = _fleet()
    report = bench.render_report(snapshot, None)
    assert "fleet (not gated)" in report
    assert "6 degraded-link schedules" in report
    assert "95 re-attestations avoided" in report
    assert "fleet" not in bench.render_report(_snapshot({"k/n256": 10.0}), None)
