"""Public-key fast path vs the frozen naive twins — exact-decision parity.

Same contract as ``tests/perf/test_parity.py`` for the ring kernels: the
windowed/batched implementations in :mod:`repro.crypto.group_ops`,
:mod:`repro.crypto.schnorr`, and :mod:`repro.crypto.commitments` must
reproduce the *decisions* of the naive twins in
:mod:`repro.perf.reference` on every input — accept exactly what the
seed-revision code accepted, reject exactly what it rejected.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.crypto import group_ops
from repro.crypto.commitments import (
    batch_verify_openings,
    commit_masks,
    resolve_group,
)
from repro.crypto.dh import OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.masking import SumZeroMasks
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, batch_verify
from repro.perf import reference

GROUPS = (TEST_GROUP, OAKLEY_GROUP_1)


@pytest.fixture(autouse=True)
def _clean_group_ops_state():
    group_ops.reset_tables()
    yield
    group_ops.reset_tables()


# -------------------------------------------------------- exponentiation


@pytest.mark.parametrize("group", GROUPS, ids=lambda g: g.name)
def test_fixed_power_matches_naive(group):
    h = group.subgroup_generator()
    group_ops.register_base(group.prime, h)
    rng = HmacDrbg(b"pk-parity-exp")
    exponents = [0, 1, 2, group.subgroup_order - 1]
    exponents += [group.random_exponent(rng) for _ in range(6)]
    for exponent in exponents:
        assert group_ops.fixed_power(group.prime, h, exponent) == (
            reference.fixed_power_naive(group.prime, h, exponent)
        )
        # group.power must route through the same answer
        assert group.power(h, exponent) == pow(h, exponent, group.prime)


@pytest.mark.parametrize("group", GROUPS, ids=lambda g: g.name)
@pytest.mark.parametrize("count", [0, 1, 2, 5, 20, 64])
def test_multi_power_matches_naive(group, count):
    rng = HmacDrbg(b"pk-parity-multiexp" + bytes([count]))
    h = group.subgroup_generator()
    bases = [group.power(h, group.random_exponent(rng)) for _ in range(count)]
    exponents = [
        int.from_bytes(rng.generate(16), "big") for _ in range(count)
    ]
    if count >= 2:
        exponents[0] = 0  # zero digit rows must contribute nothing
        exponents[1] = 1
    assert group_ops.multi_power(group.prime, bases, exponents) == (
        reference.multi_power_naive(group.prime, bases, exponents)
    )


def test_multi_power_rejects_bad_shapes():
    with pytest.raises(ValueError):
        group_ops.multi_power(TEST_GROUP.prime, [2, 3], [1])
    with pytest.raises(ValueError):
        group_ops.multi_power(TEST_GROUP.prime, [2], [-1])


# ------------------------------------------------------------ batch Schnorr


def _signed_items(count: int, seed: bytes = b"pk-parity-schnorr"):
    keypair = SchnorrKeyPair.generate(HmacDrbg(seed), OAKLEY_GROUP_1)
    items = [
        (message, keypair.sign(message))
        for message in (b"msg-%d" % i for i in range(count))
    ]
    return keypair.public_key, items


def test_batch_schnorr_accepts_what_per_signature_accepts():
    public, items = _signed_items(16)
    assert batch_verify(public, items) is True
    assert reference.verify_signatures_naive(public, items) is True
    for message, signature in items:
        assert public.is_valid(message, signature)


@pytest.mark.parametrize("forged_slot", [0, 31, 63])
def test_forged_signature_hidden_in_batch_of_64(forged_slot):
    """One forgery among 64 valid signatures must sink the batch, and the
    per-signature fallback must blame exactly the culprit."""
    public, items = _signed_items(64)
    message, signature = items[forged_slot]
    forged = dataclasses.replace(signature, response=(signature.response + 1))
    items[forged_slot] = (message, forged)
    assert batch_verify(public, items) is False
    assert reference.verify_signatures_naive(public, items) is False
    verdicts = [public.is_valid(m, s) for m, s in items]
    assert verdicts.count(False) == 1
    assert verdicts.index(False) == forged_slot


def test_batch_schnorr_wrong_message_rejected():
    public, items = _signed_items(8)
    message, signature = items[3]
    items[3] = (message + b"-tampered", signature)
    assert batch_verify(public, items) is False
    assert reference.verify_signatures_naive(public, items) is False


def test_batch_schnorr_without_commitments_abstains():
    """Wire-deserialized signatures carry no nonce commitment; the batch
    path must abstain (None), never guess."""
    public, items = _signed_items(4)
    stripped = [
        (m, SchnorrSignature.from_bytes(s.to_bytes())) for m, s in items
    ]
    assert batch_verify(public, stripped) is None
    assert reference.verify_signatures_naive(public, stripped) is True


def test_batch_schnorr_non_residue_commitment_never_accepted():
    """A sign-flipped commitment (quadratic non-residue) must not be fed
    into the combined check: the Schwartz-Zippel argument only holds
    inside the prime-order subgroup.  The commitment is redundant
    metadata, so the per-signature decision (which recomputes it) is
    unchanged — the batch must abstain or fail over, never accept the
    tampered transcript as a *batch*."""
    public, items = _signed_items(4)
    group = public.group
    non_residue = next(
        x for x in range(2, 100) if group_ops.jacobi(x, group.prime) == -1
    )
    message, signature = items[2]
    flipped = dataclasses.replace(
        signature, commitment=signature.commitment * non_residue % group.prime
    )
    items[2] = (message, flipped)
    assert batch_verify(public, items) in (None, False)
    # the (e, s) pairs themselves are still valid signatures, so the
    # per-signature fallback accepts — exactly the seed decision
    assert reference.verify_signatures_naive(public, items) is True


def test_batch_schnorr_small_batches_abstain():
    public, items = _signed_items(1)
    assert batch_verify(public, items) is None
    assert batch_verify(public, []) is None


# --------------------------------------------------------- batch Pedersen


def _committed(seed: bytes = b"pk-parity-pedersen", num_slots: int = 4):
    group = resolve_group("oakley-group-1")
    family = SumZeroMasks.sample(
        num_slots, 3, HmacDrbg(seed, personalization="family"), 64
    )
    commitments, openings = commit_masks(
        group, 1, family.masks, 64, HmacDrbg(seed, personalization="commit")
    )
    return commitments, list(enumerate(openings))


def test_batch_openings_accept_honest_set():
    commitments, openings = _committed()
    assert batch_verify_openings(commitments, openings) is True
    assert reference.verify_openings_naive(commitments, openings) is True


@pytest.mark.parametrize("field", ["mask", "randomizer", "salt"])
def test_batch_openings_reject_tampering(field):
    commitments, openings = _committed()
    slot, opening = openings[1]
    if field == "mask":
        tampered = dataclasses.replace(
            opening, mask=(opening.mask[0] ^ 1,) + opening.mask[1:]
        )
    elif field == "randomizer":
        tampered = dataclasses.replace(opening, randomizer=opening.randomizer + 1)
    else:
        tampered = dataclasses.replace(opening, salt=b"\x00" * len(opening.salt))
    openings[1] = (slot, tampered)
    assert batch_verify_openings(commitments, openings) is False
    assert reference.verify_openings_naive(commitments, openings) is False


def test_batch_openings_small_batches_abstain():
    commitments, openings = _committed()
    assert batch_verify_openings(commitments, openings[:1]) is False
    assert batch_verify_openings(commitments, []) is False


# ----------------------------------------------------- per-signature parity


def test_naive_schnorr_twin_matches_fast_verify():
    public, items = _signed_items(6)
    group = public.group
    for message, signature in items:
        assert reference.schnorr_verify_naive(
            group, public.element, message, signature
        )
        assert public.is_valid(message, signature)
    bad = dataclasses.replace(items[0][1], challenge=items[0][1].challenge + 1)
    assert not reference.schnorr_verify_naive(
        group, public.element, items[0][0], bad
    )
    assert not public.is_valid(items[0][0], bad)
    # out-of-range components rejected on both paths
    oversized = SchnorrSignature(group.subgroup_order, 1)
    assert not reference.schnorr_verify_naive(
        group, public.element, b"m", oversized
    )
    assert not public.is_valid(b"m", oversized)
