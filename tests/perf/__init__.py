"""Parity and harness tests for the vectorized kernel layer."""
