"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_overrides, build_parser, main
from repro.experiments.registry import EXPERIMENTS, run_experiment


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "e9", "budgets=(1,)"]) == 0
    out = capsys.readouterr().out
    assert "covert-channel capacity" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_json_output(capsys):
    import json

    assert main(["run", "e9", "budgets=(1,)", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["title"]
    assert payload["columns"]
    assert payload["rows"]


def test_run_failure_reports_and_returns_nonzero(capsys):
    assert main(["run", "e9", "no_such_parameter=1"]) == 1
    err = capsys.readouterr().err
    assert "e9 failed:" in err


def test_run_json_failure_emits_json_error_and_nonzero(capsys):
    import json

    assert main(["run", "e9", "no_such_parameter=1", "--json"]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["experiment"] == "e9"
    assert payload["error"]
    assert "e9 failed:" in captured.err


def test_run_seed_flag_threads_to_runner(capsys):
    assert main(["run", "e9", "budgets=(1,)", "--seed", "alternate"]) == 0
    out = capsys.readouterr().out
    assert "covert-channel capacity" in out


def test_run_experiment_seed_lands_identically_via_kwargs_or_flag():
    # The --seed flag routes through overrides; both spellings must agree.
    explicit = run_experiment("e9", **{"seed": b"alternate", "budgets": (1,)})
    flagged = run_experiment("e9", seed=b"alternate", budgets=(1,))
    assert explicit.table().rows == flagged.table().rows


def test_run_experiment_threads_seed_only_when_accepted(monkeypatch):
    import sys
    import types

    captured = {}
    accepts = types.ModuleType("fake_exp_accepts")
    accepts.run = lambda seed=b"default": captured.setdefault("seed", seed)
    rejects = types.ModuleType("fake_exp_rejects")
    rejects.run = lambda: captured.setdefault("no_seed", True)
    monkeypatch.setitem(sys.modules, "fake_exp_accepts", accepts)
    monkeypatch.setitem(sys.modules, "fake_exp_rejects", rejects)
    monkeypatch.setitem(EXPERIMENTS, "e-acc", ("fake", "fake_exp_accepts"))
    monkeypatch.setitem(EXPERIMENTS, "e-rej", ("fake", "fake_exp_rejects"))
    run_experiment("e-acc", seed=b"alternate")
    run_experiment("e-rej", seed=b"alternate")  # must not TypeError
    assert captured == {"seed": b"alternate", "no_seed": True}


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "538" in out
    assert "aggregate max error" in out


def test_parse_overrides_literals():
    parsed = _parse_overrides(["num_users=4", "magnitudes=(538.0,)", "name=abc"])
    assert parsed == {"num_users": 4, "magnitudes": (538.0,), "name": "abc"}


def test_parse_overrides_rejects_malformed():
    with pytest.raises(SystemExit):
        _parse_overrides(["not-a-pair"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# --------------------------------------------------------- robustness tooling


def _seed_service_state(state_dir, users=3):
    from repro.service import GlimmerService, build_backend

    with GlimmerService(
        build_backend("disk", str(state_dir)),
        num_users=users,
        sentences_per_user=3,
        max_features=8,
    ) as service:
        service.add_tenant("tenant-a")
        for user in sorted(service.tenant("tenant-a").deployment.clients):
            service.submit_honest("tenant-a", user)
        (report,) = service.run_pending_sync()
        return report


def test_audit_verify_clean_exits_zero(tmp_path, capsys):
    _seed_service_state(tmp_path / "state")
    assert main(["audit-verify", "--state-dir", str(tmp_path / "state")]) == 0
    assert "audit chain verified" in capsys.readouterr().out


def test_audit_verify_detects_tamper_and_repairs(tmp_path, capsys):
    import json

    _seed_service_state(tmp_path / "state")
    log_file = next((tmp_path / "state").glob("log-audit.jsonl"))
    lines = log_file.read_text().splitlines()
    doctored = json.loads(lines[1])
    doctored["digest"] = doctored["digest"][::-1]
    lines[1] = json.dumps(doctored)
    log_file.write_text("\n".join(lines) + "\n")

    assert main(["audit-verify", "--state-dir", str(tmp_path / "state")]) == 1
    err = capsys.readouterr().err
    assert "audit chain broken" in err

    assert (
        main(["audit-verify", "--state-dir", str(tmp_path / "state"), "--repair"])
        == 0
    )
    assert "repaired" in capsys.readouterr().out
    # Once repaired, plain verification passes again.
    assert main(["audit-verify", "--state-dir", str(tmp_path / "state")]) == 0


def test_serve_chaos_seed_self_heals(tmp_path, capsys):
    state = str(tmp_path / "state")
    for user in ("user-0000", "user-0001", "user-0002"):
        assert (
            main(
                [
                    "submit", "--state-dir", state, "--tenant", "tenant-a",
                    "--user", user, "--users", "3",
                ]
            )
            == 0
        )
    assert (
        main(
            [
                "serve", "--state-dir", state, "--tenants", "tenant-a",
                "--rounds", "3", "--resume", "--users", "3",
                "--chaos-seed", "cli-chaos-1", "--fault-rate", "0.3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "chaos schedule 'cli-chaos-1'" in out
    # The state the chaos run leaves behind is verifiably intact.
    assert main(["audit-verify", "--state-dir", state]) == 0


def test_stream_smoke_command(capsys):
    assert (
        main(
            [
                "stream-smoke",
                "--users", "500",
                "--length", "8",
                "--subgroup-size", "16",
                "--max-rss-kb", "4194304",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "bit-exact: True" in out
    assert "budget" in out


def test_stream_smoke_json_and_budget_failure(capsys):
    import json

    assert (
        main(
            [
                "stream-smoke",
                "--users", "200",
                "--length", "4",
                "--subgroup-size", "8",
                "--max-rss-kb", "1",
                "--json",
            ]
        )
        == 1
    )
    report = json.loads(capsys.readouterr().out)
    assert report["exact"] is True
    assert report["rss_ok"] is False
    assert report["num_groups"] == 25
    assert report["folds"] + report["repairs"] == 200


def test_stream_smoke_rejects_bad_arguments(capsys):
    assert main(["stream-smoke", "--users", "0"]) == 2
