"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_overrides, build_parser, main
from repro.experiments.registry import EXPERIMENTS


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in EXPERIMENTS:
        assert experiment_id in out


def test_run_single_experiment(capsys):
    assert main(["run", "e9", "budgets=(1,)"]) == 0
    out = capsys.readouterr().out
    assert "covert-channel capacity" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "e99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_json_output(capsys):
    import json

    assert main(["run", "e9", "budgets=(1,)", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["title"]
    assert payload["columns"]
    assert payload["rows"]


def test_run_failure_reports_and_returns_nonzero(capsys):
    assert main(["run", "e9", "no_such_parameter=1"]) == 1
    err = capsys.readouterr().err
    assert "e9 failed:" in err


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "538" in out
    assert "aggregate max error" in out


def test_parse_overrides_literals():
    parsed = _parse_overrides(["num_users=4", "magnitudes=(538.0,)", "name=abc"])
    assert parsed == {"num_users": 4, "magnitudes": (538.0,), "name": "abc"}


def test_parse_overrides_rejects_malformed():
    with pytest.raises(SystemExit):
        _parse_overrides(["not-a-pair"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
